//! The scenario format: typed definitions, the [`JsonValue`] wire form,
//! and expect-block evaluation.
//!
//! Parsing is strict — unknown event kinds, unknown expect fields or
//! operators, and out-of-order timeline instants are rejected with a
//! typed [`ScenarioError`] — and rendering is canonical: field order is
//! fixed, every field is always emitted, and `parse(render(def)) == def`
//! exactly (asserted by property tests), so a scenario's rendered bytes
//! are a stable hash input.

use crate::json::JsonValue;

/// One instant-keyed event on a scenario timeline.
///
/// Events that carry a `cycle` must appear in non-decreasing cycle order
/// ([`ScenarioError::OutOfOrderInstant`] otherwise); `scrub` is a
/// whole-run property and may appear anywhere.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineEvent {
    /// A strike cluster at `cycle`: every word whose exposure window
    /// crosses the instant is struck with probability `rate`, at most
    /// `words` strikes total.
    FaultBurst {
        /// Burst instant in cycles.
        cycle: u64,
        /// Cap on struck words across the whole array.
        words: u32,
        /// Per-word strike probability in `(0, 1]`.
        rate: f64,
    },
    /// The Poisson strike rate changes to `rate` from `cycle` onward.
    ErrorRateShift {
        /// First cycle at which the new rate applies.
        cycle: u64,
        /// New per-word-per-cycle rate in `[0, 1)`.
        rate: f64,
    },
    /// Idealized background scrubbing: accumulated-fault exposure windows
    /// are clamped to the most recent `period` boundary.
    Scrub {
        /// Scrub period in cycles (≥ 1).
        period: u64,
    },
    /// The cell executes benchmark `task` instead of its grid benchmark,
    /// from `cycle` onward (v1 semantics: `cycle` must be 0 — the switch
    /// applies from run start).
    TaskSwitch {
        /// Switch instant in cycles.
        cycle: u64,
        /// Benchmark display name (e.g. `"G722 encode"`).
        task: String,
    },
}

impl TimelineEvent {
    /// Wire-format kind tag.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TimelineEvent::FaultBurst { .. } => "fault_burst",
            TimelineEvent::ErrorRateShift { .. } => "error_rate_shift",
            TimelineEvent::Scrub { .. } => "scrub",
            TimelineEvent::TaskSwitch { .. } => "task_switch",
        }
    }

    /// The event's instant, when it has one (`scrub` is instant-free).
    #[must_use]
    pub fn instant(&self) -> Option<u64> {
        match *self {
            TimelineEvent::FaultBurst { cycle, .. }
            | TimelineEvent::ErrorRateShift { cycle, .. }
            | TimelineEvent::TaskSwitch { cycle, .. } => Some(cycle),
            TimelineEvent::Scrub { .. } => None,
        }
    }

    fn to_json(&self) -> JsonValue {
        match self {
            TimelineEvent::FaultBurst { cycle, words, rate } => JsonValue::object()
                .field("event", "fault_burst")
                .field("cycle", *cycle)
                .field("words", u64::from(*words))
                .field("rate", *rate),
            TimelineEvent::ErrorRateShift { cycle, rate } => JsonValue::object()
                .field("event", "error_rate_shift")
                .field("cycle", *cycle)
                .field("rate", *rate),
            TimelineEvent::Scrub { period } => JsonValue::object()
                .field("event", "scrub")
                .field("period", *period),
            TimelineEvent::TaskSwitch { cycle, task } => JsonValue::object()
                .field("event", "task_switch")
                .field("cycle", *cycle)
                .field("task", task.as_str()),
        }
    }

    fn from_json(value: &JsonValue, index: usize) -> Result<Self, ScenarioError> {
        if !matches!(value, JsonValue::Object(_)) {
            return Err(ScenarioError::WrongType {
                context: "timeline event",
                field: "event",
                expected: "object",
            });
        }
        let kind = str_field(value, "timeline event", "event")?;
        match kind.as_str() {
            "fault_burst" => {
                let cycle = u64_field(value, "fault_burst", "cycle")?;
                let words = u64_field(value, "fault_burst", "words")?;
                let rate = f64_field(value, "fault_burst", "rate")?;
                if words == 0 || words > u64::from(u32::MAX) {
                    return Err(ScenarioError::BadValue {
                        context: "fault_burst.words",
                        message: format!("{words} outside 1..=u32::MAX"),
                    });
                }
                if !(rate > 0.0 && rate <= 1.0) {
                    return Err(ScenarioError::BadValue {
                        context: "fault_burst.rate",
                        message: format!("{rate} outside (0, 1]"),
                    });
                }
                Ok(TimelineEvent::FaultBurst {
                    cycle,
                    words: words as u32,
                    rate,
                })
            }
            "error_rate_shift" => {
                let cycle = u64_field(value, "error_rate_shift", "cycle")?;
                let rate = f64_field(value, "error_rate_shift", "rate")?;
                if !(rate >= 0.0 && rate < 1.0) {
                    return Err(ScenarioError::BadValue {
                        context: "error_rate_shift.rate",
                        message: format!("{rate} outside [0, 1)"),
                    });
                }
                Ok(TimelineEvent::ErrorRateShift { cycle, rate })
            }
            "scrub" => {
                let period = u64_field(value, "scrub", "period")?;
                if period == 0 {
                    return Err(ScenarioError::BadValue {
                        context: "scrub.period",
                        message: "period must be at least 1 cycle".to_owned(),
                    });
                }
                Ok(TimelineEvent::Scrub { period })
            }
            "task_switch" => {
                let cycle = u64_field(value, "task_switch", "cycle")?;
                let task = str_field(value, "task_switch", "task")?;
                if task.is_empty() {
                    return Err(ScenarioError::BadValue {
                        context: "task_switch.task",
                        message: "task name must not be empty".to_owned(),
                    });
                }
                if cycle != 0 {
                    return Err(ScenarioError::BadValue {
                        context: "task_switch.cycle",
                        message: format!(
                            "mid-run switching is not supported yet: cycle must be 0, got {cycle}"
                        ),
                    });
                }
                Ok(TimelineEvent::TaskSwitch { cycle, task })
            }
            other => Err(ScenarioError::UnknownEventKind {
                index,
                kind: other.to_owned(),
            }),
        }
    }
}

/// The run statistic an [`Expectation`] asserts over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectField {
    /// The run finished every block.
    Completed,
    /// The produced output matched the fault-free golden output.
    Correct,
    /// Detected (corrected + uncorrectable) errors.
    DetectedErrors,
    /// Checkpoint rollbacks taken.
    Rollbacks,
    /// Whole-task restarts taken.
    Restarts,
    /// Checkpoints committed.
    Checkpoints,
    /// Total energy in picojoules.
    EnergyPj,
    /// Total cycles.
    Cycles,
}

impl ExpectField {
    /// All fields, in wire order.
    pub const ALL: [ExpectField; 8] = [
        ExpectField::Completed,
        ExpectField::Correct,
        ExpectField::DetectedErrors,
        ExpectField::Rollbacks,
        ExpectField::Restarts,
        ExpectField::Checkpoints,
        ExpectField::EnergyPj,
        ExpectField::Cycles,
    ];

    /// Wire-format name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ExpectField::Completed => "completed",
            ExpectField::Correct => "correct",
            ExpectField::DetectedErrors => "detected_errors",
            ExpectField::Rollbacks => "rollbacks",
            ExpectField::Restarts => "restarts",
            ExpectField::Checkpoints => "checkpoints",
            ExpectField::EnergyPj => "energy_pj",
            ExpectField::Cycles => "cycles",
        }
    }

    /// Whether the field is boolean (`completed` / `correct`).
    #[must_use]
    pub fn is_boolean(self) -> bool {
        matches!(self, ExpectField::Completed | ExpectField::Correct)
    }
}

/// Comparison operator of an [`Expectation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectOp {
    /// `==`
    Eq,
    /// `>=`
    Ge,
    /// `<=`
    Le,
}

impl ExpectOp {
    /// Wire-format symbol.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            ExpectOp::Eq => "==",
            ExpectOp::Ge => ">=",
            ExpectOp::Le => "<=",
        }
    }
}

/// The right-hand side of an [`Expectation`], kept in its wire variant
/// so rendering is canonical.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpectValue {
    /// Boolean comparand (boolean fields only).
    Bool(bool),
    /// Exact unsigned comparand.
    Uint(u64),
    /// Float comparand (finite).
    Float(f64),
}

impl ExpectValue {
    fn to_json(&self) -> JsonValue {
        match *self {
            ExpectValue::Bool(b) => JsonValue::Bool(b),
            ExpectValue::Uint(n) => JsonValue::Uint(n),
            ExpectValue::Float(x) => JsonValue::Float(x),
        }
    }

    fn as_f64(&self) -> f64 {
        match *self {
            ExpectValue::Bool(b) => u8::from(b).into(),
            ExpectValue::Uint(n) => n as f64,
            ExpectValue::Float(x) => x,
        }
    }
}

impl std::fmt::Display for ExpectValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ExpectValue::Bool(b) => write!(f, "{b}"),
            ExpectValue::Uint(n) => write!(f, "{n}"),
            ExpectValue::Float(x) => write!(f, "{x}"),
        }
    }
}

/// One assertion over the final [`RunStats`] of a scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct Expectation {
    /// Statistic under test.
    pub field: ExpectField,
    /// Comparison operator.
    pub op: ExpectOp,
    /// Comparand.
    pub value: ExpectValue,
}

impl Expectation {
    /// Evaluates the assertion against `stats`.
    #[must_use]
    pub fn holds(&self, stats: &RunStats) -> bool {
        let actual = stats.get(self.field);
        let expected = self.value.as_f64();
        match self.op {
            ExpectOp::Eq => actual == expected,
            ExpectOp::Ge => actual >= expected,
            ExpectOp::Le => actual <= expected,
        }
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("field", self.field.name())
            .field("op", self.op.symbol())
            .field("value", self.value.to_json())
    }

    fn from_json(value: &JsonValue, index: usize) -> Result<Self, ScenarioError> {
        if !matches!(value, JsonValue::Object(_)) {
            return Err(ScenarioError::WrongType {
                context: "expect entry",
                field: "field",
                expected: "object",
            });
        }
        let field_name = str_field(value, "expect entry", "field")?;
        let field = ExpectField::ALL
            .into_iter()
            .find(|f| f.name() == field_name)
            .ok_or(ScenarioError::UnknownExpectField {
                index,
                field: field_name.clone(),
            })?;
        let op_name = str_field(value, "expect entry", "op")?;
        let op = match op_name.as_str() {
            "==" => ExpectOp::Eq,
            ">=" => ExpectOp::Ge,
            "<=" => ExpectOp::Le,
            other => {
                return Err(ScenarioError::UnknownExpectOp {
                    index,
                    op: other.to_owned(),
                })
            }
        };
        let raw = value
            .get("value")
            .ok_or(ScenarioError::MissingField {
                context: "expect entry",
                field: "value",
            })?
            .clone()
            .canonicalize();
        let parsed = match raw {
            JsonValue::Bool(b) => ExpectValue::Bool(b),
            JsonValue::Uint(n) => ExpectValue::Uint(n),
            JsonValue::Float(x) if x.is_finite() => ExpectValue::Float(x),
            _ => {
                return Err(ScenarioError::WrongType {
                    context: "expect entry",
                    field: "value",
                    expected: "bool, unsigned integer, or finite float",
                })
            }
        };
        match (&parsed, field.is_boolean()) {
            (ExpectValue::Bool(_), false) => {
                return Err(ScenarioError::BadValue {
                    context: "expect.value",
                    message: format!("boolean comparand for numeric field {field_name}"),
                })
            }
            (ExpectValue::Bool(_), true) if op != ExpectOp::Eq => {
                return Err(ScenarioError::BadValue {
                    context: "expect.op",
                    message: format!("boolean field {field_name} supports only =="),
                })
            }
            (ExpectValue::Uint(_) | ExpectValue::Float(_), true) => {
                return Err(ScenarioError::BadValue {
                    context: "expect.value",
                    message: format!("numeric comparand for boolean field {field_name}"),
                })
            }
            _ => {}
        }
        Ok(Expectation {
            field,
            op,
            value: parsed,
        })
    }
}

impl std::fmt::Display for Expectation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} {}",
            self.field.name(),
            self.op.symbol(),
            self.value
        )
    }
}

/// The final statistics of one scenario run, the domain of expect
/// blocks. A plain data facade so this crate needs no simulator types.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunStats {
    /// The run finished every block.
    pub completed: bool,
    /// Output matched the fault-free golden output.
    pub correct: bool,
    /// Detected errors (corrected + uncorrectable).
    pub detected_errors: u64,
    /// Rollbacks taken.
    pub rollbacks: u64,
    /// Whole-task restarts taken.
    pub restarts: u64,
    /// Checkpoints committed.
    pub checkpoints: u64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Total cycles.
    pub cycles: u64,
}

impl RunStats {
    fn get(&self, field: ExpectField) -> f64 {
        match field {
            ExpectField::Completed => u8::from(self.completed).into(),
            ExpectField::Correct => u8::from(self.correct).into(),
            ExpectField::DetectedErrors => self.detected_errors as f64,
            ExpectField::Rollbacks => self.rollbacks as f64,
            ExpectField::Restarts => self.restarts as f64,
            ExpectField::Checkpoints => self.checkpoints as f64,
            ExpectField::EnergyPj => self.energy_pj,
            ExpectField::Cycles => self.cycles as f64,
        }
    }
}

/// The outcome of evaluating a scenario's expect block: a verdict plus
/// one human-readable line per failed assertion. Always a value, never
/// a panic — expect failures are data the campaign reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectReport {
    /// Every assertion held (vacuously true for an empty block).
    pub passed: bool,
    /// Assertions evaluated.
    pub checked: usize,
    /// One `"<field> <op> <value> (actual <x>)"` line per failure.
    pub failures: Vec<String>,
}

/// A named scenario: tags, a timeline, and an expect block.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDef {
    /// Unique scenario name (the campaign axis key).
    pub name: String,
    /// Free-form labels (selection/reporting only; not semantics).
    pub tags: Vec<String>,
    /// Instant-keyed events, non-decreasing in cycle.
    pub timeline: Vec<TimelineEvent>,
    /// Assertions over the final run statistics.
    pub expect: Vec<Expectation>,
}

impl ScenarioDef {
    /// A scenario with the given name and nothing else.
    #[must_use]
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tags: Vec::new(),
            timeline: Vec::new(),
            expect: Vec::new(),
        }
    }

    /// Canonical wire form: fixed field order, every field emitted.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("name", self.name.as_str())
            .field(
                "tags",
                JsonValue::Array(
                    self.tags
                        .iter()
                        .map(|t| JsonValue::Str(t.clone()))
                        .collect(),
                ),
            )
            .field(
                "timeline",
                JsonValue::Array(self.timeline.iter().map(TimelineEvent::to_json).collect()),
            )
            .field(
                "expect",
                JsonValue::Array(self.expect.iter().map(Expectation::to_json).collect()),
            )
    }

    /// Parses one scenario from its wire form.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ScenarioError`]: missing/mistyped fields,
    /// unknown event kinds or expect fields/operators, out-of-range
    /// parameters, and out-of-order timeline instants are all rejected.
    pub fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        if !matches!(value, JsonValue::Object(_)) {
            return Err(ScenarioError::WrongType {
                context: "scenario",
                field: "name",
                expected: "object",
            });
        }
        let name = str_field(value, "scenario", "name")?;
        if name.is_empty() {
            return Err(ScenarioError::BadValue {
                context: "scenario.name",
                message: "name must not be empty".to_owned(),
            });
        }
        let tags = match value.get("tags") {
            None => Vec::new(),
            Some(raw) => raw
                .as_array()
                .ok_or(ScenarioError::WrongType {
                    context: "scenario",
                    field: "tags",
                    expected: "array of strings",
                })?
                .iter()
                .map(|t| {
                    t.as_str()
                        .map(str::to_owned)
                        .ok_or(ScenarioError::WrongType {
                            context: "scenario",
                            field: "tags",
                            expected: "array of strings",
                        })
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        let timeline = match value.get("timeline") {
            None => Vec::new(),
            Some(raw) => raw
                .as_array()
                .ok_or(ScenarioError::WrongType {
                    context: "scenario",
                    field: "timeline",
                    expected: "array of events",
                })?
                .iter()
                .enumerate()
                .map(|(i, entry)| TimelineEvent::from_json(entry, i))
                .collect::<Result<Vec<_>, _>>()?,
        };
        let mut previous: Option<u64> = None;
        for (index, event) in timeline.iter().enumerate() {
            if let Some(cycle) = event.instant() {
                if let Some(prev) = previous {
                    if cycle < prev {
                        return Err(ScenarioError::OutOfOrderInstant {
                            index,
                            cycle,
                            previous: prev,
                        });
                    }
                }
                previous = Some(cycle);
            }
        }
        let expect = match value.get("expect") {
            None => Vec::new(),
            Some(raw) => raw
                .as_array()
                .ok_or(ScenarioError::WrongType {
                    context: "scenario",
                    field: "expect",
                    expected: "array of assertions",
                })?
                .iter()
                .enumerate()
                .map(|(i, entry)| Expectation::from_json(entry, i))
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(Self {
            name,
            tags,
            timeline,
            expect,
        })
    }

    /// Evaluates the expect block against `stats`.
    #[must_use]
    pub fn evaluate(&self, stats: &RunStats) -> ExpectReport {
        let failures: Vec<String> = self
            .expect
            .iter()
            .filter(|e| !e.holds(stats))
            .map(|e| format!("{e} (actual {})", stats.get(e.field)))
            .collect();
        ExpectReport {
            passed: failures.is_empty(),
            checked: self.expect.len(),
            failures,
        }
    }

    /// The `task_switch` override, when the timeline has one.
    #[must_use]
    pub fn task_override(&self) -> Option<&str> {
        self.timeline.iter().find_map(|e| match e {
            TimelineEvent::TaskSwitch { task, .. } => Some(task.as_str()),
            _ => None,
        })
    }
}

/// Parses an array of scenarios, rejecting duplicate names.
///
/// # Errors
///
/// Any per-scenario [`ScenarioError`], or
/// [`ScenarioError::DuplicateName`] when two scenarios share a name.
pub fn parse_scenarios(value: &JsonValue) -> Result<Vec<ScenarioDef>, ScenarioError> {
    let entries = value.as_array().ok_or(ScenarioError::WrongType {
        context: "scenarios",
        field: "scenarios",
        expected: "array of scenario objects",
    })?;
    let mut defs = Vec::with_capacity(entries.len());
    for entry in entries {
        let def = ScenarioDef::from_json(entry)?;
        if defs.iter().any(|d: &ScenarioDef| d.name == def.name) {
            return Err(ScenarioError::DuplicateName { name: def.name });
        }
        defs.push(def);
    }
    Ok(defs)
}

/// Typed parse/validation error for the scenario format.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A required field is absent.
    MissingField {
        /// Enclosing structure.
        context: &'static str,
        /// Missing field name.
        field: &'static str,
    },
    /// A field holds the wrong JSON type.
    WrongType {
        /// Enclosing structure.
        context: &'static str,
        /// Offending field name.
        field: &'static str,
        /// What was expected.
        expected: &'static str,
    },
    /// A timeline entry's `event` tag is not a known kind.
    UnknownEventKind {
        /// Timeline index.
        index: usize,
        /// The unknown tag.
        kind: String,
    },
    /// An expect entry names an unknown statistic.
    UnknownExpectField {
        /// Expect-block index.
        index: usize,
        /// The unknown field name.
        field: String,
    },
    /// An expect entry uses an unknown operator.
    UnknownExpectOp {
        /// Expect-block index.
        index: usize,
        /// The unknown operator.
        op: String,
    },
    /// Timeline instants decreased.
    OutOfOrderInstant {
        /// Index of the offending event.
        index: usize,
        /// Its cycle.
        cycle: u64,
        /// The preceding instant it undercuts.
        previous: u64,
    },
    /// A field value is out of its valid range.
    BadValue {
        /// Dotted path of the field.
        context: &'static str,
        /// What is wrong with it.
        message: String,
    },
    /// Two scenarios in one axis share a name.
    DuplicateName {
        /// The repeated name.
        name: String,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::MissingField { context, field } => {
                write!(f, "{context}: missing field {field:?}")
            }
            ScenarioError::WrongType {
                context,
                field,
                expected,
            } => write!(f, "{context}: field {field:?} must be {expected}"),
            ScenarioError::UnknownEventKind { index, kind } => {
                write!(f, "timeline[{index}]: unknown event kind {kind:?}")
            }
            ScenarioError::UnknownExpectField { index, field } => {
                write!(f, "expect[{index}]: unknown field {field:?}")
            }
            ScenarioError::UnknownExpectOp { index, op } => {
                write!(f, "expect[{index}]: unknown operator {op:?}")
            }
            ScenarioError::OutOfOrderInstant {
                index,
                cycle,
                previous,
            } => write!(
                f,
                "timeline[{index}]: instant {cycle} precedes earlier instant {previous}"
            ),
            ScenarioError::BadValue { context, message } => write!(f, "{context}: {message}"),
            ScenarioError::DuplicateName { name } => {
                write!(f, "duplicate scenario name {name:?}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

fn str_field(
    value: &JsonValue,
    context: &'static str,
    field: &'static str,
) -> Result<String, ScenarioError> {
    match value.get(field) {
        None => Err(ScenarioError::MissingField { context, field }),
        Some(v) => v
            .as_str()
            .map(str::to_owned)
            .ok_or(ScenarioError::WrongType {
                context,
                field,
                expected: "string",
            }),
    }
}

fn u64_field(
    value: &JsonValue,
    context: &'static str,
    field: &'static str,
) -> Result<u64, ScenarioError> {
    match value.get(field) {
        None => Err(ScenarioError::MissingField { context, field }),
        Some(v) => v.as_u64().ok_or(ScenarioError::WrongType {
            context,
            field,
            expected: "unsigned integer",
        }),
    }
}

fn f64_field(
    value: &JsonValue,
    context: &'static str,
    field: &'static str,
) -> Result<f64, ScenarioError> {
    match value.get(field) {
        None => Err(ScenarioError::MissingField { context, field }),
        Some(v) => v
            .as_f64()
            .filter(|x| x.is_finite())
            .ok_or(ScenarioError::WrongType {
                context,
                field,
                expected: "finite number",
            }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst_def() -> ScenarioDef {
        ScenarioDef {
            name: "burst-then-calm".to_owned(),
            tags: vec!["burst".to_owned(), "paper".to_owned()],
            timeline: vec![
                TimelineEvent::TaskSwitch {
                    cycle: 0,
                    task: "G722 encode".to_owned(),
                },
                TimelineEvent::Scrub { period: 4096 },
                TimelineEvent::FaultBurst {
                    cycle: 1000,
                    words: 4,
                    rate: 0.5,
                },
                TimelineEvent::ErrorRateShift {
                    cycle: 5000,
                    rate: 1e-7,
                },
            ],
            expect: vec![
                Expectation {
                    field: ExpectField::Completed,
                    op: ExpectOp::Eq,
                    value: ExpectValue::Bool(true),
                },
                Expectation {
                    field: ExpectField::DetectedErrors,
                    op: ExpectOp::Ge,
                    value: ExpectValue::Uint(1),
                },
                Expectation {
                    field: ExpectField::EnergyPj,
                    op: ExpectOp::Le,
                    value: ExpectValue::Float(5e9),
                },
            ],
        }
    }

    #[test]
    fn round_trips_canonically() {
        let def = burst_def();
        let rendered = def.to_json().render();
        let back = ScenarioDef::from_json(&JsonValue::parse(&rendered).unwrap()).unwrap();
        assert_eq!(back, def);
        assert_eq!(back.to_json().render(), rendered);
    }

    #[test]
    fn minimal_scenario_defaults_optional_fields() {
        let def =
            ScenarioDef::from_json(&JsonValue::parse(r#"{"name": "calm"}"#).unwrap()).unwrap();
        assert_eq!(def, ScenarioDef::named("calm"));
        // ...and its canonical form emits every field explicitly.
        let rendered = def.to_json().render();
        assert!(rendered.contains("\"timeline\":[]"));
        assert!(rendered.contains("\"expect\":[]"));
    }

    #[test]
    fn rejects_out_of_order_instants() {
        let doc = r#"{"name": "x", "timeline": [
            {"event": "error_rate_shift", "cycle": 500, "rate": 0.0},
            {"event": "fault_burst", "cycle": 100, "words": 1, "rate": 0.5}
        ]}"#;
        let err = ScenarioDef::from_json(&JsonValue::parse(doc).unwrap()).unwrap_err();
        assert_eq!(
            err,
            ScenarioError::OutOfOrderInstant {
                index: 1,
                cycle: 100,
                previous: 500
            }
        );
        assert!(err.to_string().contains("precedes"));
    }

    #[test]
    fn scrub_is_instant_free_and_ignored_by_ordering() {
        let doc = r#"{"name": "x", "timeline": [
            {"event": "error_rate_shift", "cycle": 500, "rate": 0.0},
            {"event": "scrub", "period": 64},
            {"event": "error_rate_shift", "cycle": 600, "rate": 1e-6}
        ]}"#;
        assert!(ScenarioDef::from_json(&JsonValue::parse(doc).unwrap()).is_ok());
    }

    #[test]
    fn rejects_unknown_event_kind() {
        let doc = r#"{"name": "x", "timeline": [{"event": "voltage_droop", "cycle": 1}]}"#;
        let err = ScenarioDef::from_json(&JsonValue::parse(doc).unwrap()).unwrap_err();
        assert_eq!(
            err,
            ScenarioError::UnknownEventKind {
                index: 0,
                kind: "voltage_droop".to_owned()
            }
        );
    }

    #[test]
    fn rejects_unknown_expect_field_and_op() {
        let doc = r#"{"name": "x", "expect": [{"field": "latency", "op": "==", "value": 1}]}"#;
        let err = ScenarioDef::from_json(&JsonValue::parse(doc).unwrap()).unwrap_err();
        assert!(matches!(err, ScenarioError::UnknownExpectField { .. }));
        let doc = r#"{"name": "x", "expect": [{"field": "cycles", "op": "!=", "value": 1}]}"#;
        let err = ScenarioDef::from_json(&JsonValue::parse(doc).unwrap()).unwrap_err();
        assert!(matches!(err, ScenarioError::UnknownExpectOp { .. }));
    }

    #[test]
    fn rejects_mismatched_expect_value_types() {
        for doc in [
            // Numeric comparand on a boolean field.
            r#"{"name": "x", "expect": [{"field": "completed", "op": "==", "value": 1}]}"#,
            // Boolean comparand on a numeric field.
            r#"{"name": "x", "expect": [{"field": "cycles", "op": ">=", "value": true}]}"#,
            // Ordering operator on a boolean field.
            r#"{"name": "x", "expect": [{"field": "correct", "op": ">=", "value": true}]}"#,
        ] {
            let err = ScenarioDef::from_json(&JsonValue::parse(doc).unwrap()).unwrap_err();
            assert!(matches!(err, ScenarioError::BadValue { .. }), "{doc}");
        }
    }

    #[test]
    fn rejects_out_of_range_rates_and_zero_words() {
        for doc in [
            r#"{"name": "x", "timeline": [{"event": "fault_burst", "cycle": 1, "words": 0, "rate": 0.5}]}"#,
            r#"{"name": "x", "timeline": [{"event": "fault_burst", "cycle": 1, "words": 2, "rate": 0.0}]}"#,
            r#"{"name": "x", "timeline": [{"event": "fault_burst", "cycle": 1, "words": 2, "rate": 1.5}]}"#,
            r#"{"name": "x", "timeline": [{"event": "error_rate_shift", "cycle": 1, "rate": 1.0}]}"#,
            r#"{"name": "x", "timeline": [{"event": "scrub", "period": 0}]}"#,
            r#"{"name": "x", "timeline": [{"event": "task_switch", "cycle": 7, "task": "ADPCM encode"}]}"#,
        ] {
            let err = ScenarioDef::from_json(&JsonValue::parse(doc).unwrap()).unwrap_err();
            assert!(matches!(err, ScenarioError::BadValue { .. }), "{doc}");
        }
    }

    #[test]
    fn rejects_missing_and_mistyped_fields() {
        let err = ScenarioDef::from_json(&JsonValue::parse(r"{}").unwrap()).unwrap_err();
        assert_eq!(
            err,
            ScenarioError::MissingField {
                context: "scenario",
                field: "name"
            }
        );
        let doc = r#"{"name": "x", "timeline": [{"event": "scrub"}]}"#;
        let err = ScenarioDef::from_json(&JsonValue::parse(doc).unwrap()).unwrap_err();
        assert_eq!(
            err,
            ScenarioError::MissingField {
                context: "scrub",
                field: "period"
            }
        );
        let doc = r#"{"name": "x", "tags": "burst"}"#;
        let err = ScenarioDef::from_json(&JsonValue::parse(doc).unwrap()).unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::WrongType { field: "tags", .. }
        ));
    }

    #[test]
    fn duplicate_names_rejected_across_axis() {
        let doc = r#"[{"name": "a"}, {"name": "b"}, {"name": "a"}]"#;
        let err = parse_scenarios(&JsonValue::parse(doc).unwrap()).unwrap_err();
        assert_eq!(
            err,
            ScenarioError::DuplicateName {
                name: "a".to_owned()
            }
        );
    }

    #[test]
    fn expect_block_evaluates_to_typed_outcomes() {
        let def = burst_def();
        let good = RunStats {
            completed: true,
            correct: true,
            detected_errors: 3,
            energy_pj: 1e6,
            ..RunStats::default()
        };
        let report = def.evaluate(&good);
        assert!(report.passed);
        assert_eq!(report.checked, 3);
        assert!(report.failures.is_empty());

        let bad = RunStats {
            completed: false,
            detected_errors: 0,
            energy_pj: 1e10,
            ..RunStats::default()
        };
        let report = def.evaluate(&bad);
        assert!(!report.passed);
        assert_eq!(report.failures.len(), 3);
        assert!(report.failures[0].contains("completed == true"));
        assert!(report.failures[1].contains("detected_errors >= 1"));
    }

    #[test]
    fn empty_expect_block_passes_vacuously() {
        let report = ScenarioDef::named("calm").evaluate(&RunStats::default());
        assert!(report.passed);
        assert_eq!(report.checked, 0);
    }

    #[test]
    fn task_override_found() {
        assert_eq!(burst_def().task_override(), Some("G722 encode"));
        assert_eq!(ScenarioDef::named("x").task_override(), None);
    }
}
