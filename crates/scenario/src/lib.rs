//! # chunkpoint-scenario
//!
//! The declarative **timeline-scenario DSL** of the chunkpoint stack,
//! std-only like everything else. A scenario is a *named* dynamic regime
//! layered on top of one campaign grid cell:
//!
//! * **Timeline** — a list of instant-keyed events ([`TimelineEvent`])
//!   that the simulator honors deterministically: `fault_burst` injects
//!   a strike cluster at a cycle, `error_rate_shift` changes the Poisson
//!   rate mid-run, `scrub` models a background scrubbing period, and
//!   `task_switch` swaps the benchmark the cell executes.
//! * **Expect blocks** — typed assertions ([`Expectation`]) over the
//!   final [`RunStats`] (`completed == true`, `detected_errors >= N`,
//!   `energy_pj <= X`). Failures surface as per-scenario *outcomes*
//!   ([`ExpectReport`]), never as panics.
//! * **Canonical wire form** — scenarios parse from the workspace's own
//!   [`JsonValue`] with a typed error enum ([`ScenarioError`]) and render
//!   back canonically ([`ScenarioDef::to_json`]), so scenario hashes —
//!   and therefore campaign spec hashes, range-cache keys, and spec
//!   diffs — are stable byte-for-byte.
//!
//! The crate also hosts the dependency-free JSON layer ([`json`]) the
//! whole workspace builds reports from; `chunkpoint_campaign::json`
//! re-exports it at its historical path.
//!
//! ## Example
//!
//! ```
//! use chunkpoint_scenario::{JsonValue, RunStats, ScenarioDef};
//!
//! let doc = r#"{
//!   "name": "burst-then-calm",
//!   "tags": ["burst"],
//!   "timeline": [
//!     {"event": "fault_burst", "cycle": 1000, "words": 4, "rate": 0.5},
//!     {"event": "error_rate_shift", "cycle": 5000, "rate": 1e-7}
//!   ],
//!   "expect": [
//!     {"field": "completed", "op": "==", "value": true}
//!   ]
//! }"#;
//! let def = ScenarioDef::from_json(&JsonValue::parse(doc).unwrap()).unwrap();
//! assert_eq!(def.name, "burst-then-calm");
//! // Canonical rendering is a fixed point: parse(render(def)) == def.
//! let back = ScenarioDef::from_json(&def.to_json()).unwrap();
//! assert_eq!(back, def);
//! // Expect blocks evaluate to typed outcomes, never panics.
//! let report = def.evaluate(&RunStats { completed: true, ..RunStats::default() });
//! assert!(report.passed);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod format;
pub mod json;

pub use format::{
    parse_scenarios, ExpectField, ExpectOp, ExpectReport, ExpectValue, Expectation, RunStats,
    ScenarioDef, ScenarioError, TimelineEvent,
};
pub use json::{JsonParseError, JsonValue};
