//! A minimal JSON document builder **and parser**.
//!
//! The build environment has no crates.io access (so no serde); campaign
//! reports need only a small, correct subset of JSON: objects, arrays,
//! strings with escaping, integers, floats and booleans. Values render
//! via [`JsonValue::render`] with deterministic formatting — floats use
//! Rust's shortest-roundtrip `{}` so a re-parsed value is bit-identical,
//! and non-finite floats render as `null` (JSON has no NaN/Infinity).
//!
//! [`JsonValue::parse`] is the inverse: a recursive-descent parser over
//! the full JSON grammar (strings with `\uXXXX` escapes including
//! surrogate pairs, scientific-notation numbers, arbitrarily nested
//! containers up to a depth limit). Numbers parse back into the narrowest
//! faithful variant — non-negative integers as [`JsonValue::Uint`],
//! negative ones as [`JsonValue::Int`], everything else as
//! [`JsonValue::Float`] — so `parse(render(v))` reproduces `v` up to that
//! canonical numeric form (see [`JsonValue::canonicalize`]).

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; f64 would lose precision above 2⁵³).
    Int(i64),
    /// An unsigned integer (cycle counts can exceed i64 in principle).
    Uint(u64),
    /// A finite float; non-finite values render as `null`.
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys (deterministic output).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object builder.
    #[must_use]
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// Adds/overwrites nothing — appends a field (builder style).
    ///
    /// # Panics
    ///
    /// Panics when called on a non-object value.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        match &mut self {
            JsonValue::Object(fields) => fields.push((key.to_owned(), value.into())),
            _ => panic!("field() on a non-object JsonValue"),
        }
        self
    }

    /// Renders the value as compact JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => out.push_str(&i.to_string()),
            JsonValue::Uint(u) => out.push_str(&u.to_string()),
            JsonValue::Float(x) => {
                if x.is_finite() {
                    // `{}` prints the shortest string that round-trips.
                    let s = format!("{x}");
                    out.push_str(&s);
                    // Bare "1" is valid JSON but ambiguous about intent;
                    // keep floats recognisable for downstream tooling.
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::Str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parse failure: a message plus the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Containers deeper than this are rejected rather than risking a stack
/// overflow on adversarial input (the service parses network bytes).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error<T>(&self, message: impl Into<String>) -> Result<T, JsonParseError> {
        Err(JsonParseError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.error(format!("expected '{}'", byte as char))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        if depth > MAX_DEPTH {
            return self.error("nesting deeper than 128 levels");
        }
        self.skip_whitespace();
        match self.peek() {
            None => self.error("unexpected end of input"),
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') | Some(b'f') => {
                if self.consume_literal("true") {
                    Ok(JsonValue::Bool(true))
                } else if self.consume_literal("false") {
                    Ok(JsonValue::Bool(false))
                } else {
                    self.error("invalid literal")
                }
            }
            Some(b'n') => {
                if self.consume_literal("null") {
                    Ok(JsonValue::Null)
                } else {
                    self.error("invalid literal")
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => self.error(format!("unexpected byte 0x{other:02x}")),
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return self.error("expected ',' or '}' in object"),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return self.error("expected ',' or ']' in array"),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, JsonParseError> {
        let mut value: u16 = 0;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => b - b'0',
                Some(b @ b'a'..=b'f') => b - b'a' + 10,
                Some(b @ b'A'..=b'F') => b - b'A' + 10,
                _ => return self.error("invalid \\u escape"),
            };
            value = (value << 4) | u16::from(digit);
            self.pos += 1;
        }
        Ok(value)
    }

    fn parse_string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.error("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek();
                    self.pos += 1;
                    match escape {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let unit = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow to form one code point.
                                if !self.consume_literal("\\u") {
                                    return self.error("unpaired surrogate");
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return self.error("unpaired surrogate");
                                }
                                let combined = 0x10000
                                    + ((u32::from(unit) - 0xD800) << 10)
                                    + (u32::from(low) - 0xDC00);
                                char::from_u32(combined)
                            } else if (0xDC00..0xE000).contains(&unit) {
                                None // lone low surrogate
                            } else {
                                char::from_u32(u32::from(unit))
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.error("invalid \\u escape"),
                            }
                        }
                        _ => return self.error("invalid escape"),
                    }
                }
                Some(b) if b < 0x20 => return self.error("raw control character in string"),
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid — copy the whole code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .expect("input was a valid &str");
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let int_digits = self.pos - int_start;
        if int_digits == 0 {
            return self.error("number has no digits");
        }
        if int_digits > 1 && self.bytes[int_start] == b'0' {
            return self.error("number has a leading zero");
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return self.error("fraction has no digits");
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return self.error("exponent has no digits");
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if integral {
            // Narrowest faithful variant; digits that overflow even u64/i64
            // fall through to f64 like every practical JSON reader.
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(JsonValue::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::Uint(u));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(JsonValue::Float(x)),
            _ => self.error("number out of range"),
        }
    }
}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] with the byte offset of the first
    /// violation of the JSON grammar.
    pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let value = parser.parse_value(0)?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return parser.error("trailing characters after document");
        }
        Ok(value)
    }

    /// Rewrites the tree into the form [`JsonValue::parse`] produces:
    /// non-negative [`Int`](JsonValue::Int)s become
    /// [`Uint`](JsonValue::Uint)s, non-finite floats become `null`, and
    /// integral-valued floats stay floats (their rendering keeps the
    /// `.0`). `parse(render(v)) == v.canonicalize()` for every tree.
    #[must_use]
    pub fn canonicalize(self) -> JsonValue {
        match self {
            JsonValue::Int(i) if i >= 0 => JsonValue::Uint(i as u64),
            JsonValue::Float(x) if !x.is_finite() => JsonValue::Null,
            JsonValue::Array(items) => {
                JsonValue::Array(items.into_iter().map(JsonValue::canonicalize).collect())
            }
            JsonValue::Object(fields) => JsonValue::Object(
                fields
                    .into_iter()
                    .map(|(k, v)| (k, v.canonicalize()))
                    .collect(),
            ),
            other => other,
        }
    }

    /// Looks up a field of an object (`None` for missing keys or
    /// non-objects). Insertion order is preserved, first match wins.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::Uint(u) => Some(u),
            JsonValue::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any JSON number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::Float(x) => Some(x),
            JsonValue::Int(i) => Some(i as f64),
            JsonValue::Uint(u) => Some(u as f64),
            _ => None,
        }
    }

    /// The items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}
impl From<i64> for JsonValue {
    fn from(i: i64) -> Self {
        JsonValue::Int(i)
    }
}
impl From<u64> for JsonValue {
    fn from(u: u64) -> Self {
        JsonValue::Uint(u)
    }
}
impl From<usize> for JsonValue {
    fn from(u: usize) -> Self {
        JsonValue::Uint(u as u64)
    }
}
impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Float(x)
    }
}
impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_owned())
    }
}
impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(items: Vec<JsonValue>) -> Self {
        JsonValue::Array(items)
    }
}
impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(opt: Option<T>) -> Self {
        opt.map_or(JsonValue::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = JsonValue::object()
            .field("name", "campaign")
            .field("threads", 4usize)
            .field("ok", true)
            .field("rate", 1e-6)
            .field("none", JsonValue::Null)
            .field(
                "items",
                JsonValue::Array(vec![JsonValue::Int(1), JsonValue::Int(-2)]),
            );
        assert_eq!(
            doc.render(),
            r#"{"name":"campaign","threads":4,"ok":true,"rate":0.000001,"none":null,"items":[1,-2]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::Str("a\"b\\c\nd\te\u{1}".to_owned());
        assert_eq!(v.render(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn floats_round_trip_and_stay_floats() {
        assert_eq!(JsonValue::Float(2.0).render(), "2.0");
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        let x = 0.1 + 0.2;
        let rendered = JsonValue::Float(x).render();
        assert_eq!(rendered.parse::<f64>().unwrap().to_bits(), x.to_bits());
    }

    #[test]
    fn big_integers_stay_exact() {
        let big = (1u64 << 53) + 1;
        assert_eq!(JsonValue::Uint(big).render(), big.to_string());
    }

    #[test]
    fn parses_nested_documents() {
        let doc = JsonValue::parse(
            r#" { "name": "campaign", "n": 4, "neg": -2, "ok": true,
                  "rate": 1.5e-6, "none": null, "items": [1, [2, {"k": "v"}]] } "#,
        )
        .unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("campaign"));
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(4));
        assert_eq!(doc.get("neg"), Some(&JsonValue::Int(-2)));
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("rate").unwrap().as_f64(), Some(1.5e-6));
        assert!(doc.get("none").unwrap().is_null());
        let items = doc.get("items").unwrap().as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(
            items[1].as_array().unwrap()[1].get("k").unwrap().as_str(),
            Some("v")
        );
    }

    #[test]
    fn parses_string_escapes_and_unicode() {
        let v = JsonValue::parse(r#""a\"b\\c\nd\teé😀π""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\teé😀π"));
        // \u escapes: BMP char, astral surrogate pair, control char.
        let src: String = ["\"", "\\u00e9", "\\ud83d", "\\ude00", "\\u0001", "\""].concat();
        let escaped = JsonValue::parse(&src).unwrap();
        assert_eq!(
            escaped.as_str(),
            Some(concat!("\u{e9}", "\u{1f600}", "\u{1}"))
        );
        // Lone surrogates are malformed.
        assert!(JsonValue::parse(r#""\ud83d""#).is_err());
        assert!(JsonValue::parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn parses_number_forms() {
        assert_eq!(JsonValue::parse("0").unwrap(), JsonValue::Uint(0));
        assert_eq!(
            JsonValue::parse("18446744073709551615").unwrap(),
            JsonValue::Uint(u64::MAX)
        );
        assert_eq!(
            JsonValue::parse("-9223372036854775808").unwrap(),
            JsonValue::Int(i64::MIN)
        );
        assert_eq!(JsonValue::parse("2.0").unwrap(), JsonValue::Float(2.0));
        assert_eq!(JsonValue::parse("-1e3").unwrap(), JsonValue::Float(-1e3));
        assert_eq!(JsonValue::parse("1E+2").unwrap(), JsonValue::Float(100.0));
        // Integers beyond u64 degrade to f64 rather than erroring.
        assert_eq!(
            JsonValue::parse("36893488147419103232").unwrap(),
            JsonValue::Float(3.6893488147419103e19)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "nul",
            "01",
            "1.",
            ".5",
            "1e",
            "+1",
            "--1",
            "\"unterminated",
            "\"bad \\q escape\"",
            "[1] trailing",
            "{\"a\" 1}",
            "\u{1}",
            "nan",
            "Infinity",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Raw control characters must be escaped inside strings.
        assert!(JsonValue::parse("\"a\nb\"").is_err());
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(JsonValue::parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn render_parse_round_trips() {
        let doc = JsonValue::object()
            .field("name", "say \"hi\"\n")
            .field("big", (1u64 << 53) + 1)
            .field("neg", -42i64)
            .field("x", 0.1 + 0.2)
            .field("flag", false)
            .field("nothing", JsonValue::Null)
            .field(
                "grid",
                JsonValue::Array(vec![JsonValue::Float(1e-6), JsonValue::Uint(3)]),
            );
        let reparsed = JsonValue::parse(&doc.render()).unwrap();
        assert_eq!(reparsed, doc.clone().canonicalize());
        // And rendering is a fixed point after one round trip.
        assert_eq!(reparsed.render(), doc.render());
    }
}
