//! Minimal self-contained SVG plotting, so the experiment binaries can
//! regenerate the paper's *figures* as figures (not just tables). No
//! external dependencies: the charts the evaluation needs are grouped bar
//! charts (Fig. 5) and step/scatter plots (Fig. 4), both trivial SVG.

use std::fmt::Write as _;

/// A simple palette matching typical conference grayscale-friendly plots.
const PALETTE: [&str; 6] = [
    "#4878a8", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c",
];

/// Builds a grouped bar chart (one group per category, one bar per
/// series) and returns the SVG document.
///
/// # Panics
///
/// Panics if the series lengths disagree with the category count.
#[must_use]
pub fn grouped_bar_chart(
    title: &str,
    y_label: &str,
    categories: &[String],
    series: &[(String, Vec<f64>)],
) -> String {
    assert!(!categories.is_empty() && !series.is_empty(), "empty chart");
    for (name, values) in series {
        assert_eq!(
            values.len(),
            categories.len(),
            "series '{name}' length mismatch"
        );
    }
    let width = 900.0f64;
    let height = 460.0f64;
    let margin_left = 70.0;
    let margin_right = 20.0;
    let margin_top = 50.0;
    let margin_bottom = 110.0;
    let plot_w = width - margin_left - margin_right;
    let plot_h = height - margin_top - margin_bottom;

    let y_max = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(0.0f64, f64::max)
        .max(1e-9)
        * 1.1;

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="Helvetica,Arial,sans-serif">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{width}" height="{height}" fill="white"/>"#
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="28" font-size="17" text-anchor="middle" font-weight="bold">{}</text>"#,
        width / 2.0,
        xml_escape(title)
    );
    // Y axis with 5 gridlines.
    for i in 0..=5 {
        let value = y_max * f64::from(i) / 5.0;
        let y = margin_top + plot_h - plot_h * f64::from(i) / 5.0;
        let _ = write!(
            svg,
            r##"<line x1="{margin_left}" y1="{y}" x2="{}" y2="{y}" stroke="#ddd"/>"##,
            margin_left + plot_w
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-size="11" text-anchor="end">{:.2}</text>"#,
            margin_left - 6.0,
            y + 4.0,
            value
        );
    }
    let _ = write!(
        svg,
        r#"<text x="16" y="{}" font-size="12" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
        margin_top + plot_h / 2.0,
        margin_top + plot_h / 2.0,
        xml_escape(y_label)
    );

    // Bars.
    let group_w = plot_w / categories.len() as f64;
    let bar_w = (group_w * 0.85) / series.len() as f64;
    for (ci, category) in categories.iter().enumerate() {
        let group_x = margin_left + group_w * ci as f64 + group_w * 0.075;
        for (si, (_, values)) in series.iter().enumerate() {
            let value = values[ci];
            let bar_h = plot_h * (value / y_max);
            let x = group_x + bar_w * si as f64;
            let y = margin_top + plot_h - bar_h;
            let color = PALETTE[si % PALETTE.len()];
            let _ = write!(
                svg,
                r#"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{bar_h:.1}" fill="{color}"><title>{}: {value:.3}</title></rect>"#,
                bar_w * 0.92,
                xml_escape(category),
            );
        }
        let cx = group_x + bar_w * series.len() as f64 / 2.0;
        let ty = margin_top + plot_h + 14.0;
        let _ = write!(
            svg,
            r#"<text x="{cx:.1}" y="{ty:.1}" font-size="11" text-anchor="end" transform="rotate(-35 {cx:.1} {ty:.1})">{}</text>"#,
            xml_escape(category)
        );
    }
    // Baseline.
    let _ = write!(
        svg,
        r#"<line x1="{margin_left}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        margin_top + plot_h,
        margin_left + plot_w,
        margin_top + plot_h
    );
    // Legend.
    for (si, (name, _)) in series.iter().enumerate() {
        let x = margin_left + 10.0 + 165.0 * si as f64;
        let y = height - 18.0;
        let color = PALETTE[si % PALETTE.len()];
        let _ = write!(
            svg,
            r#"<rect x="{x}" y="{}" width="12" height="12" fill="{color}"/>"#,
            y - 10.0
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{y}" font-size="11">{}</text>"#,
            x + 16.0,
            xml_escape(name)
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Builds a step plot (x ascending, y per x) — the Fig. 4 staircase.
///
/// # Panics
///
/// Panics on empty input.
#[must_use]
pub fn step_plot(
    title: &str,
    x_label: &str,
    y_label: &str,
    points: &[(f64, f64)],
    fill_under: bool,
) -> String {
    assert!(!points.is_empty(), "empty plot");
    let width = 900.0f64;
    let height = 460.0f64;
    let margin_left = 70.0;
    let margin_right = 20.0;
    let margin_top = 50.0;
    let margin_bottom = 70.0;
    let plot_w = width - margin_left - margin_right;
    let plot_h = height - margin_top - margin_bottom;
    let x_max = points.iter().map(|p| p.0).fold(f64::MIN, f64::max).max(1.0);
    let y_max = points.iter().map(|p| p.1).fold(f64::MIN, f64::max).max(1.0) * 1.1;

    let sx = |x: f64| margin_left + plot_w * x / x_max;
    let sy = |y: f64| margin_top + plot_h - plot_h * y / y_max;

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="Helvetica,Arial,sans-serif">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{width}" height="{height}" fill="white"/>"#
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="28" font-size="17" text-anchor="middle" font-weight="bold">{}</text>"#,
        width / 2.0,
        xml_escape(title)
    );
    for i in 0..=5 {
        let yv = y_max * f64::from(i) / 5.0;
        let y = sy(yv);
        let _ = write!(
            svg,
            r##"<line x1="{margin_left}" y1="{y}" x2="{}" y2="{y}" stroke="#ddd"/>"##,
            margin_left + plot_w
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-size="11" text-anchor="end">{yv:.0}</text>"#,
            margin_left - 6.0,
            y + 4.0
        );
        let xv = x_max * f64::from(i) / 5.0;
        let x = sx(xv);
        let _ = write!(
            svg,
            r#"<text x="{x}" y="{}" font-size="11" text-anchor="middle">{xv:.0}</text>"#,
            margin_top + plot_h + 16.0
        );
    }
    // Step path.
    let mut path = format!("M {:.1} {:.1}", sx(points[0].0), sy(points[0].1));
    let mut last_y = points[0].1;
    for &(x, y) in points.iter().skip(1) {
        if (y - last_y).abs() > f64::EPSILON {
            let _ = write!(path, " L {:.1} {:.1}", sx(x), sy(last_y));
            let _ = write!(path, " L {:.1} {:.1}", sx(x), sy(y));
            last_y = y;
        }
    }
    let _ = write!(path, " L {:.1} {:.1}", sx(x_max), sy(last_y));
    if fill_under {
        let mut area = path.clone();
        let _ = write!(
            area,
            " L {:.1} {:.1} L {:.1} {:.1} Z",
            sx(x_max),
            sy(0.0),
            sx(points[0].0),
            sy(0.0)
        );
        let _ = write!(
            svg,
            r##"<path d="{area}" fill="#4878a833" stroke="none"/>"##
        );
    }
    let _ = write!(
        svg,
        r##"<path d="{path}" fill="none" stroke="#4878a8" stroke-width="2"/>"##
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" font-size="12" text-anchor="middle">{}</text>"#,
        margin_left + plot_w / 2.0,
        height - 18.0,
        xml_escape(x_label)
    );
    let _ = write!(
        svg,
        r#"<text x="16" y="{}" font-size="12" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
        margin_top + plot_h / 2.0,
        margin_top + plot_h / 2.0,
        xml_escape(y_label)
    );
    let _ = write!(
        svg,
        r#"<line x1="{margin_left}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        margin_top + plot_h,
        margin_left + plot_w,
        margin_top + plot_h
    );
    svg.push_str("</svg>");
    svg
}

/// Renders a Fig. 1-style execution timeline from trace events: phase
/// bars, checkpoint ticks, read-error flashes and rollback arrows.
///
/// # Panics
///
/// Panics on an empty trace.
#[must_use]
pub fn timeline_svg(title: &str, events: &[chunkpoint_sim::TraceEvent]) -> String {
    use chunkpoint_sim::TraceEvent;
    assert!(!events.is_empty(), "empty trace");
    let t_end = events
        .iter()
        .map(TraceEvent::cycle)
        .max()
        .unwrap_or(1)
        .max(1);
    let width = 1000.0f64;
    let height = 230.0f64;
    let margin_left = 30.0;
    let margin_right = 20.0;
    let lane_y = 70.0;
    let lane_h = 36.0;
    let plot_w = width - margin_left - margin_right;
    let sx = |cycle: u64| margin_left + plot_w * cycle as f64 / t_end as f64;

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="Helvetica,Arial,sans-serif">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{width}" height="{height}" fill="white"/>"#
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="24" font-size="15" text-anchor="middle" font-weight="bold">{}</text>"#,
        width / 2.0,
        xml_escape(title)
    );
    // Phase bars: pair each PhaseStart with the next PhaseEnd/ReadError.
    let mut open: Option<(usize, u64)> = None;
    for event in events {
        match *event {
            TraceEvent::PhaseStart { phase, cycle } => open = Some((phase, cycle)),
            TraceEvent::PhaseEnd { phase, cycle } => {
                if let Some((p, start)) = open.take() {
                    debug_assert_eq!(p, phase);
                    let x = sx(start);
                    let w = (sx(cycle) - x).max(1.5);
                    let _ = write!(
                        svg,
                        r##"<rect x="{x:.1}" y="{lane_y}" width="{w:.1}" height="{lane_h}" fill="#4878a8" stroke="white" stroke-width="0.5"><title>P{phase}</title></rect>"##
                    );
                    if w > 22.0 {
                        let _ = write!(
                            svg,
                            r#"<text x="{:.1}" y="{:.1}" font-size="10" fill="white" text-anchor="middle">P{phase}</text>"#,
                            x + w / 2.0,
                            lane_y + lane_h / 2.0 + 3.0
                        );
                    }
                }
            }
            TraceEvent::ReadError { cycle, .. } => {
                if let Some((_, start)) = open.take() {
                    // Aborted execution: draw hatched.
                    let x = sx(start);
                    let w = (sx(cycle) - x).max(1.5);
                    let _ = write!(
                        svg,
                        r##"<rect x="{x:.1}" y="{lane_y}" width="{w:.1}" height="{lane_h}" fill="#d65f5f" opacity="0.6"><title>aborted by read error</title></rect>"##
                    );
                }
                let x = sx(cycle);
                let _ = write!(
                    svg,
                    r##"<text x="{x:.1}" y="{:.1}" font-size="14" text-anchor="middle" fill="#d65f5f" font-weight="bold">&#9889;</text>"##,
                    lane_y - 8.0
                );
            }
            TraceEvent::Checkpoint { index, cycle, .. } => {
                let x = sx(cycle);
                let _ = write!(
                    svg,
                    r##"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="#6acc64" stroke-width="2"><title>CH({index})</title></line>"##,
                    lane_y - 4.0,
                    lane_y + lane_h + 4.0
                );
            }
            TraceEvent::Rollback { cycle, .. } => {
                let x = sx(cycle);
                let _ = write!(
                    svg,
                    r##"<path d="M {x:.1} {:.1} l -7 -9 l 14 0 Z" fill="#ee854a"><title>rollback</title></path>"##,
                    lane_y + lane_h + 16.0
                );
            }
            TraceEvent::TaskRestart { cycle } => {
                let x = sx(cycle);
                let _ = write!(
                    svg,
                    r##"<line x1="{x:.1}" y1="{lane_y}" x2="{x:.1}" y2="{:.1}" stroke="#d65f5f" stroke-width="2" stroke-dasharray="3,2"/>"##,
                    lane_y + lane_h
                );
            }
        }
    }
    // Legend + axis.
    let _ = write!(
        svg,
        r##"<text x="{margin_left}" y="{}" font-size="11">blue: phase execution &#183; green tick: checkpoint commit to L1' &#183; bolt/red: read error &#183; orange: rollback</text>"##,
        height - 34.0
    );
    let _ = write!(
        svg,
        r#"<text x="{margin_left}" y="{}" font-size="11">0 .. {t_end} cycles</text>"#,
        height - 16.0
    );
    svg.push_str("</svg>");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_renders_phases_and_events() {
        use chunkpoint_sim::TraceEvent;
        let events = vec![
            TraceEvent::PhaseStart { phase: 0, cycle: 0 },
            TraceEvent::Checkpoint {
                index: 1,
                cycle: 90,
                chunk_words: 10,
            },
            TraceEvent::PhaseEnd {
                phase: 0,
                cycle: 90,
            },
            TraceEvent::PhaseStart {
                phase: 1,
                cycle: 90,
            },
            TraceEvent::ReadError {
                addr: 5,
                cycle: 140,
            },
            TraceEvent::Rollback {
                to_checkpoint: 1,
                cycle: 150,
            },
            TraceEvent::PhaseStart {
                phase: 1,
                cycle: 150,
            },
            TraceEvent::PhaseEnd {
                phase: 1,
                cycle: 240,
            },
        ];
        let svg = timeline_svg("fig1", &events);
        assert!(svg.contains("P0"));
        assert!(svg.contains("rollback"));
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn bar_chart_is_valid_svg_with_all_bars() {
        let svg = grouped_bar_chart(
            "t",
            "y",
            &["a".into(), "b".into()],
            &[("s1".into(), vec![1.0, 2.0]), ("s2".into(), vec![0.5, 1.5])],
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 1 + 4 + 2); // bg + bars + legend
        assert!(svg.contains("s1"));
    }

    #[test]
    fn step_plot_renders_steps() {
        let svg = step_plot(
            "t",
            "x",
            "y",
            &[(1.0, 17.0), (2.0, 17.0), (3.0, 15.0)],
            true,
        );
        assert!(svg.contains("<path"));
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn escapes_markup() {
        let svg = grouped_bar_chart("a<b&c", "y", &["x".into()], &[("s".into(), vec![1.0])]);
        assert!(svg.contains("a&lt;b&amp;c"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_panics() {
        let _ = grouped_bar_chart("t", "y", &["a".into()], &[("s".into(), vec![1.0, 2.0])]);
    }
}
