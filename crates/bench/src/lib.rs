//! # chunkpoint-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (see `DESIGN.md` for the experiment index):
//!
//! | Binary | Regenerates |
//! |--------|-------------|
//! | `fig4_feasible_region`  | Fig. 4 — feasible (chunk size, correctable bits) under the 5 % area budget |
//! | `table1_optimal_chunks` | Table I — optimum protected-buffer size per benchmark |
//! | `fig5_energy`           | Fig. 5 — normalized energy per scheme per benchmark |
//! | `time_overhead`         | §III-B — execution-time overhead per scheme |
//! | `ablation_error_rate`   | λ sweep (1e-8 … 1e-5) |
//! | `ablation_area_budget`  | OV1 sweep (1 … 10 %) |
//! | `ablation_chunk_sweep`  | energy vs chunk size (the optimum's interior shape) |
//! | `bench_campaign`        | campaign-engine throughput trajectory (`BENCH_campaign.json`) |
//!
//! The Monte Carlo bins all run on the `chunkpoint_campaign` engine and
//! share its `--threads/--seeds/--seed/--json` flags; per-scenario
//! results are bit-identical at any thread count. Criterion
//! micro-benchmarks for the codecs and the mitigation runner live in
//! `benches/`.

use chunkpoint_campaign::{run_cell, SchemeSpec};
use chunkpoint_core::{run, MitigationScheme, RunReport, SystemConfig};
use chunkpoint_workloads::Benchmark;

pub mod plot;
pub mod report;

pub use report::print_row;

/// Number of fault-process seeds averaged per reported data point.
pub const DEFAULT_SEEDS: u64 = 8;

/// Mean of `f(seed)` over `n` seeds.
pub fn mean_over_seeds(n: u64, mut f: impl FnMut(u64) -> f64) -> f64 {
    assert!(n > 0, "need at least one seed");
    (0..n).map(&mut f).sum::<f64>() / n as f64
}

/// Energy and timing of one (benchmark, scheme) cell, averaged over
/// seeds and normalised to the same-seed *Default* run.
#[derive(Debug, Clone, Copy)]
pub struct SchemeCell {
    /// Mean normalized energy (Default = 1.0).
    pub energy_ratio: f64,
    /// Mean normalized execution time (Default = 1.0).
    pub cycle_ratio: f64,
    /// Fraction of seeds whose output matched the fault-free reference.
    pub correct_fraction: f64,
    /// Fraction of seeds that ran to completion.
    pub completed_fraction: f64,
}

/// Runs one scheme over `seeds` seed replicates on the campaign engine
/// (all cores; results are thread-count-independent) and aggregates
/// against the Default denominator (the paper normalises Fig. 5 to the
/// default case).
pub fn measure(
    benchmark: Benchmark,
    scheme: MitigationScheme,
    base_config: &SystemConfig,
    seeds: u64,
) -> SchemeCell {
    measure_threaded(benchmark, scheme, base_config, seeds, 0)
}

/// [`measure`] with an explicit worker count (`0` = all cores).
pub fn measure_threaded(
    benchmark: Benchmark,
    scheme: MitigationScheme,
    base_config: &SystemConfig,
    seeds: u64,
    threads: usize,
) -> SchemeCell {
    assert!(seeds > 0, "need at least one seed");
    let result = run_cell(benchmark, scheme, base_config, seeds, threads);
    let n = result.results.len() as f64;
    let mut cell = SchemeCell {
        energy_ratio: 0.0,
        cycle_ratio: 0.0,
        correct_fraction: 0.0,
        completed_fraction: 0.0,
    };
    for r in &result.results {
        cell.energy_ratio += r.energy_ratio.expect("run_cell normalizes") / n;
        cell.cycle_ratio += r.cycle_ratio.expect("run_cell normalizes") / n;
        if r.correct == Some(true) {
            cell.correct_fraction += 1.0 / n;
        }
        if r.completed {
            cell.completed_fraction += 1.0 / n;
        }
    }
    cell
}

/// The scheme axis of Fig. 5 in paper order, as campaign scheme specs:
/// Default, SW-based, HW-based, Proposed (optimal), Proposed
/// (sub-optimal). The optimal/sub-optimal entries resolve per benchmark
/// through the optimizer when the campaign grid is enumerated.
#[must_use]
pub fn fig5_scheme_axis() -> Vec<(&'static str, SchemeSpec)> {
    vec![
        ("Default", SchemeSpec::Fixed(MitigationScheme::Default)),
        ("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart)),
        (
            "HW-based",
            SchemeSpec::Fixed(MitigationScheme::hw_baseline()),
        ),
        ("Proposed (optimal)", SchemeSpec::Optimal),
        ("Proposed (sub-optimal)", SchemeSpec::Suboptimal),
    ]
}

/// The five scheme columns of Fig. 5 for one benchmark, in paper order,
/// resolved to concrete schemes (the legacy per-benchmark form; new code
/// should put [`fig5_scheme_axis`] on a campaign grid instead).
pub fn fig5_schemes(
    benchmark: Benchmark,
    config: &SystemConfig,
) -> Vec<(String, MitigationScheme)> {
    fig5_scheme_axis()
        .into_iter()
        .map(|(label, spec)| (label.to_owned(), spec.resolve(benchmark, config)))
        .collect()
}

/// Convenience: a full single-seed report for debugging.
pub fn debug_report(
    benchmark: Benchmark,
    scheme: MitigationScheme,
    config: &SystemConfig,
) -> RunReport {
    run(benchmark, scheme, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_over_seeds_averages() {
        let m = mean_over_seeds(4, |s| s as f64);
        assert!((m - 1.5).abs() < 1e-12);
    }

    #[test]
    fn fig5_scheme_list_has_paper_columns() {
        let config = SystemConfig::paper(0);
        let schemes = fig5_schemes(Benchmark::AdpcmEncode, &config);
        assert_eq!(schemes.len(), 5);
        assert_eq!(schemes[0].0, "Default");
        assert!(matches!(schemes[3].1, MitigationScheme::Hybrid { .. }));
    }

    #[test]
    fn measure_default_is_unity() {
        let mut config = SystemConfig::paper(3);
        config.scale = 0.25;
        let cell = measure(
            Benchmark::AdpcmEncode,
            MitigationScheme::Default,
            &config,
            2,
        );
        assert!((cell.energy_ratio - 1.0).abs() < 1e-9);
        assert!((cell.cycle_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn measure_is_thread_count_independent() {
        let mut config = SystemConfig::paper(5);
        config.scale = 0.25;
        config.faults.error_rate = 1e-5;
        let serial = measure_threaded(
            Benchmark::AdpcmEncode,
            MitigationScheme::SwRestart,
            &config,
            3,
            1,
        );
        let parallel = measure_threaded(
            Benchmark::AdpcmEncode,
            MitigationScheme::SwRestart,
            &config,
            3,
            4,
        );
        assert_eq!(
            serial.energy_ratio.to_bits(),
            parallel.energy_ratio.to_bits()
        );
        assert_eq!(serial.cycle_ratio.to_bits(), parallel.cycle_ratio.to_bits());
    }
}
