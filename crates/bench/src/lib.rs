//! # chunkpoint-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (see `DESIGN.md` for the experiment index):
//!
//! | Binary | Regenerates |
//! |--------|-------------|
//! | `fig4_feasible_region`  | Fig. 4 — feasible (chunk size, correctable bits) under the 5 % area budget |
//! | `table1_optimal_chunks` | Table I — optimum protected-buffer size per benchmark |
//! | `fig5_energy`           | Fig. 5 — normalized energy per scheme per benchmark |
//! | `time_overhead`         | §III-B — execution-time overhead per scheme |
//! | `ablation_error_rate`   | λ sweep (1e-8 … 1e-5) |
//! | `ablation_area_budget`  | OV1 sweep (1 … 10 %) |
//! | `ablation_chunk_sweep`  | energy vs chunk size (the optimum's interior shape) |
//!
//! Criterion micro-benchmarks for the codecs and the mitigation runner
//! live in `benches/`.

use chunkpoint_core::{golden, run, MitigationScheme, RunReport, SystemConfig};
use chunkpoint_workloads::Benchmark;

pub mod plot;

/// Number of fault-process seeds averaged per reported data point.
pub const DEFAULT_SEEDS: u64 = 8;

/// Mean of `f(seed)` over `n` seeds.
pub fn mean_over_seeds(n: u64, mut f: impl FnMut(u64) -> f64) -> f64 {
    assert!(n > 0, "need at least one seed");
    (0..n).map(&mut f).sum::<f64>() / n as f64
}

/// Energy and timing of one (benchmark, scheme) cell, averaged over
/// seeds and normalised to the same-seed *Default* run.
#[derive(Debug, Clone, Copy)]
pub struct SchemeCell {
    /// Mean normalized energy (Default = 1.0).
    pub energy_ratio: f64,
    /// Mean normalized execution time (Default = 1.0).
    pub cycle_ratio: f64,
    /// Fraction of seeds whose output matched the fault-free reference.
    pub correct_fraction: f64,
    /// Fraction of seeds that ran to completion.
    pub completed_fraction: f64,
}

/// Runs one scheme over `seeds` seeds and aggregates against the Default
/// denominator (the paper normalises Fig. 5 to the default case).
pub fn measure(
    benchmark: Benchmark,
    scheme: MitigationScheme,
    base_config: &SystemConfig,
    seeds: u64,
) -> SchemeCell {
    assert!(seeds > 0, "need at least one seed");
    let reference = golden(benchmark, base_config);
    let mut energy = 0.0;
    let mut cycles = 0.0;
    let mut correct = 0u64;
    let mut completed = 0u64;
    for seed in 0..seeds {
        let mut config = base_config.clone();
        config.faults.seed = base_config.faults.seed ^ (seed.wrapping_mul(0x9E37_79B9));
        let denominator = run(benchmark, MitigationScheme::Default, &config);
        let report = run(benchmark, scheme, &config);
        energy += report.energy_ratio(&denominator);
        cycles += report.cycle_ratio(&denominator);
        if report.output_matches(&reference) {
            correct += 1;
        }
        if report.completed {
            completed += 1;
        }
    }
    SchemeCell {
        energy_ratio: energy / seeds as f64,
        cycle_ratio: cycles / seeds as f64,
        correct_fraction: correct as f64 / seeds as f64,
        completed_fraction: completed as f64 / seeds as f64,
    }
}

/// The five scheme columns of Fig. 5 for one benchmark, in paper order:
/// Default, SW-based, HW-based, Proposed (optimal), Proposed (sub-optimal).
pub fn fig5_schemes(benchmark: Benchmark, config: &SystemConfig) -> Vec<(String, MitigationScheme)> {
    let best = chunkpoint_core::optimize(benchmark, config)
        .expect("paper constraints admit a feasible design for every benchmark");
    let sub = chunkpoint_core::suboptimal(benchmark, config)
        .expect("sub-optimal point exists whenever an optimum does");
    vec![
        ("Default".to_owned(), MitigationScheme::Default),
        ("SW-based".to_owned(), MitigationScheme::SwRestart),
        ("HW-based".to_owned(), MitigationScheme::hw_baseline()),
        (
            "Proposed (optimal)".to_owned(),
            MitigationScheme::Hybrid {
                chunk_words: best.chunk_words,
                l1_prime_t: best.l1_prime_t,
            },
        ),
        (
            "Proposed (sub-optimal)".to_owned(),
            MitigationScheme::Hybrid {
                chunk_words: sub.chunk_words,
                l1_prime_t: sub.l1_prime_t,
            },
        ),
    ]
}

/// Prints a markdown-ish table row.
pub fn print_row(label: &str, cells: &[String]) {
    print!("{label:<24}");
    for cell in cells {
        print!(" | {cell:>12}");
    }
    println!();
}

/// Convenience: a full single-seed report for debugging.
pub fn debug_report(
    benchmark: Benchmark,
    scheme: MitigationScheme,
    config: &SystemConfig,
) -> RunReport {
    run(benchmark, scheme, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_over_seeds_averages() {
        let m = mean_over_seeds(4, |s| s as f64);
        assert!((m - 1.5).abs() < 1e-12);
    }

    #[test]
    fn fig5_scheme_list_has_paper_columns() {
        let config = SystemConfig::paper(0);
        let schemes = fig5_schemes(Benchmark::AdpcmEncode, &config);
        assert_eq!(schemes.len(), 5);
        assert_eq!(schemes[0].0, "Default");
        assert!(matches!(schemes[3].1, MitigationScheme::Hybrid { .. }));
    }

    #[test]
    fn measure_default_is_unity() {
        let mut config = SystemConfig::paper(3);
        config.scale = 0.25;
        let cell = measure(Benchmark::AdpcmEncode, MitigationScheme::Default, &config, 2);
        assert!((cell.energy_ratio - 1.0).abs() < 1e-9);
        assert!((cell.cycle_ratio - 1.0).abs() < 1e-9);
    }
}
