//! Shared table rendering for the experiment binaries.
//!
//! Every bin used to carry its own `print_row` / `"-".repeat(...)`
//! boilerplate with hand-synchronised widths; [`Table`] is the one copy.
//! A table has a left-aligned label column and N right-aligned data
//! columns of uniform width, separated by `" | "`; the rule under the
//! header is derived from the same widths, so label/column/rule can
//! never drift apart again.

/// A fixed-geometry console table.
#[derive(Debug, Clone, Copy)]
pub struct Table {
    label_width: usize,
    col_width: usize,
}

/// The geometry most paper tables use (24-char labels, 12-char cells).
pub const PAPER: Table = Table::new(24, 12);

impl Table {
    /// A table with `label_width` label chars and `col_width`-char cells.
    #[must_use]
    pub const fn new(label_width: usize, col_width: usize) -> Self {
        Self {
            label_width,
            col_width,
        }
    }

    /// Prints one row: left-aligned label, right-aligned cells.
    pub fn row(&self, label: &str, cells: &[String]) {
        print!("{label:<width$}", width = self.label_width);
        for cell in cells {
            print!(" | {cell:>width$}", width = self.col_width);
        }
        println!();
    }

    /// Prints a horizontal rule sized for `columns` data columns.
    pub fn rule(&self, columns: usize) {
        println!(
            "{}",
            "-".repeat(self.label_width + columns * (self.col_width + 3))
        );
    }

    /// Prints a header row followed by its rule.
    pub fn header(&self, label: &str, columns: &[String]) {
        self.row(label, columns);
        self.rule(columns.len());
    }
}

/// Formats a float cell with 3 decimals (the experiment tables' default).
#[must_use]
pub fn cell(x: f64) -> String {
    format!("{x:.3}")
}

/// Backwards-compatible free function over [`PAPER`] geometry.
pub fn print_row(label: &str, cells: &[String]) {
    PAPER.row(label, cells);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_width_matches_row_width() {
        // A row is label + per-cell " | " + cell; the rule must span it.
        let t = Table::new(10, 5);
        let row_len = 10 + 3 * (5 + 3);
        let rule_len = t.label_width + 3 * (t.col_width + 3);
        assert_eq!(row_len, rule_len);
    }

    #[test]
    fn cell_formats_three_decimals() {
        assert_eq!(cell(1.23456), "1.235");
        assert_eq!(cell(2.0), "2.000");
    }
}
