//! Fixed-iteration ECC and SRAM throughput measurement, emitting
//! `BENCH_ecc.json` so successive PRs have a comparable perf trajectory.
//!
//! Unlike the criterion micro-benches (which calibrate to wall-clock
//! budgets), this harness runs a fixed number of operations per cell and
//! reports words/second, plus the speedup of the table-driven hot paths
//! over the retained bit-serial references.
//!
//! Run with `cargo run --release -p chunkpoint_bench --bin bench_ecc`.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use chunkpoint_ecc::{build_scheme, BchCode, BitBuf, Decoded, EccKind, EccScheme, SecdedCode};
use chunkpoint_sim::{FaultProcess, Sram};

/// Iterations for the table-driven paths.
const FAST_ITERS: u64 = 100_000;
/// Iterations for the bit-serial references (slow by design).
const REF_ITERS: u64 = 8_000;
/// Timed samples per cell; the median is reported (shared machines are
/// noisy, and the median is robust against scheduler interference).
const SAMPLES: usize = 5;
/// Words per SRAM block-transfer measurement.
const SRAM_WORDS: usize = 1024;
/// Block-transfer rounds per SRAM measurement.
const SRAM_ROUNDS: u64 = 100;

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn words_per_sec(iters: u64, mut op: impl FnMut(u64)) -> f64 {
    // Small warmup so lazily-faulted pages and branch predictors settle.
    for i in 0..iters / 20 + 1 {
        op(i);
    }
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for i in 0..iters {
            op(i);
        }
        samples.push(iters as f64 / start.elapsed().as_secs_f64());
    }
    median(samples)
}

/// Measures a fast/reference pair with temporally interleaved samples, so
/// scheduler noise on a shared machine hits both sides alike and the
/// reported speedup stays honest.
fn paired_words_per_sec(
    iters_fast: u64,
    iters_ref: u64,
    mut fast: impl FnMut(u64),
    mut reference: impl FnMut(u64),
) -> (f64, f64) {
    for i in 0..iters_fast / 20 + 1 {
        fast(i);
    }
    for i in 0..iters_ref / 20 + 1 {
        reference(i);
    }
    let mut fast_samples = Vec::with_capacity(SAMPLES);
    let mut ref_samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for i in 0..iters_fast {
            fast(i);
        }
        fast_samples.push(iters_fast as f64 / start.elapsed().as_secs_f64());
        let start = Instant::now();
        for i in 0..iters_ref {
            reference(i);
        }
        ref_samples.push(iters_ref as f64 / start.elapsed().as_secs_f64());
    }
    (median(fast_samples), median(ref_samples))
}

fn corrupt(scheme: &dyn EccScheme, data: u32, flips: usize) -> BitBuf {
    let mut stored = scheme.encode(data);
    let len = stored.len();
    for e in 0..flips {
        stored.flip((e * len / flips.max(1) + e) % len);
    }
    stored
}

struct KindReport {
    kind: String,
    encode_wps: f64,
    decode_clean_wps: f64,
    decode_faulty_wps: f64,
    /// Reference rates; None for kinds whose hot path *is* the reference.
    encode_ref_wps: Option<f64>,
    decode_clean_ref_wps: Option<f64>,
    decode_faulty_ref_wps: Option<f64>,
}

fn measure_kind(kind: EccKind) -> KindReport {
    let scheme = build_scheme(kind).expect("catalog kind builds");
    let clean = scheme.encode(0x1234_5678);
    // Correcting codes decode a full-strength error pattern; detect-only
    // codes (parity) measure the detection path on a single flip.
    let flips = scheme.correctable_bits().max(1);
    let faulty = corrupt(scheme.as_ref(), 0x1234_5678, flips);

    let mut encode_wps = words_per_sec(FAST_ITERS, |i| {
        black_box(scheme.encode(black_box(0x9E37_79B9u32.wrapping_mul(i as u32))));
    });
    let mut decode_clean_wps = words_per_sec(FAST_ITERS, |_| {
        black_box(scheme.decode(black_box(&clean)));
    });
    let mut decode_faulty_wps = words_per_sec(FAST_ITERS / 10, |_| {
        black_box(scheme.decode(black_box(&faulty)));
    });

    let (encode_ref_wps, decode_clean_ref_wps, decode_faulty_ref_wps) = match kind {
        EccKind::Bch { t } => {
            let code = BchCode::for_word(t as usize).expect("valid strength");
            let (enc_fast, enc_ref) = paired_words_per_sec(
                FAST_ITERS,
                REF_ITERS,
                |i| {
                    black_box(scheme.encode(black_box(0x9E37_79B9u32.wrapping_mul(i as u32))));
                },
                |i| {
                    black_box(
                        code.encode_reference(black_box(0x9E37_79B9u32.wrapping_mul(i as u32))),
                    );
                },
            );
            let (clean_fast, clean_ref) = paired_words_per_sec(
                FAST_ITERS,
                REF_ITERS,
                |_| {
                    black_box(scheme.decode(black_box(&clean)));
                },
                |_| {
                    black_box(code.decode_reference(black_box(&clean)));
                },
            );
            let (faulty_fast, faulty_ref) = paired_words_per_sec(
                FAST_ITERS / 10,
                REF_ITERS / 5,
                |_| {
                    black_box(scheme.decode(black_box(&faulty)));
                },
                |_| {
                    black_box(code.decode_reference(black_box(&faulty)));
                },
            );
            encode_wps = enc_fast;
            decode_clean_wps = clean_fast;
            decode_faulty_wps = faulty_fast;
            (Some(enc_ref), Some(clean_ref), Some(faulty_ref))
        }
        EccKind::Secded => {
            let code = SecdedCode::new();
            (
                Some(words_per_sec(REF_ITERS, |i| {
                    black_box(
                        code.encode_reference(black_box(0x9E37_79B9u32.wrapping_mul(i as u32))),
                    );
                })),
                None,
                None,
            )
        }
        _ => (None, None, None),
    };

    KindReport {
        kind: kind.to_string(),
        encode_wps,
        decode_clean_wps,
        decode_faulty_wps,
        encode_ref_wps,
        decode_clean_ref_wps,
        decode_faulty_ref_wps,
    }
}

struct SramReport {
    kind: String,
    write_block_wps: f64,
    read_block_wps: f64,
    read_word_wps: f64,
}

fn measure_sram(kind: EccKind) -> SramReport {
    let values: Vec<u32> = (0..SRAM_WORDS as u32)
        .map(|i| i.wrapping_mul(0x9E37_79B9))
        .collect();
    let mut mem = Sram::new("bench", SRAM_WORDS, kind, FaultProcess::disabled())
        .expect("catalog kind builds");
    let mut sink = Vec::with_capacity(SRAM_WORDS);

    let write_rate = words_per_sec(SRAM_ROUNDS, |i| {
        mem.write_block(0, &values, i);
    }) * SRAM_WORDS as f64;
    let read_rate = words_per_sec(SRAM_ROUNDS, |i| {
        sink.clear();
        mem.read_block(0, SRAM_WORDS, SRAM_ROUNDS + i, &mut sink)
            .expect("fault-free read");
    }) * SRAM_WORDS as f64;
    let read_word_rate = words_per_sec(SRAM_ROUNDS, |i| {
        sink.clear();
        for addr in 0..SRAM_WORDS {
            match mem.read(addr, 2 * SRAM_ROUNDS + i) {
                Decoded::Clean { data } | Decoded::Corrected { data, .. } => sink.push(data),
                Decoded::DetectedUncorrectable => unreachable!("fault-free read"),
            }
        }
    }) * SRAM_WORDS as f64;

    SramReport {
        kind: kind.to_string(),
        write_block_wps: write_rate,
        read_block_wps: read_rate,
        read_word_wps: read_word_rate,
    }
}

fn push_rate(json: &mut String, key: &str, value: f64) {
    let _ = write!(json, "\"{key}\": {value:.0}, ");
}

fn push_opt_rate_and_speedup(json: &mut String, key: &str, fast: f64, reference: Option<f64>) {
    if let Some(r) = reference {
        let _ = write!(json, "\"{key}_ref_wps\": {r:.0}, ");
        let _ = write!(json, "\"{key}_speedup\": {:.2}, ", fast / r);
    }
}

fn main() {
    let kinds = [
        EccKind::Parity,
        EccKind::InterleavedParity { ways: 6 },
        EccKind::Secded,
        EccKind::TwoDimParity,
        EccKind::InterleavedSecded { ways: 4 },
        EccKind::Bch { t: 4 },
        EccKind::Bch { t: 8 },
        EccKind::Bch { t: 12 },
        EccKind::Bch { t: 16 },
    ];

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"harness\": \"bench_ecc\", \"fast_iters\": {FAST_ITERS}, \"ref_iters\": {REF_ITERS},"
    );
    json.push_str("  \"kinds\": [\n");
    for (i, &kind) in kinds.iter().enumerate() {
        let r = measure_kind(kind);
        println!(
            "{:12} encode {:>12.0} w/s   clean decode {:>12.0} w/s   faulty decode {:>11.0} w/s{}",
            r.kind,
            r.encode_wps,
            r.decode_clean_wps,
            r.decode_faulty_wps,
            r.encode_ref_wps
                .map(|re| format!("   (encode speedup {:.1}x)", r.encode_wps / re))
                .unwrap_or_default(),
        );
        json.push_str("    {");
        let _ = write!(json, "\"kind\": \"{}\", ", r.kind);
        push_rate(&mut json, "encode_wps", r.encode_wps);
        push_opt_rate_and_speedup(&mut json, "encode", r.encode_wps, r.encode_ref_wps);
        push_rate(&mut json, "decode_clean_wps", r.decode_clean_wps);
        push_opt_rate_and_speedup(
            &mut json,
            "decode_clean",
            r.decode_clean_wps,
            r.decode_clean_ref_wps,
        );
        push_opt_rate_and_speedup(
            &mut json,
            "decode_faulty",
            r.decode_faulty_wps,
            r.decode_faulty_ref_wps,
        );
        let _ = write!(json, "\"decode_faulty_wps\": {:.0}", r.decode_faulty_wps);
        json.push_str(if i + 1 < kinds.len() { "},\n" } else { "}\n" });
    }
    json.push_str("  ],\n  \"sram\": [\n");
    let sram_kinds = [EccKind::Secded, EccKind::Bch { t: 8 }];
    for (i, &kind) in sram_kinds.iter().enumerate() {
        let r = measure_sram(kind);
        println!(
            "sram {:8} write_block {:>12.0} w/s   read_block {:>12.0} w/s   read(word) {:>12.0} w/s",
            r.kind, r.write_block_wps, r.read_block_wps, r.read_word_wps
        );
        json.push_str("    {");
        let _ = write!(json, "\"kind\": \"{}\", ", r.kind);
        push_rate(&mut json, "write_block_wps", r.write_block_wps);
        push_rate(&mut json, "read_block_wps", r.read_block_wps);
        let _ = write!(json, "\"read_word_wps\": {:.0}", r.read_word_wps);
        json.push_str(if i + 1 < sram_kinds.len() {
            "},\n"
        } else {
            "}\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_ecc.json", &json).expect("write BENCH_ecc.json");
    println!("\nwrote BENCH_ecc.json");
}
