//! **QoS experiment — the Fig. 1 deadline story, quantified.** Streaming
//! frames have periodic deadlines; Fig. 1 argues that chunked rollback
//! avoids the deadline violation a full restart causes. This experiment
//! runs a long sequence of frames per scheme and reports the fraction of
//! frames that (a) miss a deadline of `fault-free time x (1 + OV2)` or
//! (b) deliver corrupted output.

use chunkpoint_core::{golden, optimize, run, MitigationScheme, SystemConfig};
use chunkpoint_workloads::Benchmark;

const FRAMES: u64 = 300;

fn main() {
    let base = SystemConfig::paper(0xDEAD);
    println!(
        "QoS over {FRAMES} consecutive frames per scheme (deadline = fault-free x {:.2})",
        1.0 + base.constraints.cycle_overhead
    );
    println!();
    for rate in [1e-6, 1e-5] {
        println!("#### lambda = {rate:.0e} ####");
        println!();
        qos_table(&base, rate);
    }
    println!("Only the proposed scheme keeps (nearly) every frame both on time and correct");
    println!("at the design rate; at 10x the rate it degrades gracefully while SW collapses.");
}

fn qos_table(base: &SystemConfig, rate: f64) {
    for benchmark in [Benchmark::AdpcmDecode, Benchmark::G721Decode] {
        let best = optimize(benchmark, base).expect("feasible design");
        let reference = golden(benchmark, base);
        let deadline =
            (reference.cycles() as f64 * (1.0 + base.constraints.cycle_overhead)) as u64;
        println!("== {benchmark} (deadline {deadline} cycles) ==");
        println!(
            "{:<22} | {:>12} | {:>12} | {:>12}",
            "scheme", "missed", "corrupted", "ok"
        );
        println!("{}", "-".repeat(68));
        for (label, scheme) in [
            ("Default", MitigationScheme::Default),
            ("SW-based", MitigationScheme::SwRestart),
            ("HW-based", MitigationScheme::hw_baseline()),
            (
                "Proposed",
                MitigationScheme::Hybrid {
                    chunk_words: best.chunk_words,
                    l1_prime_t: best.l1_prime_t,
                },
            ),
        ] {
            // HW pays its decode latency structurally; judge it against
            // its own fault-free time plus the same slack.
            let own_deadline = if matches!(scheme, MitigationScheme::HwEcc { .. }) {
                let mut clean = base.clone();
                clean.faults.error_rate = 0.0;
                (run(benchmark, scheme, &clean).cycles() as f64
                    * (1.0 + base.constraints.cycle_overhead)) as u64
            } else {
                deadline
            };
            let mut missed = 0u64;
            let mut corrupted = 0u64;
            for frame in 0..FRAMES {
                let mut config = base.clone();
                config.faults.error_rate = rate;
                config.faults.seed = 0xDEAD ^ (frame * 48271);
                let report = run(benchmark, scheme, &config);
                // Disjoint buckets, worst first: corrupted output beats a
                // late-but-correct frame in severity.
                if report.completed && !report.output_matches(&reference) {
                    corrupted += 1;
                } else if report.cycles() > own_deadline || !report.completed {
                    missed += 1;
                }
            }
            println!(
                "{:<22} | {:>12} | {:>12} | {:>12}",
                label,
                missed,
                corrupted,
                FRAMES - missed - corrupted
            );
        }
        println!();
    }
}
