//! **QoS experiment — the Fig. 1 deadline story, quantified.** Streaming
//! frames have periodic deadlines; Fig. 1 argues that chunked rollback
//! avoids the deadline violation a full restart causes. This experiment
//! runs a long sequence of frames per scheme and reports the fraction of
//! frames that (a) miss a deadline of `fault-free time x (1 + OV2)` or
//! (b) deliver corrupted output.
//!
//! Each frame is one campaign replicate; the whole experiment is a single
//! campaign grid (benchmark × scheme × λ × frame), so it parallelises
//! across frames: `--threads/--seeds/--seed/--json` (`--seeds` = frames).

use chunkpoint_bench::report;
use chunkpoint_campaign::{
    run_campaign, write_json_report, Axis, CampaignArgs, CampaignSpec, SchemeSpec,
};
use chunkpoint_core::{golden, run, MitigationScheme, SystemConfig};
use chunkpoint_workloads::Benchmark;

const BENCHMARKS: [Benchmark; 2] = [Benchmark::AdpcmDecode, Benchmark::G721Decode];
const SCHEMES: [(&str, SchemeSpec); 4] = [
    ("Default", SchemeSpec::Fixed(MitigationScheme::Default)),
    ("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart)),
    (
        "HW-based",
        SchemeSpec::Fixed(MitigationScheme::HwEcc { t: 8 }),
    ),
    ("Proposed", SchemeSpec::Optimal),
];
const RATES: [f64; 2] = [1e-6, 1e-5];

fn main() {
    let args = CampaignArgs::parse_or_exit(300, 0xDEAD);
    let base = SystemConfig::paper(args.seed);
    let frames = args.seeds;
    println!(
        "QoS over {frames} consecutive frames per scheme (deadline = fault-free x {:.2}; {})",
        1.0 + base.constraints.cycle_overhead,
        args.describe()
    );
    println!();

    // One campaign covers the full (benchmark x scheme x rate x frame)
    // grid; deadlines are judged afterwards from the per-frame cycles.
    let mut spec = CampaignSpec::new(base.clone(), args.seed)
        .benchmarks(&BENCHMARKS)
        .error_rates(&RATES)
        .replicates(frames)
        .normalize(false); // deadlines use absolute cycles, not ratios
    for (label, scheme) in SCHEMES {
        spec = spec.scheme(label, scheme);
    }
    let result = run_campaign(&spec, args.threads);

    // Per-benchmark deadlines, computed once: fault-free time plus the
    // OV2 slack. The HW baseline pays its decode latency structurally,
    // so it is judged against its own fault-free time plus the same
    // slack.
    let slack = 1.0 + base.constraints.cycle_overhead;
    let deadlines: Vec<(Benchmark, u64, u64)> = BENCHMARKS
        .iter()
        .map(|&benchmark| {
            let clean = base.fault_free();
            let default = (golden(benchmark, &base).cycles() as f64 * slack) as u64;
            let hw = (run(benchmark, MitigationScheme::hw_baseline(), &clean).cycles() as f64
                * slack) as u64;
            (benchmark, default, hw)
        })
        .collect();
    let deadline_of = |benchmark: Benchmark, scheme_label: &str| -> u64 {
        let &(_, default, hw) = deadlines
            .iter()
            .find(|(b, _, _)| *b == benchmark)
            .expect("deadline precomputed for every benchmark");
        if scheme_label == "HW-based" {
            hw
        } else {
            default
        }
    };

    let table = report::Table::new(22, 12);
    for rate in RATES {
        println!("#### lambda = {rate:.0e} ####");
        println!();
        for benchmark in BENCHMARKS {
            println!(
                "== {benchmark} (deadline {} cycles) ==",
                deadline_of(benchmark, "Default")
            );
            table.header(
                "scheme",
                &["missed", "corrupted", "ok"].map(str::to_owned).to_vec(),
            );
            for (label, _) in SCHEMES {
                let deadline = deadline_of(benchmark, label);
                let mut missed = 0u64;
                let mut corrupted = 0u64;
                for r in result.results.iter().filter(|r| {
                    r.scenario.benchmark == benchmark
                        && r.scenario.scheme_label == label
                        && r.scenario.error_rate == rate
                }) {
                    // Disjoint buckets, worst first: corrupted output
                    // beats a late-but-correct frame in severity.
                    if r.completed && r.correct == Some(false) {
                        corrupted += 1;
                    } else if r.cycles > deadline || !r.completed {
                        missed += 1;
                    }
                }
                table.row(
                    label,
                    &[
                        missed.to_string(),
                        corrupted.to_string(),
                        (frames - missed - corrupted).to_string(),
                    ],
                );
            }
            println!();
        }
    }
    println!("Only the proposed scheme keeps (nearly) every frame both on time and correct");
    println!("at the design rate; at 10x the rate it degrades gracefully while SW collapses.");
    write_json_report(
        &args,
        &result.to_json(&[Axis::Benchmark, Axis::Scheme, Axis::ErrorRate]),
    );
}
