//! Regenerates **Fig. 4**: the feasible (chunk size, correctable bits per
//! word) region of the L1′ buffer under the 5 % area-overhead budget.
//!
//! Expected shape (paper): a monotone non-increasing staircase — small
//! buffers afford up to ~17–18 correctable bits per word, while buffers of
//! hundreds of words only fit weak codes.

use chunkpoint_bench::report;
use chunkpoint_core::{feasible_region, SystemConfig};

fn main() {
    let config = SystemConfig::paper(0);
    let region = feasible_region(&config);
    println!(
        "Fig. 4 — Feasible chunk areas vs number of correctable bits (OV1 = {:.0}% of a 64 KB L1)",
        100.0 * config.constraints.area_overhead
    );
    println!();
    let table = report::Table::new(18, 22);
    table.header("chunk size (words)", &["max correctable bits".to_owned()]);
    // Print the staircase: one row per change point plus the paper's grid.
    let mut last = u8::MAX;
    for &(words, max_t) in &region {
        let grid_point = words == 1 || words == 512 || (words - 1) % 32 == 0;
        if max_t != last || grid_point {
            table.row(&words.to_string(), &[max_t.to_string()]);
            last = max_t;
        }
    }
    println!();
    let strong = region.iter().filter(|&&(_, t)| t >= 8).count();
    let weak = region.iter().filter(|&&(_, t)| t >= 1).count();
    println!("buffers supporting t >= 8 (SMU-proof): up to {strong} words");
    println!("buffers supporting t >= 1 at all:      up to {weak} words");
}
