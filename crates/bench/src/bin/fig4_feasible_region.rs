//! Regenerates **Fig. 4**: the feasible (chunk size, correctable bits per
//! word) region of the L1′ buffer under the 5 % area-overhead budget.
//!
//! Expected shape (paper): a monotone non-increasing staircase — small
//! buffers afford up to ~17–18 correctable bits per word, while buffers of
//! hundreds of words only fit weak codes.

use chunkpoint_core::{feasible_region, SystemConfig};

fn main() {
    let config = SystemConfig::paper(0);
    let region = feasible_region(&config);
    println!(
        "Fig. 4 — Feasible chunk areas vs number of correctable bits (OV1 = {:.0}% of a 64 KB L1)",
        100.0 * config.constraints.area_overhead
    );
    println!();
    println!("{:>18} | {:>22}", "chunk size (words)", "max correctable bits");
    println!("{}", "-".repeat(44));
    // Print the staircase: one row per change point plus the paper's grid.
    let mut last = u8::MAX;
    for &(words, max_t) in &region {
        let grid_point = matches!(words, 1 | 33 | 65 | 97 | 129 | 161 | 193 | 225 | 257 | 289 | 321 | 353 | 385 | 417 | 449 | 481 | 512);
        if max_t != last || grid_point {
            println!("{words:>18} | {max_t:>22}");
            last = max_t;
        }
    }
    println!();
    let strong = region.iter().filter(|&&(_, t)| t >= 8).count();
    let weak = region.iter().filter(|&&(_, t)| t >= 1).count();
    println!("buffers supporting t >= 8 (SMU-proof): up to {strong} words");
    println!("buffers supporting t >= 1 at all:      up to {weak} words");
}
