//! Result-cache payoff measurement, emitting `BENCH_cache.json`: how
//! much wall time the range-granular cache and spec-diffing incremental
//! campaigns save against a full clean re-run.
//!
//! Starts two in-process `chunkpoint_serve` instances on ephemeral
//! ports and measures four figures over real TCP:
//!
//! * `cold` — a sharded run of the grid with an empty cache (pays the
//!   cache's write-back on top of normal dispatch);
//! * `warm` — the identical spec re-run over the sealed cache (pure
//!   splice, zero dispatches);
//! * `full rerun` — one axis value edited, re-run **without** the
//!   cache (the status quo this PR replaces);
//! * `incremental` — the same edit re-run through the spec diff + cache
//!   (only the changed cells execute).
//!
//! Run with `cargo run --release -p chunkpoint_bench --bin bench_cache`.
//! `--smoke` shrinks the grid for CI; `--json PATH` overrides the
//! output path.

use std::time::Instant;

use chunkpoint_campaign::{
    canonical_report_json, diff_specs, pool::default_threads, run_campaign, translate_rows,
    CampaignArgs, CampaignSpec, JsonValue, SchemeSpec,
};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_serve::server::{ServeConfig, Server};
use chunkpoint_serve::REPORT_AXES;
use chunkpoint_shard::{exchange, run_sharded, RangeCache, ShardConfig};
use chunkpoint_workloads::Benchmark;

fn grid_spec(seed: u64, scale: f64, replicates: u64, rates: &[f64]) -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = scale;
    CampaignSpec::new(config, seed)
        .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .error_rates(rates)
        .replicates(replicates)
}

fn main() {
    let args = CampaignArgs::parse_or_exit(1, 0xCAC4E);
    // One of four rate-axis values is edited, so the incremental path
    // re-executes a quarter of the grid; the non-smoke scale makes
    // scenario execution (not dispatch/poll overhead) the cost being
    // saved.
    let (scale, replicates) = if args.smoke { (0.25, 2) } else { (1.0, 6) };
    let old_rates = [1e-7, 1e-6, 1e-5, 1e-4];
    let new_rates = [1e-7, 1e-6, 1e-5, 2e-4];
    let old_spec = grid_spec(args.seed, scale, replicates, &old_rates);
    let new_spec = grid_spec(args.seed, scale, replicates, &new_rates);
    let scenarios = old_spec.scenarios().len();

    let cache_root =
        std::env::temp_dir().join(format!("chunkpoint_bench_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_root);

    let mut backends = Vec::new();
    let mut data_dirs = Vec::new();
    for k in 0..2 {
        let data_dir =
            std::env::temp_dir().join(format!("chunkpoint_bench_cache_{}_{k}", std::process::id()));
        let _ = std::fs::remove_dir_all(&data_dir);
        let server = Server::bind(&ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            data_dir: data_dir.clone(),
            max_jobs: 1,
            campaign_threads: 1,
            max_queued: 0,
            trace_out: None,
        })
        .expect("bind backend");
        let addr = server.local_addr().expect("addr").to_string();
        std::thread::spawn(move || server.run());
        backends.push(addr);
        data_dirs.push(data_dir);
    }
    println!(
        "bench_cache: {scenarios}-scenario grid across {} backends ({})",
        backends.len(),
        backends.join(", ")
    );

    let cached_config = ShardConfig {
        poll_interval: std::time::Duration::from_millis(2),
        cache_dir: Some(cache_root.clone()),
        ..ShardConfig::default()
    };
    let plain_config = ShardConfig {
        poll_interval: std::time::Duration::from_millis(2),
        ..ShardConfig::default()
    };

    // Cold: first run of the original spec, sealing the cache.
    let start = Instant::now();
    let cold = run_sharded(&old_spec, &backends, &cached_config).expect("cold run");
    let cold_secs = start.elapsed().as_secs_f64();
    assert_eq!(cold.spliced, 0, "a cold cache cannot splice");

    // Warm: the identical spec again — a pure splice, zero dispatches.
    let start = Instant::now();
    let warm = run_sharded(&old_spec, &backends, &cached_config).expect("warm run");
    let warm_secs = start.elapsed().as_secs_f64();
    assert_eq!(warm.report, cold.report, "warm bytes diverged");
    assert_eq!(warm.dispatches, 0, "warm cache still dispatched");

    // Full rerun: one axis value edited, no cache — the status quo.
    let start = Instant::now();
    let full = run_sharded(&new_spec, &backends, &plain_config).expect("full rerun");
    let full_secs = start.elapsed().as_secs_f64();

    // Incremental: diff the specs, seed the edited spec's cache with the
    // translated unchanged rows (what `shard --baseline` does), re-run.
    let cache = RangeCache::new(&cache_root);
    let start = Instant::now();
    let old_rows: Vec<_> = cache
        .load(&old_spec, &old_spec.scenarios())
        .into_values()
        .collect();
    let translated = translate_rows(&old_spec, &new_spec, &old_rows);
    cache
        .store_scattered(&new_spec, &translated)
        .expect("seed cache from baseline");
    let incremental = run_sharded(&new_spec, &backends, &cached_config).expect("incremental run");
    let incremental_secs = start.elapsed().as_secs_f64();
    let diff = diff_specs(&old_spec, &new_spec);
    assert_eq!(incremental.spliced, diff.reused(), "splice != diff reuse");

    // Byte identity: the incremental report must match a clean
    // in-process run of the edited spec exactly.
    let reference = run_campaign(&new_spec, 1);
    let expected =
        canonical_report_json(new_spec.campaign_seed, &reference.results, &REPORT_AXES).render();
    let identical = incremental.report == expected && full.report == expected;
    assert!(identical, "incremental report diverged from a clean run");

    let speedup = full_secs / incremental_secs.max(1e-9);
    println!(
        "cold (seal):     {cold_secs:>8.3} s ({} dispatches)",
        cold.dispatches
    );
    println!(
        "warm (splice):   {warm_secs:>8.3} s ({} rows spliced)",
        warm.spliced
    );
    println!(
        "full rerun:      {full_secs:>8.3} s ({} dispatches)",
        full.dispatches
    );
    println!(
        "incremental:     {incremental_secs:>8.3} s ({} spliced, {} changed, {speedup:.1}x vs full)",
        incremental.spliced, diff.changed
    );

    let doc = JsonValue::object()
        .field("bench", "range_cache_incremental_campaigns")
        .field("cpus_available", default_threads())
        .field("scenarios", scenarios)
        .field("backends", backends.len())
        .field("cold_secs", cold_secs)
        .field("warm_splice_secs", warm_secs)
        .field("full_rerun_secs", full_secs)
        .field("incremental_secs", incremental_secs)
        .field("rows_reused", diff.reused())
        .field("rows_changed", diff.changed)
        .field("incremental_speedup_vs_full", speedup)
        .field("byte_identical", identical)
        .field(
            "note",
            "two in-process serve backends (1 job x 1 worker each); one error-rate value \
             edited between the baseline and the re-run; incremental = spec diff + cache \
             seed + sharded run of the changed cells only",
        );

    if args.smoke {
        println!("smoke run: cache paths exercised");
        if let Some(path) = &args.json {
            std::fs::write(path, doc.render() + "\n").expect("write json report");
            println!("wrote {path}");
        }
    } else {
        let path = args.json.as_deref().unwrap_or("BENCH_cache.json");
        std::fs::write(path, doc.render() + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }

    for addr in &backends {
        let _ = exchange(
            addr,
            "POST",
            "/shutdown",
            None,
            std::time::Duration::from_secs(5),
        );
    }
    for dir in &data_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    let _ = std::fs::remove_dir_all(&cache_root);
}
