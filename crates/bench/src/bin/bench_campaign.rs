//! Campaign-engine throughput measurement, emitting `BENCH_campaign.json`
//! so successive PRs have a comparable scenarios/second trajectory (the
//! campaign counterpart of `bench_ecc` / `BENCH_ecc.json`).
//!
//! Runs a fixed evaluation grid at 1 / 2 / 4 / 8 worker threads,
//! reporting the median throughput of several samples per thread count
//! and cross-checking that every thread count produced **bit-identical**
//! per-scenario results (the engine's core guarantee). Wall-clock
//! scaling is bounded by the machine — the JSON records
//! `cpus_available` so a single-core CI box reporting ~1x speedup is
//! interpretable — but the determinism check is hardware-independent.
//!
//! Run with `cargo run --release -p chunkpoint_bench --bin
//! bench_campaign`. `--smoke --seeds 2 --threads 2` runs the reduced CI
//! grid in a couple of seconds without touching `BENCH_campaign.json`
//! (unless `--json` is given).

use std::time::Instant;

use chunkpoint_campaign::{
    pool::default_threads, run_campaign, CampaignArgs, CampaignSpec, JsonValue, ScenarioResult,
    SchemeSpec,
};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_workloads::Benchmark;

/// Timed samples per thread count; the median is reported (shared
/// machines are noisy, and the median is robust against interference).
const SAMPLES: usize = 3;
/// Thread counts of the scaling ladder.
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn grid(smoke: bool, seeds: u64, campaign_seed: u64) -> CampaignSpec {
    let config = SystemConfig::paper(campaign_seed);
    let benchmarks: &[Benchmark] = if smoke {
        &[Benchmark::AdpcmEncode]
    } else {
        &[
            Benchmark::AdpcmEncode,
            Benchmark::AdpcmDecode,
            Benchmark::G721Encode,
            Benchmark::G721Decode,
        ]
    };
    CampaignSpec::new(config, campaign_seed)
        .benchmarks(benchmarks)
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .scheme(
            "Proposed",
            SchemeSpec::Fixed(MitigationScheme::Hybrid {
                chunk_words: 16,
                l1_prime_t: 8,
            }),
        )
        .replicates(seeds)
}

fn fingerprint(results: &[ScenarioResult]) -> Vec<(u64, u64, u64, u64)> {
    results
        .iter()
        .map(|r| (r.energy_pj.to_bits(), r.cycles, r.rollbacks, r.restarts))
        .collect()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    let args = CampaignArgs::parse_or_exit(12, 0xCA4A);
    let spec = grid(args.smoke, args.seeds, args.seed);
    let scenario_count = spec.scenarios().len();
    println!(
        "campaign throughput: {} scenarios/grid ({}), {} samples/thread-count",
        scenario_count,
        if args.smoke {
            "smoke grid"
        } else {
            "full grid"
        },
        SAMPLES
    );

    let ladder: Vec<usize> = if args.smoke {
        vec![1, args.threads.max(1)]
    } else {
        THREADS.to_vec()
    };

    // Reference fingerprint at 1 thread; every other count must match it.
    let reference = fingerprint(&run_campaign(&spec, 1).results);
    let mut rows = Vec::new();
    let mut base_rate = 0.0f64;
    for &threads in &ladder {
        let mut rates = Vec::with_capacity(SAMPLES);
        let mut elapsed = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            let result = run_campaign(&spec, threads);
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(
                fingerprint(&result.results),
                reference,
                "results diverged at {threads} threads — determinism broken"
            );
            rates.push(result.results.len() as f64 / secs);
            elapsed.push(secs);
        }
        let rate = median(rates);
        if threads == 1 {
            base_rate = rate;
        }
        let speedup = if base_rate > 0.0 {
            rate / base_rate
        } else {
            1.0
        };
        println!(
            "{threads:>2} threads: {rate:>10.1} scenarios/s  ({speedup:.2}x vs 1 thread, median of {SAMPLES})"
        );
        rows.push(
            JsonValue::object()
                .field("threads", threads)
                .field("scenarios_per_sec", rate)
                .field("elapsed_secs", median(elapsed))
                .field("speedup_vs_1_thread", speedup),
        );
    }

    let cpus = default_threads();
    let doc = JsonValue::object()
        .field("bench", "campaign_engine_throughput")
        .field("grid_scenarios", scenario_count)
        .field("campaign_seed", args.seed)
        .field("seeds_per_cell", args.seeds)
        .field("cpus_available", cpus)
        .field(
            "note",
            "per-scenario results verified bit-identical at every thread count; \
             wall-clock speedup is bounded by cpus_available",
        )
        .field("deterministic_across_thread_counts", true)
        .field("threads", JsonValue::Array(rows));

    if args.smoke {
        println!("smoke grid: determinism verified at every ladder point");
        if let Some(path) = &args.json {
            std::fs::write(path, doc.render() + "\n").expect("write json report");
            println!("wrote {path}");
        }
    } else {
        let path = args.json.as_deref().unwrap_or("BENCH_campaign.json");
        std::fs::write(path, doc.render() + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}
