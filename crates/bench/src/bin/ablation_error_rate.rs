//! **Ablation A — error-rate sweep.** The paper evaluates only the
//! worst-case λ = 1e-6 word/cycle; this sweep shows how each scheme's
//! energy overhead scales from a benign 1e-8 up to an extreme 1e-5, for a
//! light (ADPCM decode) and a heavy (JPG decode) benchmark.
//!
//! Expected shape: Default flat at 1.0 (it never reacts); the hybrid's
//! overhead is flat-ish (checkpointing dominates, recovery is cheap); the
//! SW baseline degrades explosively as expected strikes per frame pass 1.
//!
//! Runs as one campaign grid with a λ axis:
//! `--threads/--seeds/--seed/--json`.

use chunkpoint_bench::report;
use chunkpoint_campaign::{
    run_campaign, write_json_report, Axis, CampaignArgs, CampaignSpec, SchemeSpec,
};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_workloads::Benchmark;

const RATES: [f64; 4] = [1e-8, 1e-7, 1e-6, 1e-5];

fn main() {
    let args = CampaignArgs::parse_or_exit(6, 0xAB1A);
    println!(
        "Ablation A — normalized energy vs error rate ({})",
        args.describe()
    );

    // Chunk sized at the paper's operating point (the base config's λ),
    // held fixed across the sweep — a deployed system cannot re-optimize
    // per rate. SchemeSpec::Optimal resolves against the base config.
    let spec = CampaignSpec::new(SystemConfig::paper(args.seed), args.seed)
        .benchmarks(&[Benchmark::AdpcmDecode, Benchmark::JpegDecode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .scheme(
            "HW-based",
            SchemeSpec::Fixed(MitigationScheme::hw_baseline()),
        )
        .scheme("Proposed", SchemeSpec::Optimal)
        .error_rates(&RATES)
        .replicates(args.seeds);
    let result = run_campaign(&spec, args.threads);
    let cells = result.aggregate(&[Axis::Benchmark, Axis::Scheme, Axis::ErrorRate]);

    for benchmark in [Benchmark::AdpcmDecode, Benchmark::JpegDecode] {
        println!();
        println!("== {benchmark} ==");
        let labels: Vec<String> = RATES.iter().map(|r| format!("{r:.0e}")).collect();
        report::PAPER.header("scheme \\ lambda", &labels);
        for scheme in ["Default", "SW-based", "HW-based", "Proposed"] {
            let row: Vec<String> = RATES
                .iter()
                .map(|rate| {
                    let stats = cells
                        .get(&[benchmark.name(), scheme, &format!("{rate:e}")])
                        .expect("every grid cell was simulated");
                    report::cell(stats.energy_ratio.mean())
                })
                .collect();
            report::PAPER.row(scheme, &row);
        }
    }
    write_json_report(
        &args,
        &result.to_json(&[Axis::Benchmark, Axis::Scheme, Axis::ErrorRate]),
    );
}
