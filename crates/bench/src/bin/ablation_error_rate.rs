//! **Ablation A — error-rate sweep.** The paper evaluates only the
//! worst-case λ = 1e-6 word/cycle; this sweep shows how each scheme's
//! energy overhead scales from a benign 1e-8 up to an extreme 1e-5, for a
//! light (ADPCM decode) and a heavy (JPG decode) benchmark.
//!
//! Expected shape: Default flat at 1.0 (it never reacts); the hybrid's
//! overhead is flat-ish (checkpointing dominates, recovery is cheap); the
//! SW baseline degrades explosively as expected strikes per frame pass 1.

use chunkpoint_bench::{measure, print_row};
use chunkpoint_core::{optimize, MitigationScheme, SystemConfig};
use chunkpoint_workloads::Benchmark;

const RATES: [f64; 4] = [1e-8, 1e-7, 1e-6, 1e-5];
const SEEDS: u64 = 6;

fn main() {
    println!("Ablation A — normalized energy vs error rate ({SEEDS} seeds/cell)");
    for benchmark in [Benchmark::AdpcmDecode, Benchmark::JpegDecode] {
        println!();
        println!("== {benchmark} ==");
        let labels: Vec<String> = RATES.iter().map(|r| format!("{r:.0e}")).collect();
        print_row("scheme \\ lambda", &labels);
        println!("{}", "-".repeat(24 + labels.len() * 15));
        // Chunk sized at the paper's operating point, held fixed across
        // the sweep (a deployed system cannot re-optimize per rate).
        let paper_config = SystemConfig::paper(0xAB1A);
        let best = optimize(benchmark, &paper_config).expect("feasible design");
        let schemes = [
            ("Default".to_owned(), MitigationScheme::Default),
            ("SW-based".to_owned(), MitigationScheme::SwRestart),
            ("HW-based".to_owned(), MitigationScheme::hw_baseline()),
            (
                "Proposed".to_owned(),
                MitigationScheme::Hybrid {
                    chunk_words: best.chunk_words,
                    l1_prime_t: best.l1_prime_t,
                },
            ),
        ];
        for (label, scheme) in &schemes {
            let mut cells = Vec::new();
            for &rate in &RATES {
                let mut config = paper_config.clone();
                config.faults.error_rate = rate;
                let cell = measure(benchmark, *scheme, &config, SEEDS);
                cells.push(format!("{:.3}", cell.energy_ratio));
            }
            print_row(label, &cells);
        }
    }
}
