//! **Ablation E — protection-code design space.** The designer's menu: for
//! every code family in the crate, the storage overhead, codec logic,
//! correction/detection strength, and the area it would cost (a) per
//! 32-word L1′ buffer and (b) scaled to the full 64 KB L1 — showing *why*
//! the paper pairs a cheap burst detector on L1 with a strong code on a
//! tiny L1′ instead of protecting everything.

use chunkpoint_bench::report;
use chunkpoint_core::SystemConfig;
use chunkpoint_ecc::{CodeOverhead, EccKind};
use chunkpoint_sim::logic_area_um2;

fn main() {
    let config = SystemConfig::paper(0);
    let l1_area = config.platform.l1_model().area_um2();
    println!("Ablation E — protection-code design space (65 nm, 32-bit words)");
    println!();
    let table = report::Table::new(12, 14);
    table.row(
        "code",
        &[
            "check",
            "correct",
            "detect",
            "gates",
            "L1' 32w area",
            "full-L1 area",
        ]
        .map(str::to_owned)
        .to_vec(),
    );
    table.header(
        "",
        &["bits", "bits", "burst", "", "(% of L1)", "overhead"]
            .map(str::to_owned)
            .to_vec(),
    );
    for kind in EccKind::catalog() {
        let overhead = CodeOverhead::for_kind(kind).expect("catalog builds");
        let scheme = chunkpoint_ecc::build_scheme(kind).expect("catalog builds");
        // Tiny-buffer cost.
        let buffer = config
            .platform
            .l1_prime_model(32, overhead.check_bits)
            .area_um2()
            + logic_area_um2(overhead.logic_gates());
        // Full-array cost.
        let full = config
            .platform
            .l1_model_with_ecc(overhead.check_bits)
            .area_um2()
            + logic_area_um2(overhead.logic_gates());
        table.row(
            &kind.to_string(),
            &[
                overhead.check_bits.to_string(),
                scheme.correctable_bits().to_string(),
                scheme.detectable_bits().to_string(),
                overhead.logic_gates().to_string(),
                format!("{:.2}%", 100.0 * buffer / l1_area),
                format!("{:+.1}%", 100.0 * (full / l1_area - 1.0)),
            ],
        );
    }
    println!();
    println!(
        "full-array BCH-8 costs ~+{:.0}% area (the paper cites >80% for 8-bit ECC);",
        {
            let oh = CodeOverhead::for_kind(EccKind::Bch { t: 8 }).expect("valid");
            100.0 * (config.platform.l1_model_with_ecc(oh.check_bits).area_um2() / l1_area - 1.0)
        }
    );
    println!("a 32-word BCH-protected L1' costs ~2% — the whole premise of the hybrid scheme.");
}
