//! **Ablation B — area-budget sweep.** The paper fixes OV1 = 5 % (the
//! industrial partners' limit); this sweep re-runs the optimizer for
//! OV1 ∈ {1 … 10 %} and reports how the optimal design point moves.
//!
//! Expected shape: tighter budgets force smaller buffers and/or weaker
//! L1′ codes and push the objective up; once the budget stops binding the
//! design point freezes (the cycle constraint and energy optimum take
//! over).

use chunkpoint_core::{optimize, SystemConfig, SystemConstraints};
use chunkpoint_workloads::Benchmark;

const BUDGETS: [f64; 6] = [0.01, 0.02, 0.03, 0.05, 0.08, 0.10];

fn main() {
    println!("Ablation B — optimal design point vs area budget OV1");
    for benchmark in Benchmark::ALL {
        println!();
        println!("== {benchmark} ==");
        println!(
            "{:>8} | {:>12} | {:>8} | {:>12} | {:>10}",
            "OV1 %", "chunk (words)", "L1' t", "J (uJ)", "area %"
        );
        println!("{}", "-".repeat(62));
        for &budget in &BUDGETS {
            let mut config = SystemConfig::paper(0xAB1B);
            config.constraints = SystemConstraints::new(budget, 0.10);
            match optimize(benchmark, &config) {
                Some(best) => println!(
                    "{:>8.0} | {:>12} | {:>8} | {:>12.2} | {:>10.2}",
                    100.0 * budget,
                    best.chunk_words,
                    best.l1_prime_t,
                    best.cost.objective_pj() / 1.0e6,
                    100.0 * best.area_fraction,
                ),
                None => println!(
                    "{:>8.0} | {:>12} | {:>8} | {:>12} | {:>10}",
                    100.0 * budget,
                    "-",
                    "-",
                    "infeasible",
                    "-"
                ),
            }
        }
    }
}
