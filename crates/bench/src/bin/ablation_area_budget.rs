//! **Ablation B — area-budget sweep.** The paper fixes OV1 = 5 % (the
//! industrial partners' limit); this sweep re-runs the optimizer for
//! OV1 ∈ {1 … 10 %} and reports how the optimal design point moves.
//!
//! Expected shape: tighter budgets force smaller buffers and/or weaker
//! L1′ codes and push the objective up; once the budget stops binding the
//! design point freezes (the cycle constraint and energy optimum take
//! over).
//!
//! Deterministic (optimizer only); shares the `--json` flag.

use chunkpoint_bench::report;
use chunkpoint_campaign::{write_json_report, CampaignArgs, JsonValue};
use chunkpoint_core::{optimize, SystemConfig, SystemConstraints};
use chunkpoint_workloads::Benchmark;

const BUDGETS: [f64; 6] = [0.01, 0.02, 0.03, 0.05, 0.08, 0.10];

fn main() {
    let args = CampaignArgs::parse_or_exit(1, 0xAB1B);
    println!("Ablation B — optimal design point vs area budget OV1");
    let table = report::Table::new(8, 12);
    let mut rows = Vec::new();
    for benchmark in Benchmark::ALL {
        println!();
        println!("== {benchmark} ==");
        table.header(
            "OV1 %",
            &["chunk (words)", "L1' t", "J (uJ)", "area %"]
                .map(str::to_owned)
                .to_vec(),
        );
        for &budget in &BUDGETS {
            let mut config = SystemConfig::paper(args.seed);
            config.constraints = SystemConstraints::new(budget, 0.10);
            let label = format!("{:.0}", 100.0 * budget);
            match optimize(benchmark, &config) {
                Some(best) => {
                    table.row(
                        &label,
                        &[
                            best.chunk_words.to_string(),
                            best.l1_prime_t.to_string(),
                            format!("{:.2}", best.cost.objective_pj() / 1.0e6),
                            format!("{:.2}", 100.0 * best.area_fraction),
                        ],
                    );
                    rows.push(
                        JsonValue::object()
                            .field("benchmark", benchmark.name())
                            .field("area_budget", budget)
                            .field("chunk_words", u64::from(best.chunk_words))
                            .field("l1_prime_t", u64::from(best.l1_prime_t))
                            .field("objective_pj", best.cost.objective_pj())
                            .field("area_fraction", best.area_fraction),
                    );
                }
                None => {
                    table.row(
                        &label,
                        &[
                            "-".to_owned(),
                            "-".to_owned(),
                            "infeasible".to_owned(),
                            "-".to_owned(),
                        ],
                    );
                    rows.push(
                        JsonValue::object()
                            .field("benchmark", benchmark.name())
                            .field("area_budget", budget)
                            .field("feasible", false),
                    );
                }
            }
        }
    }
    write_json_report(&args, &JsonValue::Array(rows));
}
