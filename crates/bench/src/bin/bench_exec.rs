//! Executor-abstraction overhead measurement, emitting `BENCH_exec.json`
//! so the unified executor API's cost sits on the perf trajectory from
//! day one (the counterpart of `BENCH_campaign.json` for the raw
//! engine).
//!
//! Three figures:
//!
//! * `direct` — `run_campaign_streaming` called straight, one thread
//!   (the floor the abstraction is measured against);
//! * `local_executor` — the same grid through `LocalExecutor::submit`
//!   with the full handle machinery (worker thread, event channel,
//!   coverage check, canonical render). The acceptance bar is <5 %
//!   overhead;
//! * `event_stream` — events/second through the handle's channel type
//!   (one realistic `ScenarioDone` payload per event), bounding how
//!   fast an event consumer can possibly be fed.
//!
//! Run with `cargo run --release -p chunkpoint_bench --bin bench_exec`.
//! `--smoke` shrinks the rounds for CI; `--json PATH` overrides the
//! output path.

use std::collections::HashSet;
use std::time::Instant;

use chunkpoint_campaign::{
    pool::default_threads, run_campaign_streaming, CampaignArgs, CampaignSpec, CancelToken,
    JsonValue, SchemeSpec,
};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_exec::{CampaignEvent, CampaignExecutor, LocalExecutor};
use chunkpoint_workloads::Benchmark;

fn grid_spec(seed: u64, replicates: u64) -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    CampaignSpec::new(config, seed)
        .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .replicates(replicates)
}

fn main() {
    let args = CampaignArgs::parse_or_exit(1, 0xE4EC_BE7C);
    let replicates = if args.smoke { 3 } else { 100 };
    let rounds: usize = if args.smoke { 2 } else { 7 };
    let spec = grid_spec(args.seed, replicates);
    let scenarios = spec.scenarios().len();
    println!("bench_exec: {scenarios}-scenario grid, best of {rounds} rounds");

    // Warm up once (page cache, branch predictors), then interleave
    // direct and executor rounds so neither side collects a warmup
    // penalty, taking the best of each.
    let reference = run_campaign_streaming(&spec, 1, &CancelToken::new(), &HashSet::new(), |_| {});
    let executor = LocalExecutor::new(1);
    let mut direct_secs = f64::INFINITY;
    let mut exec_secs = f64::INFINITY;
    let mut events_per_run = 0usize;
    for _ in 0..rounds {
        // Direct: the engine's streaming seam called straight.
        let start = Instant::now();
        let results =
            run_campaign_streaming(&spec, 1, &CancelToken::new(), &HashSet::new(), |_| {});
        direct_secs = direct_secs.min(start.elapsed().as_secs_f64());
        assert_eq!(results, reference, "direct run diverged");

        // Executor: worker thread, event channel (two events per
        // scenario), coverage check, canonical render — events drained.
        let start = Instant::now();
        let handle = executor.submit(&spec);
        events_per_run = handle.events().count();
        let run = handle.wait().expect("local run");
        exec_secs = exec_secs.min(start.elapsed().as_secs_f64());
        assert_eq!(run.results, reference, "executor changed the rows");
    }

    let direct_sps = scenarios as f64 / direct_secs.max(1e-9);
    let exec_sps = scenarios as f64 / exec_secs.max(1e-9);
    let overhead_pct = 100.0 * (direct_sps - exec_sps) / direct_sps.max(1e-9);

    // Event-stream throughput: a realistic ScenarioDone payload per
    // event through the same channel type the handle uses.
    let payload = reference[0].clone();
    let event_count = if args.smoke { 20_000 } else { 200_000 };
    let (sender, receiver) = std::sync::mpsc::channel::<CampaignEvent>();
    let producer = std::thread::spawn(move || {
        for k in 0..event_count {
            let event = if k % 2 == 0 {
                CampaignEvent::ScenarioDone(payload.clone())
            } else {
                CampaignEvent::Progress {
                    done: k,
                    total: event_count,
                }
            };
            if sender.send(event).is_err() {
                break;
            }
        }
    });
    let start = Instant::now();
    let drained = receiver.iter().count();
    let events_per_sec = drained as f64 / start.elapsed().as_secs_f64().max(1e-9);
    producer.join().expect("producer");
    assert_eq!(drained, event_count);

    println!("direct:         {direct_sps:>9.1} scenarios/s (run_campaign_streaming, 1 thread)");
    println!(
        "local executor: {exec_sps:>9.1} scenarios/s ({overhead_pct:+.2}% overhead, \
         {events_per_run} events/run)"
    );
    println!("event stream:   {events_per_sec:>9.0} events/s");

    let doc = JsonValue::object()
        .field("bench", "executor_overhead")
        .field("cpus_available", default_threads())
        .field("scenarios", scenarios)
        .field("rounds", rounds)
        .field("direct_scenarios_per_sec", direct_sps)
        .field("local_executor_scenarios_per_sec", exec_sps)
        .field("executor_overhead_pct", overhead_pct)
        .field("event_stream_events_per_sec", events_per_sec)
        .field(
            "note",
            "direct = run_campaign_streaming on 1 thread; local_executor = the same grid \
             through LocalExecutor::submit with events drained (2 events/scenario); \
             event_stream = mpsc throughput of realistic CampaignEvent payloads; \
             overhead acceptance bar is <5%. A negative overhead means the executor \
             path measured faster than the direct call (1-CPU scheduling artifact of \
             draining events on a second thread) — read it as ~0",
        );

    if args.smoke {
        println!("smoke run: executor paths exercised");
        if let Some(path) = &args.json {
            std::fs::write(path, doc.render() + "\n").expect("write json report");
            println!("wrote {path}");
        }
    } else {
        let path = args.json.as_deref().unwrap_or("BENCH_exec.json");
        std::fs::write(path, doc.render() + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}
