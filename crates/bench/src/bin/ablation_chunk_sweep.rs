//! **Ablation C — chunk-size sensitivity.** Sweeps the cost model's
//! objective J = C_store + C_comp over the chunk size for every benchmark,
//! exposing the interior optimum that Table I reports: tiny chunks pay
//! per-checkpoint overhead, huge chunks pay recovery and buffering volume.
//!
//! Also cross-checks the model against *measured* energy from full
//! simulated runs at a few chunk sizes — the measured column runs as one
//! campaign grid with a chunk-size axis:
//! `--threads/--seeds/--seed/--json`.

use chunkpoint_bench::{report, DEFAULT_SEEDS};
use chunkpoint_campaign::{
    run_campaign, write_json_report, Axis, CampaignArgs, CampaignSpec, SchemeSpec,
};
use chunkpoint_core::{optimize, sweep, SystemConfig};
use chunkpoint_workloads::Benchmark;

fn main() {
    let args = CampaignArgs::parse_or_exit(DEFAULT_SEEDS / 2, 0xAB1C);
    let config = SystemConfig::paper(args.seed);
    println!("Ablation C — objective J vs chunk size (model) + measured energy spot checks");
    println!("({})", args.describe());

    let table = report::Table::new(10, 12);
    let mut json_docs = Vec::new();
    for benchmark in Benchmark::ALL {
        let best = optimize(benchmark, &config).expect("feasible design");
        let points = sweep(benchmark, best.l1_prime_t, &config);
        // The sample grid: powers of two around the optimum, the optimum
        // itself, and the extremes — deduplicated, feasible sizes only go
        // on the campaign's chunk axis.
        let samples: Vec<u32> = vec![
            1,
            2,
            4,
            best.chunk_words.max(1) / 2,
            best.chunk_words,
            best.chunk_words * 2,
            best.chunk_words * 4,
            128,
        ];
        let mut shown = std::collections::BTreeSet::new();
        let mut feasible_chunks = Vec::new();
        for k in &samples {
            let k = k.clamp(&1, &512);
            if shown.insert(*k) && points[(*k - 1) as usize].is_feasible(&config) {
                feasible_chunks.push(*k);
            }
        }
        let spec = CampaignSpec::new(config.clone(), args.seed)
            .benchmarks(&[benchmark])
            .scheme(
                "Proposed",
                SchemeSpec::Fixed(chunkpoint_core::MitigationScheme::Hybrid {
                    chunk_words: best.chunk_words,
                    l1_prime_t: best.l1_prime_t,
                }),
            )
            .chunk_words(&feasible_chunks)
            .replicates(args.seeds);
        let result = run_campaign(&spec, args.threads);
        let cells = result.aggregate(&[Axis::ChunkWords]);

        println!();
        println!(
            "== {benchmark} (L1' t = {}, optimum K = {}) ==",
            best.l1_prime_t, best.chunk_words
        );
        table.header(
            "K (words)",
            &["J (uJ)", "area %", "cycle %", "measured E/E0"]
                .map(str::to_owned)
                .to_vec(),
        );
        for &k in shown.iter() {
            let point = &points[(k - 1) as usize];
            let measured = cells.get(&[&k.to_string()]).map_or_else(
                || "infeasible".to_owned(),
                |s| report::cell(s.energy_ratio.mean()),
            );
            table.row(
                &k.to_string(),
                &[
                    format!("{:.2}", point.cost.objective_pj() / 1.0e6),
                    format!("{:.2}", 100.0 * point.area_fraction),
                    format!("{:.2}", 100.0 * point.cost.cycle_fraction()),
                    measured,
                ],
            );
        }
        json_docs.push(result.to_json(&[Axis::ChunkWords]));
    }
    write_json_report(&args, &chunkpoint_campaign::JsonValue::Array(json_docs));
}
