//! **Ablation C — chunk-size sensitivity.** Sweeps the cost model's
//! objective J = C_store + C_comp over the chunk size for every benchmark,
//! exposing the interior optimum that Table I reports: tiny chunks pay
//! per-checkpoint overhead, huge chunks pay recovery and buffering volume.
//!
//! Also cross-checks the model against *measured* energy from full
//! simulated runs at a few chunk sizes.

use chunkpoint_bench::{measure, DEFAULT_SEEDS};
use chunkpoint_core::{optimize, sweep, MitigationScheme, SystemConfig};
use chunkpoint_workloads::Benchmark;

fn main() {
    let config = SystemConfig::paper(0xAB1C);
    println!("Ablation C — objective J vs chunk size (model) + measured energy spot checks");
    for benchmark in Benchmark::ALL {
        let best = optimize(benchmark, &config).expect("feasible design");
        let points = sweep(benchmark, best.l1_prime_t, &config);
        println!();
        println!(
            "== {benchmark} (L1' t = {}, optimum K = {}) ==",
            best.l1_prime_t, best.chunk_words
        );
        println!(
            "{:>10} | {:>12} | {:>10} | {:>10} | {:>14}",
            "K (words)", "J (uJ)", "area %", "cycle %", "measured E/E0"
        );
        println!("{}", "-".repeat(68));
        let samples: Vec<u32> = vec![
            1,
            2,
            4,
            best.chunk_words.max(1) / 2,
            best.chunk_words,
            best.chunk_words * 2,
            best.chunk_words * 4,
            128,
        ];
        let mut shown = std::collections::BTreeSet::new();
        for k in samples {
            let k = k.clamp(1, 512);
            if !shown.insert(k) {
                continue;
            }
            let point = &points[(k - 1) as usize];
            let feasible = point.is_feasible(&config);
            let measured = if feasible {
                let cell = measure(
                    benchmark,
                    MitigationScheme::Hybrid { chunk_words: k, l1_prime_t: best.l1_prime_t },
                    &config,
                    DEFAULT_SEEDS / 2,
                );
                format!("{:.3}", cell.energy_ratio)
            } else {
                "infeasible".to_owned()
            };
            println!(
                "{:>10} | {:>12.2} | {:>10.2} | {:>10.2} | {:>14}",
                k,
                point.cost.objective_pj() / 1.0e6,
                100.0 * point.area_fraction,
                100.0 * point.cost.cycle_fraction(),
                measured,
            );
        }
    }
}
