//! **Ablation F — scrubbing vs the SMU era.** SECDED + periodic scrubbing
//! was the classic defence against accumulating single-bit upsets. This
//! experiment shows why the paper's multi-bit fault model obsoletes it:
//! a single SMU strike already exceeds SECDED, so scrubbing either
//! restarts constantly (detected doubles) or — for ≥3-bit bursts that
//! alias — corrupts silently, at full-array sweep energy.
//!
//! Runs on the campaign engine: `--threads/--seeds/--seed/--json`.

use chunkpoint_bench::report;
use chunkpoint_campaign::{
    run_campaign, write_json_report, Axis, CampaignArgs, CampaignSpec, SchemeSpec,
};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_workloads::Benchmark;

const BENCHMARKS: [Benchmark; 2] = [Benchmark::AdpcmDecode, Benchmark::G721Decode];
const SCHEMES: [&str; 3] = [
    "scrub every 2k cycles",
    "scrub every 10k cycles",
    "hybrid (proposed)",
];

fn main() {
    let args = CampaignArgs::parse_or_exit(60, 0x5C2B);
    println!("Ablation F — SECDED + scrubbing vs the hybrid scheme under SMU faults");
    println!("(lambda = 1e-6; {})", args.describe());
    println!();

    let spec = CampaignSpec::new(SystemConfig::paper(args.seed), args.seed)
        .benchmarks(&BENCHMARKS)
        .scheme(
            SCHEMES[0],
            SchemeSpec::Fixed(MitigationScheme::ScrubbedSecded {
                interval_cycles: 2_000,
            }),
        )
        .scheme(
            SCHEMES[1],
            SchemeSpec::Fixed(MitigationScheme::ScrubbedSecded {
                interval_cycles: 10_000,
            }),
        )
        .scheme(SCHEMES[2], SchemeSpec::Optimal)
        .error_rates(&[1e-6])
        .replicates(args.seeds);
    let result = run_campaign(&spec, args.threads);
    let cells = result.aggregate(&[Axis::Benchmark, Axis::Scheme]);

    let table = report::Table::new(30, 10);
    for benchmark in BENCHMARKS {
        println!("== {benchmark} ==");
        table.header(
            "scheme",
            &["energy x", "restarts", "corrupted", "incomplete"]
                .map(str::to_owned)
                .to_vec(),
        );
        for scheme in SCHEMES {
            let stats = cells
                .get(&[benchmark.name(), scheme])
                .expect("every grid cell was simulated");
            // Total restarts across all replicates (mean x n), matching
            // the serial harness's cumulative counter.
            let restarts = (stats.restarts.mean() * stats.n as f64).round() as u64;
            table.row(
                scheme,
                &[
                    report::cell(stats.energy_ratio.mean()),
                    restarts.to_string(),
                    stats.completed.saturating_sub(stats.correct).to_string(),
                    (stats.n - stats.completed).to_string(),
                ],
            );
        }
        println!();
    }
    println!("scrubbing cannot help against instantaneous multi-bit strikes: it burns");
    println!("sweep energy, restarts on every detected double, and wider bursts that");
    println!("alias past SECDED corrupt silently — the hybrid stays cheap and correct.");
    write_json_report(&args, &result.to_json(&[Axis::Benchmark, Axis::Scheme]));
}
