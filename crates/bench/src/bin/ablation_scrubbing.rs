//! **Ablation F — scrubbing vs the SMU era.** SECDED + periodic scrubbing
//! was the classic defence against accumulating single-bit upsets. This
//! experiment shows why the paper's multi-bit fault model obsoletes it:
//! a single SMU strike already exceeds SECDED, so scrubbing either
//! restarts constantly (detected doubles) or — for ≥3-bit bursts that
//! alias — corrupts silently, at full-array sweep energy.

use chunkpoint_core::{golden, optimize, run, MitigationScheme, SystemConfig};
use chunkpoint_workloads::Benchmark;

const SEEDS: u64 = 60;

fn main() {
    println!("Ablation F — SECDED + scrubbing vs the hybrid scheme under SMU faults");
    println!("(lambda = 1e-6, {SEEDS} seeds per cell)");
    println!();
    for benchmark in [Benchmark::AdpcmDecode, Benchmark::G721Decode] {
        let best = optimize(benchmark, &SystemConfig::paper(0)).expect("feasible design");
        println!("== {benchmark} ==");
        println!(
            "{:<30} | {:>10} | {:>10} | {:>10} | {:>10}",
            "scheme", "energy x", "restarts", "corrupted", "incomplete"
        );
        println!("{}", "-".repeat(84));
        let schemes = [
            (
                "scrub every 2k cycles".to_owned(),
                MitigationScheme::ScrubbedSecded { interval_cycles: 2_000 },
            ),
            (
                "scrub every 10k cycles".to_owned(),
                MitigationScheme::ScrubbedSecded { interval_cycles: 10_000 },
            ),
            (
                "hybrid (proposed)".to_owned(),
                MitigationScheme::Hybrid {
                    chunk_words: best.chunk_words,
                    l1_prime_t: best.l1_prime_t,
                },
            ),
        ];
        for (label, scheme) in schemes {
            let mut energy = 0.0;
            let mut restarts = 0u64;
            let mut corrupted = 0u64;
            let mut incomplete = 0u64;
            for seed in 0..SEEDS {
                let mut config = SystemConfig::paper(seed * 2246822519 + 3);
                config.faults.error_rate = 1e-6;
                let reference = golden(benchmark, &config);
                let denominator = run(benchmark, MitigationScheme::Default, &config);
                let report = run(benchmark, scheme, &config);
                energy += report.energy_ratio(&denominator) / SEEDS as f64;
                restarts += report.restarts;
                if report.completed && !report.output_matches(&reference) {
                    corrupted += 1;
                }
                if !report.completed {
                    incomplete += 1;
                }
            }
            println!(
                "{:<30} | {:>10.3} | {:>10} | {:>10} | {:>10}",
                label, energy, restarts, corrupted, incomplete
            );
        }
        println!();
    }
    println!("scrubbing cannot help against instantaneous multi-bit strikes: it burns");
    println!("sweep energy, restarts on every detected double, and wider bursts that");
    println!("alias past SECDED corrupt silently — the hybrid stays cheap and correct.");
}
