//! Regenerates **Fig. 5**: normalized energy consumption of Default,
//! SW-based, HW-based, Proposed (optimal) and Proposed (sub-optimal)
//! mitigation for each benchmark, plus the cross-benchmark average.
//!
//! Expected shape (paper): proposed-optimal ≈ 1.05–1.22 (10.1 % average
//! overhead, 22 % max); SW and HW ≥ 1.7 on average with maxima > 2.
//!
//! Runs on the campaign engine: `--threads/--seeds/--seed/--json`.

use chunkpoint_bench::{fig5_scheme_axis, report, DEFAULT_SEEDS};
use chunkpoint_campaign::{run_campaign, write_json_report, Axis, CampaignArgs, CampaignSpec};
use chunkpoint_core::SystemConfig;
use chunkpoint_workloads::Benchmark;

fn main() {
    let args = CampaignArgs::parse_or_exit(DEFAULT_SEEDS, 0xF165);
    let config = SystemConfig::paper(args.seed);
    println!("Fig. 5 — Normalized energy consumption (Default = 1.0)");
    println!(
        "platform: ARM9 @ 200 MHz, 64 KB L1, lambda = {:.0e} word/cycle, {}",
        config.faults.error_rate,
        args.describe()
    );
    println!();

    let mut spec = CampaignSpec::new(config, args.seed).replicates(args.seeds);
    for (label, scheme) in fig5_scheme_axis() {
        spec = spec.scheme(label, scheme);
    }
    let result = run_campaign(&spec, args.threads);
    let cells = result.aggregate(&[Axis::Benchmark, Axis::Scheme]);

    let labels: Vec<String> = fig5_scheme_axis()
        .iter()
        .map(|(l, _)| (*l).to_owned())
        .collect();
    report::PAPER.header("benchmark", &labels);
    let mut sums = vec![0.0f64; labels.len()];
    for benchmark in Benchmark::ALL {
        let mut row = Vec::new();
        for (i, label) in labels.iter().enumerate() {
            let stats = cells
                .get(&[benchmark.name(), label])
                .expect("every grid cell was simulated");
            let mean = stats.energy_ratio.mean();
            sums[i] += mean;
            row.push(report::cell(mean));
        }
        report::PAPER.row(benchmark.name(), &row);
    }
    report::PAPER.rule(labels.len());
    let averages: Vec<String> = sums
        .iter()
        .map(|s| report::cell(s / Benchmark::ALL.len() as f64))
        .collect();
    report::PAPER.row("Average", &averages);

    let avg_opt = sums[3] / Benchmark::ALL.len() as f64;
    println!();
    println!(
        "proposed (optimal) average energy overhead: {:.1}% (paper: 10.1%)",
        100.0 * (avg_opt - 1.0)
    );
    println!(
        "campaign: {} scenarios in {:.2}s ({:.2} scenarios/s)",
        result.results.len(),
        result.elapsed.as_secs_f64(),
        result.scenarios_per_sec()
    );
    write_json_report(&args, &result.to_json(&[Axis::Benchmark, Axis::Scheme]));
}
