//! Regenerates **Fig. 5**: normalized energy consumption of Default,
//! SW-based, HW-based, Proposed (optimal) and Proposed (sub-optimal)
//! mitigation for each benchmark, plus the cross-benchmark average.
//!
//! Expected shape (paper): proposed-optimal ≈ 1.05–1.22 (10.1 % average
//! overhead, 22 % max); SW and HW ≥ 1.7 on average with maxima > 2.

use chunkpoint_bench::{fig5_schemes, measure, print_row, DEFAULT_SEEDS};
use chunkpoint_core::SystemConfig;
use chunkpoint_workloads::Benchmark;

fn main() {
    let config = SystemConfig::paper(0xF165);
    println!("Fig. 5 — Normalized energy consumption (Default = 1.0)");
    println!(
        "platform: ARM9 @ 200 MHz, 64 KB L1, lambda = {:.0e} word/cycle, {} seeds/cell",
        config.faults.error_rate, DEFAULT_SEEDS
    );
    println!();
    let labels: Vec<String> = fig5_schemes(Benchmark::AdpcmEncode, &config)
        .into_iter()
        .map(|(label, _)| label)
        .collect();
    print_row("benchmark", &labels);
    println!("{}", "-".repeat(24 + labels.len() * 15));

    let mut sums = vec![0.0f64; labels.len()];
    for benchmark in Benchmark::ALL {
        let schemes = fig5_schemes(benchmark, &config);
        let mut cells = Vec::new();
        for (i, (_, scheme)) in schemes.iter().enumerate() {
            let cell = measure(benchmark, *scheme, &config, DEFAULT_SEEDS);
            sums[i] += cell.energy_ratio;
            cells.push(format!("{:.3}", cell.energy_ratio));
        }
        print_row(benchmark.name(), &cells);
    }
    let averages: Vec<String> = sums
        .iter()
        .map(|s| format!("{:.3}", s / Benchmark::ALL.len() as f64))
        .collect();
    println!("{}", "-".repeat(24 + labels.len() * 15));
    print_row("Average", &averages);

    let avg_opt = sums[3] / Benchmark::ALL.len() as f64;
    println!();
    println!(
        "proposed (optimal) average energy overhead: {:.1}% (paper: 10.1%)",
        100.0 * (avg_opt - 1.0)
    );
}
