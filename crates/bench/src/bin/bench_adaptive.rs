//! Adaptive-controller measurement, emitting `BENCH_adaptive.json`: how
//! many scenarios the sequential-sampling stopping rule saves against
//! the fixed grid at the same CI target, and what the pure round
//! planner costs per decision.
//!
//! Three figures:
//!
//! * `fixed` — the full grid through `LocalExecutor::submit`, every
//!   cell running all of its replicates (the budget the adaptive run is
//!   measured against);
//! * `adaptive` — the same `(spec, target CI)` through
//!   [`AdaptiveController`]: cells stop at the first round boundary
//!   where their live CI95 half-width is inside the relative target.
//!   The acceptance bar is `executed < budget` with every stopped cell
//!   converged;
//! * `plan_round` — nanoseconds per call of the pure planner over a
//!   synthetic many-cell progress table, bounding the controller's
//!   per-round decision overhead (it is nowhere near the scenario
//!   cost).
//!
//! Run with `cargo run --release -p chunkpoint_bench --bin
//! bench_adaptive`. `--smoke` shrinks the grid for CI; `--json PATH`
//! overrides the output path.

use std::time::Instant;

use chunkpoint_adaptive::{plan_round, AdaptiveController, AdaptivePolicy, CellProgress};
use chunkpoint_campaign::{
    pool::default_threads, CampaignArgs, CampaignSpec, JsonValue, SchemeSpec,
};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_exec::{CampaignExecutor, LocalExecutor};
use chunkpoint_workloads::Benchmark;

/// A grid with deliberate variance skew: the 1e-4 error-rate cells see
/// real fault/rollback noise while the 1e-6 cells are near-quiet, so a
/// CI-targeted controller has something to reallocate toward.
fn grid_spec(seed: u64, replicates: u64) -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    CampaignSpec::new(config, seed)
        .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .error_rates(&[1e-6, 1e-4])
        .replicates(replicates)
}

fn main() {
    let args = CampaignArgs::parse_or_exit(1, 0xADA_BE7C);
    let replicates = if args.smoke { 6 } else { 24 };
    let threads = if args.threads == 0 {
        default_threads()
    } else {
        args.threads
    };
    let spec = grid_spec(args.seed, replicates);
    let budget = spec.scenarios().len();
    // The CI target both sides are held to: half-width within 40% of
    // the cell mean (floor 3 replicates, granted 3 per round).
    let policy = AdaptivePolicy::new()
        .min_replicates(3)
        .round_replicates(3)
        .rel_ci(0.4);
    println!("bench_adaptive: {budget}-scenario grid, {threads} thread(s), rel CI target 0.4");

    // Fixed grid: every cell runs all of its replicates.
    let start = Instant::now();
    let fixed = LocalExecutor::new(threads)
        .submit(&spec)
        .wait()
        .expect("fixed-grid run");
    let fixed_secs = start.elapsed().as_secs_f64();
    assert_eq!(fixed.scenarios, budget);

    // Adaptive: the same spec and target, cells stopping at round
    // boundaries once their live CI95 is inside the target.
    let start = Instant::now();
    let adaptive = AdaptiveController::new(LocalExecutor::new(threads), policy.clone())
        .run(&spec)
        .expect("adaptive run");
    let adaptive_secs = start.elapsed().as_secs_f64();
    let converged = adaptive.cells.iter().filter(|c| c.stop.converged).count();
    assert!(
        adaptive.executed < budget,
        "adaptive executed the whole grid: {} of {budget}",
        adaptive.executed
    );
    let saved = budget - adaptive.executed;
    let saved_pct = 100.0 * saved as f64 / budget as f64;

    // Decision overhead: the pure planner over a synthetic 256-cell
    // progress table (16 replicates of LCG noise each) — the entire
    // per-round control cost beyond the scenarios themselves.
    let mut cells = vec![CellProgress::default(); 256];
    let mut lcg = 0x9E37_79B9_7F4A_7C15u64;
    for cell in &mut cells {
        for _ in 0..16 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            cell.summary.push(1e6 + (lcg >> 40) as f64);
            cell.spent += 1;
        }
    }
    let plan_calls = if args.smoke { 2_000 } else { 50_000 };
    let start = Instant::now();
    let mut stops = 0usize;
    for round in 0..plan_calls {
        let plan = plan_round(&policy, 32, (round % 8) as u32 + 1, &cells, 0);
        stops += plan.stops.len();
    }
    let plan_ns = start.elapsed().as_nanos() as f64 / plan_calls as f64;
    assert!(stops > 0, "synthetic table never converged");

    println!(
        "fixed:     {budget:>4} scenarios in {fixed_secs:>6.2}s ({:.1} scenarios/s)",
        budget as f64 / fixed_secs.max(1e-9)
    );
    println!(
        "adaptive:  {:>4} scenarios in {adaptive_secs:>6.2}s ({saved} saved, {saved_pct:.1}%, \
         {converged}/{} cells converged, {} rounds)",
        adaptive.executed,
        adaptive.cells.len(),
        adaptive.rounds
    );
    println!("plan_round: {plan_ns:>8.0} ns/call over 256 cells");

    let doc = JsonValue::object()
        .field("bench", "adaptive_controller")
        .field("cpus_available", default_threads())
        .field("threads", threads)
        .field("rel_ci_target", 0.4)
        .field("grid_scenarios", budget)
        .field("fixed_scenarios", budget)
        .field("fixed_secs", fixed_secs)
        .field("adaptive_scenarios", adaptive.executed)
        .field("adaptive_secs", adaptive_secs)
        .field("scenarios_saved", saved)
        .field("scenarios_saved_pct", saved_pct)
        .field("cells", adaptive.cells.len())
        .field("cells_converged", converged)
        .field("control_rounds", adaptive.rounds as u64)
        .field("plan_round_ns", plan_ns)
        .field(
            "note",
            "fixed = full grid through LocalExecutor; adaptive = the same (spec, rel CI \
             target 0.4) through AdaptiveController, cells stopping at round boundaries \
             once their live CI95 half-width is inside the target (floor 3 replicates); \
             plan_round = the pure per-round planner over a synthetic 256-cell table. \
             Acceptance: adaptive_scenarios < fixed_scenarios with converged cells",
        );

    if args.smoke {
        println!("smoke run: adaptive paths exercised");
        if let Some(path) = &args.json {
            std::fs::write(path, doc.render() + "\n").expect("write json report");
            println!("wrote {path}");
        }
    } else {
        let path = args.json.as_deref().unwrap_or("BENCH_adaptive.json");
        std::fs::write(path, doc.render() + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}
