//! Campaign-service throughput measurement, emitting `BENCH_serve.json`
//! so successive PRs have a comparable requests/second trajectory (the
//! service counterpart of `BENCH_campaign.json`).
//!
//! Starts an in-process `chunkpoint_serve` server on an ephemeral port
//! and measures three request classes over real TCP connections (one
//! request per connection, as the service speaks it):
//!
//! * `healthz` — the protocol floor: parse + route + respond;
//! * `spec submission` — `POST /campaigns` with *unique* one-scenario
//!   specs (each request hashes the spec, persists a job dir, enqueues);
//! * `cache hit` — `POST /campaigns` re-submitting one finished spec
//!   (the content-addressed fast path the result cache exists for);
//! * `concurrent cache hit` — the same cache-hit request from several
//!   client threads at once (the accept-per-connection loop and the
//!   lock-free metrics hot path under contention).
//!
//! Run with `cargo run --release -p chunkpoint_bench --bin bench_serve`.
//! `--smoke` shrinks the request counts for CI; `--json PATH` overrides
//! the output path.

use std::time::{Duration, Instant};

use chunkpoint_campaign::{
    pool::default_threads, CampaignArgs, CampaignSpec, JsonValue, SchemeSpec,
};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_serve::http::request;
use chunkpoint_serve::server::{ServeConfig, Server};
use chunkpoint_workloads::Benchmark;

/// A one-scenario spec, unique per `campaign_seed` (distinct content
/// hash), cheap enough that the runner pool drains submissions fast.
fn tiny_spec(campaign_seed: u64) -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    CampaignSpec::new(config, campaign_seed)
        .benchmarks(&[Benchmark::AdpcmEncode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .normalize(false)
        .golden_check(false)
}

/// Requests/second over `n` sequential request closures.
fn measure(n: usize, mut one: impl FnMut(usize)) -> f64 {
    let start = Instant::now();
    for i in 0..n {
        one(i);
    }
    n as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn main() {
    let args = CampaignArgs::parse_or_exit(1, 0xBE9C);
    let (healthz_n, submit_n, cache_n) = if args.smoke {
        (50, 10, 50)
    } else {
        (500, 100, 500)
    };

    let data_dir =
        std::env::temp_dir().join(format!("chunkpoint_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: data_dir.clone(),
        max_jobs: 2,
        campaign_threads: args.threads,
        max_queued: 0,
        trace_out: None,
    })
    .expect("bind server");
    let addr = server.local_addr().expect("addr");
    let serving = std::thread::spawn(move || server.run());
    println!(
        "bench_serve: service on {addr} ({} submissions, {} cache hits)",
        submit_n, cache_n
    );

    // Protocol floor.
    let healthz_rps = measure(healthz_n, |_| {
        let (status, _) = request(addr, "GET", "/healthz", None).expect("healthz");
        assert_eq!(status, 200);
    });

    // Unique-spec submission: hash + persist + enqueue per request.
    let submit_rps = measure(submit_n, |i| {
        let body = tiny_spec(args.seed + 1 + i as u64).to_json().render();
        let (status, response) = request(addr, "POST", "/campaigns", Some(&body)).expect("submit");
        assert_eq!(status, 202, "{response}");
    });

    // Warm one spec to completion, then hammer the cache-hit path.
    let warm = tiny_spec(args.seed);
    let warm_body = warm.to_json().render();
    let (status, response) =
        request(addr, "POST", "/campaigns", Some(&warm_body)).expect("warm submit");
    assert_eq!(status, 202, "{response}");
    let warm_id = JsonValue::parse(&response)
        .expect("submit json")
        .get("id")
        .and_then(|v| v.as_str().map(str::to_owned))
        .expect("id");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, body) = request(addr, "GET", &format!("/campaigns/{warm_id}"), None).expect("poll");
        if body.contains("\"status\":\"done\"") {
            break;
        }
        assert!(
            body.contains("\"status\":\"queued\"") || body.contains("\"status\":\"running\""),
            "warm job went sideways: {body}"
        );
        assert!(Instant::now() < deadline, "warm job never finished");
        std::thread::sleep(Duration::from_millis(2));
    }
    let cache_hit_rps = measure(cache_n, |_| {
        let (status, response) =
            request(addr, "POST", "/campaigns", Some(&warm_body)).expect("cache hit");
        assert_eq!(status, 200, "{response}");
        assert!(response.contains("\"cached\":true"), "{response}");
    });

    // Concurrent clients hammering the same cache-hit path: aggregate
    // throughput across all threads, wall-clock measured over the
    // whole burst.
    let clients = 4usize;
    let per_client = (cache_n / clients).max(1);
    let warm_ref = &warm_body;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(move || {
                for _ in 0..per_client {
                    let (status, response) =
                        request(addr, "POST", "/campaigns", Some(warm_ref)).expect("cache hit");
                    assert_eq!(status, 200, "{response}");
                }
            });
        }
    });
    let concurrent_rps = (clients * per_client) as f64 / start.elapsed().as_secs_f64().max(1e-9);

    println!("healthz:        {healthz_rps:>9.0} req/s");
    println!("spec submit:    {submit_rps:>9.0} req/s (unique specs; persist + enqueue)");
    println!("cache hit:      {cache_hit_rps:>9.0} req/s (content-addressed resubmit)");
    println!("concurrent x{clients}: {concurrent_rps:>8.0} req/s (cache hits from {clients} client threads)");

    let doc = JsonValue::object()
        .field("bench", "campaign_service_throughput")
        .field("cpus_available", default_threads())
        .field(
            "requests",
            JsonValue::object()
                .field("healthz", healthz_n)
                .field("submit", submit_n)
                .field("cache_hit", cache_n)
                .field("concurrent_cache_hit", clients * per_client),
        )
        .field("healthz_rps", healthz_rps)
        .field("submit_rps", submit_rps)
        .field("cache_hit_rps", cache_hit_rps)
        .field("concurrent_clients", clients)
        .field("concurrent_cache_hit_rps", concurrent_rps)
        .field(
            "note",
            "sequential requests, one TCP connection each; submit = unique one-scenario \
             specs (hash + persist + enqueue), cache_hit = resubmit of a finished spec, \
             concurrent_cache_hit = the same resubmit from 4 client threads at once",
        );

    if args.smoke {
        println!("smoke run: service paths exercised");
        if let Some(path) = &args.json {
            std::fs::write(path, doc.render() + "\n").expect("write json report");
            println!("wrote {path}");
        }
    } else {
        let path = args.json.as_deref().unwrap_or("BENCH_serve.json");
        std::fs::write(path, doc.render() + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }

    let (_, _) = request(addr, "POST", "/shutdown", None).expect("shutdown");
    serving.join().expect("server drained");
    let _ = std::fs::remove_dir_all(&data_dir);
}
