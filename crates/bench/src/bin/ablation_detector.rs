//! **Ablation D — detector soundness.** The paper's Fig. 2a literally says
//! "check parity bit", but single even parity cannot detect even-width
//! SMU bursts (~35 % of strikes in the 65 nm model). This experiment runs
//! the *same* hybrid protocol with both detectors and measures how often
//! each configuration silently hands over corrupted output — the
//! executable justification for this reproduction's interleaved-parity
//! substitution (DESIGN.md §2).

use chunkpoint_core::{golden, optimize, run, MitigationScheme, SystemConfig, DETECTOR_WAYS};
use chunkpoint_workloads::Benchmark;

const SEEDS: u64 = 400;

fn main() {
    println!("Ablation D — hybrid detector soundness under SMU bursts");
    println!("({SEEDS} fault seeds per cell, lambda = 3e-5 to get ~1 strike/frame on the live set)");
    println!();
    println!(
        "{:<14} | {:>24} | {:>24}",
        "benchmark", "single parity (paper lit.)", format!("interleaved x{DETECTOR_WAYS} (ours)")
    );
    println!("{:<14} | {:>24} | {:>24}", "", "silent corruptions", "silent corruptions");
    println!("{}", "-".repeat(70));
    for benchmark in [Benchmark::AdpcmDecode, Benchmark::G721Encode, Benchmark::JpegDecode] {
        let best = optimize(benchmark, &SystemConfig::paper(0)).expect("feasible design");
        let mut corrupt = [0u64; 2];
        let mut struck = [0u64; 2];
        for seed in 0..SEEDS {
            let mut config = SystemConfig::paper(seed * 2654435761 + 1);
            config.faults.error_rate = 3e-5;
            let reference = golden(benchmark, &config);
            let schemes = [
                MitigationScheme::HybridSingleParity {
                    chunk_words: best.chunk_words,
                    l1_prime_t: best.l1_prime_t,
                },
                MitigationScheme::Hybrid {
                    chunk_words: best.chunk_words,
                    l1_prime_t: best.l1_prime_t,
                },
            ];
            for (i, &scheme) in schemes.iter().enumerate() {
                let report = run(benchmark, scheme, &config);
                if report.completed && !report.output_matches(&reference) {
                    corrupt[i] += 1;
                }
                if report.errors_detected > 0 || !report.output_matches(&reference) {
                    struck[i] += 1;
                }
            }
        }
        println!(
            "{:<14} | {:>17} of {:>3} | {:>17} of {:>3}",
            benchmark.name(),
            corrupt[0],
            struck[0],
            corrupt[1],
            struck[1],
        );
    }
    println!();
    println!("single parity lets even-width bursts through (silent corruption);");
    println!("the interleaved detector catches every burst the SMU model can produce.");
}
