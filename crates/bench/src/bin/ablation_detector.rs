//! **Ablation D — detector soundness.** The paper's Fig. 2a literally says
//! "check parity bit", but single even parity cannot detect even-width
//! SMU bursts (~35 % of strikes in the 65 nm model). This experiment runs
//! the *same* hybrid protocol with both detectors and measures how often
//! each configuration silently hands over corrupted output — the
//! executable justification for this reproduction's interleaved-parity
//! substitution (DESIGN.md §2).
//!
//! Runs on the campaign engine: `--threads/--seeds/--seed/--json`.

use chunkpoint_bench::report;
use chunkpoint_campaign::{
    run_campaign, write_json_report, Axis, CampaignArgs, CampaignSpec, SchemeSpec,
};
use chunkpoint_core::{SystemConfig, DETECTOR_WAYS};
use chunkpoint_workloads::Benchmark;

const BENCHMARKS: [Benchmark; 3] = [
    Benchmark::AdpcmDecode,
    Benchmark::G721Encode,
    Benchmark::JpegDecode,
];

fn main() {
    let args = CampaignArgs::parse_or_exit(400, 0xD7EC);
    println!("Ablation D — hybrid detector soundness under SMU bursts");
    println!(
        "(lambda = 3e-5 to get ~1 strike/frame on the live set; {})",
        args.describe()
    );
    println!();

    let spec = CampaignSpec::new(SystemConfig::paper(args.seed), args.seed)
        .benchmarks(&BENCHMARKS)
        .scheme("single parity", SchemeSpec::OptimalSingleParity)
        .scheme("interleaved", SchemeSpec::Optimal)
        .error_rates(&[3e-5])
        .replicates(args.seeds)
        .normalize(false); // absolute corruption counts; no denominators
    let result = run_campaign(&spec, args.threads);

    let table = report::Table::new(14, 24);
    table.row(
        "benchmark",
        &[
            "single parity (paper lit.)".to_owned(),
            format!("interleaved x{DETECTOR_WAYS} (ours)"),
        ],
    );
    table.row(
        "",
        &[
            "silent corruptions".to_owned(),
            "silent corruptions".to_owned(),
        ],
    );
    table.rule(2);
    for benchmark in BENCHMARKS {
        // corrupt: completed but wrong output (the detector missed a
        // strike); struck: any scenario that saw a detected error or a
        // wrong output — the denominator "frames with an event".
        let mut corrupt = [0u64; 2];
        let mut struck = [0u64; 2];
        for r in result
            .results
            .iter()
            .filter(|r| r.scenario.benchmark == benchmark)
        {
            let i = usize::from(r.scenario.scheme_label != "single parity");
            let wrong = r.correct == Some(false);
            if r.completed && wrong {
                corrupt[i] += 1;
            }
            if r.errors_detected > 0 || wrong {
                struck[i] += 1;
            }
        }
        table.row(
            benchmark.name(),
            &[
                format!("{:>10} of {:>3}", corrupt[0], struck[0]),
                format!("{:>10} of {:>3}", corrupt[1], struck[1]),
            ],
        );
    }
    println!();
    println!("single parity lets even-width bursts through (silent corruption);");
    println!("the interleaved detector catches every burst the SMU model can produce.");
    write_json_report(&args, &result.to_json(&[Axis::Benchmark, Axis::Scheme]));
}
