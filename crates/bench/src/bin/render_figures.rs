//! Renders the paper's figures as SVG files under `figures/`:
//!
//! * `fig4_feasible_region.svg` — the area-feasibility staircase;
//! * `fig5_energy.svg` — normalized energy, grouped bars per benchmark;
//! * `time_overhead.svg` — normalized execution time;
//! * `fig1_timeline.svg` — a real execution timeline with an injected
//!   error and its demand-driven rollback.

use chunkpoint_bench::plot::{grouped_bar_chart, step_plot, timeline_svg};
use chunkpoint_bench::{fig5_schemes, measure, DEFAULT_SEEDS};
use chunkpoint_core::{feasible_region, run, MitigationScheme, SystemConfig};
use chunkpoint_workloads::Benchmark;

fn main() -> std::io::Result<()> {
    let config = SystemConfig::paper(0xF165);
    std::fs::create_dir_all("figures")?;

    // Fig. 4.
    let region = feasible_region(&config);
    let points: Vec<(f64, f64)> = region
        .iter()
        .map(|&(w, t)| (f64::from(w), f64::from(t)))
        .collect();
    let svg = step_plot(
        "Fig. 4 - Feasible chunk areas vs correctable bits (5% area budget)",
        "chunk size (number of words)",
        "correctable bits (per word)",
        &points,
        true,
    );
    std::fs::write("figures/fig4_feasible_region.svg", svg)?;
    println!("wrote figures/fig4_feasible_region.svg");

    // Fig. 5 + time overhead share the measurement loop.
    let labels: Vec<String> = fig5_schemes(Benchmark::AdpcmEncode, &config)
        .into_iter()
        .map(|(label, _)| label)
        .collect();
    let categories: Vec<String> = Benchmark::ALL
        .iter()
        .map(|b| b.name().to_owned())
        .chain(std::iter::once("Average".to_owned()))
        .collect();
    let mut energy_series: Vec<(String, Vec<f64>)> =
        labels.iter().map(|l| (l.clone(), Vec::new())).collect();
    let mut time_series = energy_series.clone();
    for benchmark in Benchmark::ALL {
        let schemes = fig5_schemes(benchmark, &config);
        for (i, (_, scheme)) in schemes.iter().enumerate() {
            let cell = measure(benchmark, *scheme, &config, DEFAULT_SEEDS);
            energy_series[i].1.push(cell.energy_ratio);
            time_series[i].1.push(cell.cycle_ratio);
        }
    }
    for series in [&mut energy_series, &mut time_series] {
        for (_, values) in series.iter_mut() {
            let avg = values.iter().sum::<f64>() / values.len() as f64;
            values.push(avg);
        }
    }
    std::fs::write(
        "figures/fig5_energy.svg",
        grouped_bar_chart(
            "Fig. 5 - Normalized energy consumption (Default = 1.0)",
            "normalized energy",
            &categories,
            &energy_series,
        ),
    )?;
    println!("wrote figures/fig5_energy.svg");
    std::fs::write(
        "figures/time_overhead.svg",
        grouped_bar_chart(
            "SIII-B - Normalized execution time (Default = 1.0)",
            "normalized execution time",
            &categories,
            &time_series,
        ),
    )?;
    println!("wrote figures/time_overhead.svg");

    // Fig. 1: find a frame with at least one rollback and render it.
    let scheme = MitigationScheme::Hybrid {
        chunk_words: 8,
        l1_prime_t: 8,
    };
    let report = (0..500u64)
        .map(|s| {
            let mut c = SystemConfig::paper(2012 + s);
            c.faults.error_rate = 5e-5;
            run(Benchmark::AdpcmDecode, scheme, &c)
        })
        .find(|r| r.rollbacks > 0 && r.completed)
        .expect("a rollback within 500 frames at 5e-5");
    std::fs::write(
        "figures/fig1_timeline.svg",
        timeline_svg(
            "Fig. 1 - Chunked execution with an intermittent error and rollback (ADPCM decode)",
            report.trace.events(),
        ),
    )?;
    println!("wrote figures/fig1_timeline.svg");
    Ok(())
}
