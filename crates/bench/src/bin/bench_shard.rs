//! Shard-coordinator throughput measurement, emitting `BENCH_shard.json`
//! so successive PRs have a comparable cross-backend trajectory (the
//! sharding counterpart of `BENCH_serve.json`).
//!
//! Starts two in-process `chunkpoint_serve` instances on ephemeral ports
//! and measures three figures over real TCP:
//!
//! * `unsharded` — the same grid run in-process single-threaded (the
//!   baseline the byte-identity is checked against);
//! * `sharded 2x` — the coordinator splitting the grid across both
//!   backends (dispatch + poll + journal fetch + merge included);
//! * `merge` — the journal-merge path alone, rows/second (the
//!   coordinator-side cost that grows with grid size).
//!
//! Run with `cargo run --release -p chunkpoint_bench --bin bench_shard`.
//! `--smoke` shrinks the grid for CI; `--json PATH` overrides the output
//! path. On a 1-CPU container the sharded figure is bounded by the host
//! (two backends share one core) — regenerate on wider machines.

use std::time::Instant;

use chunkpoint_campaign::{
    canonical_report_json, pool::default_threads, run_campaign, CampaignArgs, CampaignSpec,
    JsonValue, SchemeSpec,
};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_serve::server::{ServeConfig, Server};
use chunkpoint_serve::REPORT_AXES;
use chunkpoint_shard::{exchange, merged_report, run_sharded, ShardConfig};
use chunkpoint_workloads::Benchmark;

fn grid_spec(seed: u64, replicates: u64) -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    CampaignSpec::new(config, seed)
        .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .replicates(replicates)
}

fn main() {
    let args = CampaignArgs::parse_or_exit(1, 0x54A2D);
    let replicates = if args.smoke { 3 } else { 25 };
    let spec = grid_spec(args.seed, replicates);
    let scenarios = spec.scenarios().len();

    // Two in-process backends on ephemeral ports, one campaign job and
    // one worker each — the shape the CI smoke and the cross-process
    // tests use.
    let mut backends = Vec::new();
    let mut data_dirs = Vec::new();
    for k in 0..2 {
        let data_dir =
            std::env::temp_dir().join(format!("chunkpoint_bench_shard_{}_{k}", std::process::id()));
        let _ = std::fs::remove_dir_all(&data_dir);
        let server = Server::bind(&ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            data_dir: data_dir.clone(),
            max_jobs: 1,
            campaign_threads: 1,
            max_queued: 0,
            trace_out: None,
        })
        .expect("bind backend");
        let addr = server.local_addr().expect("addr").to_string();
        std::thread::spawn(move || server.run());
        backends.push(addr);
        data_dirs.push(data_dir);
    }
    println!(
        "bench_shard: {scenarios}-scenario grid across {} backends ({})",
        backends.len(),
        backends.join(", ")
    );

    // Baseline: the unsharded single-threaded run (also the byte oracle).
    let start = Instant::now();
    let reference = run_campaign(&spec, 1);
    let unsharded_secs = start.elapsed().as_secs_f64();
    let expected =
        canonical_report_json(spec.campaign_seed, &reference.results, &REPORT_AXES).render();

    // Sharded end-to-end: dispatch, poll, journal fetch, merge. A tight
    // poll keeps the figure about coordination overhead, not sleep
    // quantum (the smoke grids here finish in a few poll sweeps).
    let config = ShardConfig {
        poll_interval: std::time::Duration::from_millis(2),
        ..ShardConfig::default()
    };
    let start = Instant::now();
    let run = run_sharded(&spec, &backends, &config).expect("sharded run");
    let sharded_secs = start.elapsed().as_secs_f64();
    let identical = run.report == expected;
    assert!(identical, "sharded report diverged from the unsharded run");

    // Merge alone: rows/second over the already-fetched result rows.
    let merge_rounds = if args.smoke { 20 } else { 200 };
    let start = Instant::now();
    for _ in 0..merge_rounds {
        let (_, rows) =
            merged_report(spec.campaign_seed, scenarios, run.results.clone()).expect("merge");
        std::hint::black_box(rows);
    }
    let merge_rows_per_sec =
        (merge_rounds * scenarios) as f64 / start.elapsed().as_secs_f64().max(1e-9);

    let unsharded_sps = scenarios as f64 / unsharded_secs.max(1e-9);
    let sharded_sps = scenarios as f64 / sharded_secs.max(1e-9);
    println!("unsharded:   {unsharded_sps:>9.1} scenarios/s (1 thread, in-process)");
    println!(
        "sharded 2x:  {sharded_sps:>9.1} scenarios/s ({} dispatches, byte-identical: {identical})",
        run.dispatches
    );
    println!("merge:       {merge_rows_per_sec:>9.0} rows/s");

    let doc = JsonValue::object()
        .field("bench", "shard_coordinator_throughput")
        .field("cpus_available", default_threads())
        .field("scenarios", scenarios)
        .field("backends", backends.len())
        .field("unsharded_scenarios_per_sec", unsharded_sps)
        .field("sharded_2x_scenarios_per_sec", sharded_sps)
        .field("merge_rows_per_sec", merge_rows_per_sec)
        .field("byte_identical", identical)
        .field(
            "note",
            "two in-process serve backends (1 job x 1 worker each) on ephemeral ports; \
             sharded figure includes dispatch, polling, journal fetch and merge; \
             wall speedup is bounded by cpus_available",
        );

    if args.smoke {
        println!("smoke run: shard paths exercised");
        if let Some(path) = &args.json {
            std::fs::write(path, doc.render() + "\n").expect("write json report");
            println!("wrote {path}");
        }
    } else {
        let path = args.json.as_deref().unwrap_or("BENCH_shard.json");
        std::fs::write(path, doc.render() + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }

    for addr in &backends {
        let _ = exchange(
            addr,
            "POST",
            "/shutdown",
            None,
            std::time::Duration::from_secs(5),
        );
    }
    for dir in &data_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}
