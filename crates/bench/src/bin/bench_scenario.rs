//! Timeline-scenario cost measurement, emitting `BENCH_scenario.json`:
//! what the scenario axis — fault-burst timelines, error-rate shifts,
//! scrub schedules, and `expect` verdicts — adds on top of a plain
//! static grid of the same size.
//!
//! Two in-process campaigns over the same benchmarks, schemes, and
//! seeds:
//!
//! * `plain` — the static cross-product, replicates scaled up so both
//!   grids hold the same number of scenario rows;
//! * `timeline` — the same cell count spread across three named
//!   scenarios (a saturating burst, a quiet shift-to-zero with an
//!   expect block, and a scrub schedule), so every row pays timeline
//!   bookkeeping and a third of them pay expect evaluation.
//!
//! Run with `cargo run --release -p chunkpoint_bench --bin
//! bench_scenario`. `--smoke` shrinks the grid for CI; `--json PATH`
//! overrides the output path.

use std::time::Instant;

use chunkpoint_campaign::{
    pool::default_threads, run_campaign, CampaignArgs, CampaignSpec, JsonValue, SchemeSpec,
};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_scenario::{
    ExpectField, ExpectOp, ExpectValue, Expectation, ScenarioDef, TimelineEvent,
};
use chunkpoint_workloads::Benchmark;

/// The bench's scenario axis: one burst regime, one quiet regime with
/// an expect block, one scrub schedule.
fn scenario_axis() -> Vec<ScenarioDef> {
    let mut storm = ScenarioDef::named("storm");
    storm.tags = vec!["burst".to_owned()];
    // Strikes materialise lazily at read time; cycle 2000 falls in the
    // quarter-scale decode task's output-drain exposure window.
    storm.timeline = vec![TimelineEvent::FaultBurst {
        cycle: 2_000,
        words: 64,
        rate: 1.0,
    }];
    let mut calm = ScenarioDef::named("calm");
    calm.timeline = vec![TimelineEvent::ErrorRateShift {
        cycle: 0,
        rate: 0.0,
    }];
    calm.expect = vec![
        Expectation {
            field: ExpectField::Completed,
            op: ExpectOp::Eq,
            value: ExpectValue::Bool(true),
        },
        Expectation {
            field: ExpectField::DetectedErrors,
            op: ExpectOp::Eq,
            value: ExpectValue::Uint(0),
        },
    ];
    let mut scrubbed = ScenarioDef::named("scrubbed");
    scrubbed.timeline = vec![TimelineEvent::Scrub { period: 4_096 }];
    vec![storm, calm, scrubbed]
}

fn base_spec(seed: u64, scale: f64, replicates: u64) -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = scale;
    CampaignSpec::new(config, seed)
        .benchmarks(&[Benchmark::AdpcmDecode, Benchmark::G722Decode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .error_rates(&[1e-6])
        .replicates(replicates)
}

fn main() {
    let args = CampaignArgs::parse_or_exit(1, 0x5CE7);
    let (scale, replicates) = if args.smoke { (0.25, 3) } else { (1.0, 30) };
    let threads = if args.threads == 0 {
        default_threads()
    } else {
        args.threads
    };

    // Same row count on both sides: the timeline grid multiplies cells
    // by its three scenarios, so the plain grid gets 3x the replicates.
    let plain_spec = base_spec(args.seed, scale, replicates * 3);
    let timeline_spec =
        base_spec(args.seed, scale, replicates).timeline_scenarios(&scenario_axis());
    let rows = plain_spec.scenarios().len();
    assert_eq!(
        rows,
        timeline_spec.scenarios().len(),
        "grids must hold the same row count"
    );
    println!("bench_scenario: {rows} rows per grid, {threads} threads");

    let start = Instant::now();
    let plain = run_campaign(&plain_spec, threads);
    let plain_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let timeline = run_campaign(&timeline_spec, threads);
    let timeline_secs = start.elapsed().as_secs_f64();

    // The verdicts the bench grid guarantees: every calm row passes its
    // expect block, storm and scrubbed rows carry none.
    let mut expects_passed = 0usize;
    for row in &timeline.results {
        match row.scenario.scenario.as_deref() {
            Some("calm") => {
                assert_eq!(row.expect_passed, Some(true), "calm row failed its expect");
                expects_passed += 1;
            }
            _ => assert_eq!(row.expect_passed, None),
        }
    }
    assert_eq!(plain.results.len(), rows);
    assert_eq!(timeline.results.len(), rows);

    let plain_rps = rows as f64 / plain_secs.max(1e-9);
    let timeline_rps = rows as f64 / timeline_secs.max(1e-9);
    let overhead = timeline_secs / plain_secs.max(1e-9) - 1.0;
    println!("plain grid:     {plain_secs:>8.3} s ({plain_rps:.0} rows/s)");
    println!("timeline grid:  {timeline_secs:>8.3} s ({timeline_rps:.0} rows/s)");
    println!(
        "axis overhead:  {:+.1}% ({expects_passed} expect verdicts)",
        overhead * 100.0
    );

    let doc = JsonValue::object()
        .field("bench", "timeline_scenarios_vs_plain_grid")
        .field("cpus_available", default_threads())
        .field("threads", threads)
        .field("rows_per_grid", rows)
        .field("scenario_axis", scenario_axis().len())
        .field("plain_secs", plain_secs)
        .field("timeline_secs", timeline_secs)
        .field("plain_rows_per_sec", plain_rps)
        .field("timeline_rows_per_sec", timeline_rps)
        .field("axis_overhead_frac", overhead)
        .field("expect_verdicts", expects_passed)
        .field(
            "note",
            "same row count on both sides (plain grid gets 3x replicates in place of the \
             3-scenario timeline axis); timeline rows pay burst/shift/scrub bookkeeping in \
             the fault process plus expect evaluation on the calm third",
        );

    if args.smoke {
        println!("smoke run: scenario axis exercised");
        if let Some(path) = &args.json {
            std::fs::write(path, doc.render() + "\n").expect("write json report");
            println!("wrote {path}");
        }
    } else {
        let path = args.json.as_deref().unwrap_or("BENCH_scenario.json");
        std::fs::write(path, doc.render() + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}
