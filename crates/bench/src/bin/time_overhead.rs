//! Regenerates the **§III-B execution-time observation**: the proposed
//! scheme stays within the 10 % cycle-overhead constraint while the HW and
//! SW baselines exceed it, by up to 100 %.
//!
//! Runs on the campaign engine: `--threads/--seeds/--seed/--json`.

use chunkpoint_bench::{fig5_scheme_axis, report, DEFAULT_SEEDS};
use chunkpoint_campaign::{run_campaign, write_json_report, Axis, CampaignArgs, CampaignSpec};
use chunkpoint_core::SystemConfig;
use chunkpoint_workloads::Benchmark;

fn main() {
    let args = CampaignArgs::parse_or_exit(DEFAULT_SEEDS, 0x71ED);
    let config = SystemConfig::paper(args.seed);
    println!("SIII-B — Normalized execution time (Default = 1.0)");
    println!(
        "cycle-overhead constraint OV2 = {:.0}%, {}",
        100.0 * config.constraints.cycle_overhead,
        args.describe()
    );
    println!();

    let constraints = config.constraints;
    let mut spec = CampaignSpec::new(config, args.seed).replicates(args.seeds);
    for (label, scheme) in fig5_scheme_axis() {
        spec = spec.scheme(label, scheme);
    }
    let result = run_campaign(&spec, args.threads);
    let cells = result.aggregate(&[Axis::Benchmark, Axis::Scheme]);

    let labels: Vec<String> = fig5_scheme_axis()
        .iter()
        .map(|(l, _)| (*l).to_owned())
        .collect();
    report::PAPER.header("benchmark", &labels);
    let mut sums = vec![0.0f64; labels.len()];
    let mut max_proposed: f64 = 0.0;
    for benchmark in Benchmark::ALL {
        let mut row = Vec::new();
        for (i, label) in labels.iter().enumerate() {
            let stats = cells
                .get(&[benchmark.name(), label])
                .expect("every grid cell was simulated");
            let mean = stats.cycle_ratio.mean();
            sums[i] += mean;
            if i == 3 {
                max_proposed = max_proposed.max(mean);
            }
            row.push(report::cell(mean));
        }
        report::PAPER.row(benchmark.name(), &row);
    }
    report::PAPER.rule(labels.len());
    let averages: Vec<String> = sums
        .iter()
        .map(|s| report::cell(s / Benchmark::ALL.len() as f64))
        .collect();
    report::PAPER.row("Average", &averages);
    println!();
    println!(
        "proposed (optimal) worst-case time overhead: {:.1}% (constraint: {:.0}%)",
        100.0 * (max_proposed - 1.0),
        100.0 * constraints.cycle_overhead
    );
    write_json_report(&args, &result.to_json(&[Axis::Benchmark, Axis::Scheme]));
}
