//! Regenerates the **§III-B execution-time observation**: the proposed
//! scheme stays within the 10 % cycle-overhead constraint while the HW and
//! SW baselines exceed it, by up to 100 %.

use chunkpoint_bench::{fig5_schemes, measure, print_row, DEFAULT_SEEDS};
use chunkpoint_core::SystemConfig;
use chunkpoint_workloads::Benchmark;

fn main() {
    let config = SystemConfig::paper(0x71ED);
    println!("SIII-B — Normalized execution time (Default = 1.0)");
    println!(
        "cycle-overhead constraint OV2 = {:.0}%, {} seeds/cell",
        100.0 * config.constraints.cycle_overhead,
        DEFAULT_SEEDS
    );
    println!();
    let labels: Vec<String> = fig5_schemes(Benchmark::AdpcmEncode, &config)
        .into_iter()
        .map(|(label, _)| label)
        .collect();
    print_row("benchmark", &labels);
    println!("{}", "-".repeat(24 + labels.len() * 15));

    let mut sums = vec![0.0f64; labels.len()];
    let mut max_proposed: f64 = 0.0;
    for benchmark in Benchmark::ALL {
        let schemes = fig5_schemes(benchmark, &config);
        let mut cells = Vec::new();
        for (i, (_, scheme)) in schemes.iter().enumerate() {
            let cell = measure(benchmark, *scheme, &config, DEFAULT_SEEDS);
            sums[i] += cell.cycle_ratio;
            if i == 3 {
                max_proposed = max_proposed.max(cell.cycle_ratio);
            }
            cells.push(format!("{:.3}", cell.cycle_ratio));
        }
        print_row(benchmark.name(), &cells);
    }
    println!("{}", "-".repeat(24 + labels.len() * 15));
    let averages: Vec<String> = sums
        .iter()
        .map(|s| format!("{:.3}", s / Benchmark::ALL.len() as f64))
        .collect();
    print_row("Average", &averages);
    println!();
    println!(
        "proposed (optimal) worst-case time overhead: {:.1}% (constraint: {:.0}%)",
        100.0 * (max_proposed - 1.0),
        100.0 * config.constraints.cycle_overhead
    );
}
