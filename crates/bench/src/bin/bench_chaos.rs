//! Chaos-throughput measurement, emitting `BENCH_chaos.json` so
//! successive PRs have a comparable view of what fault injection costs:
//! spec-submission throughput through a [`chunkpoint_chaos::ChaosProxy`]
//! at 0 % / 10 % / 30 % fault rates, plus the shard layer's default
//! circuit-breaker cooldown schedule (the deterministic ladder a dying
//! backend walks before being declared dead).
//!
//! Every fault is drawn from a seeded [`FaultPlan`], so a given rate
//! injects the *same* refusals, truncations, and stalls on every run —
//! the numbers move only when the code does.
//!
//! Run with `cargo run --release -p chunkpoint_bench --bin bench_chaos`.
//! `--smoke` shrinks the submission counts for CI; `--json PATH`
//! overrides the output path.

use std::time::{Duration, Instant};

use chunkpoint_campaign::{
    pool::default_threads, CampaignArgs, CampaignSpec, JsonValue, SchemeSpec,
};
use chunkpoint_chaos::{ChaosProxy, FaultPlan};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_serve::server::{ServeConfig, Server};
use chunkpoint_shard::{exchange, Backoff};
use chunkpoint_workloads::Benchmark;

const TIMEOUT: Duration = Duration::from_secs(10);

/// A one-scenario spec, unique per `campaign_seed` (distinct content
/// hash), cheap enough that the runner pool drains submissions fast.
fn tiny_spec(campaign_seed: u64) -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    CampaignSpec::new(config, campaign_seed)
        .benchmarks(&[Benchmark::AdpcmEncode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .normalize(false)
        .golden_check(false)
}

/// Submits one spec through the proxy, retrying transport failures and
/// retryable statuses up to the strike budget. Returns the attempts the
/// submission took (1 = clean first try).
fn submit_with_strikes(addr: &str, body: &str, strikes: u64) -> u64 {
    let mut last = String::new();
    for attempt in 1..=strikes.max(1) {
        match exchange(addr, "POST", "/campaigns", Some(body), TIMEOUT) {
            Ok((status @ (200 | 202), _)) => {
                let _ = status;
                return attempt;
            }
            Ok((status @ (408 | 429 | 500..), response)) => last = format!("{status} {response}"),
            Ok((status, response)) => panic!("submit rejected outright: {status} {response}"),
            Err(error) => last = error.to_string(),
        }
    }
    panic!("submission outlived its strike budget ({strikes}): {last}");
}

fn main() {
    let args = CampaignArgs::parse_or_exit(1, 0xC4A0);
    let submit_n: u64 = if args.smoke { 8 } else { 40 };
    let rates = [0.0, 0.10, 0.30];

    let data_dir =
        std::env::temp_dir().join(format!("chunkpoint_bench_chaos_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: data_dir.clone(),
        max_jobs: 2,
        campaign_threads: args.threads,
        max_queued: 0, // unbounded: this bench measures the wire, not shedding
        trace_out: None,
    })
    .expect("bind server");
    let upstream = server.local_addr().expect("addr").to_string();
    let serving = std::thread::spawn(move || server.run());
    println!("bench_chaos: service on {upstream} ({submit_n} submissions per rate)");

    let mut rate_docs = Vec::new();
    for (index, &rate) in rates.iter().enumerate() {
        let plan = FaultPlan::new(args.seed ^ (index as u64 + 1), rate);
        // Sequential submissions: total connections are bounded by
        // n * strikes, so a fault-run scan over a generous window yields
        // a strike budget that deterministically outlasts any streak.
        let strikes = plan.max_fault_run(8_192) + 2;
        let mut proxy = ChaosProxy::start(&upstream, plan).expect("start proxy");
        let start = Instant::now();
        let mut attempts_total = 0u64;
        for i in 0..submit_n {
            let body = tiny_spec(args.seed + 1 + index as u64 * 10_000 + i)
                .to_json()
                .render();
            attempts_total += submit_with_strikes(&proxy.addr(), &body, strikes);
        }
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        let submit_rps = submit_n as f64 / elapsed;
        let (connections, faults) = (proxy.connections(), proxy.faults());
        proxy.shutdown();
        println!(
            "rate {:>4.0}%: {submit_rps:>7.1} submits/s  ({connections} connections, \
             {faults} faulted, {attempts_total} attempts, strike budget {strikes})",
            rate * 100.0
        );
        rate_docs.push(
            JsonValue::object()
                .field("fault_rate", rate)
                .field("submit_rps", submit_rps)
                .field("connections", connections)
                .field("faults_injected", faults)
                .field("attempts", attempts_total)
                .field("strike_budget", strikes),
        );
    }

    // The default shard-layer breaker ladder: cooldown after the 1st,
    // 2nd, ... consecutive open, deterministic from seed 0.
    let backoff = Backoff::new(Duration::from_millis(100), Duration::from_secs(2), 0);
    let cooldown_ms: Vec<JsonValue> = (0..8)
        .map(|step| JsonValue::from(backoff.delay(step).as_millis() as u64))
        .collect();
    println!(
        "breaker cooldown ladder (ms): {:?}",
        (0..8)
            .map(|s| backoff.delay(s).as_millis())
            .collect::<Vec<_>>()
    );

    let doc = JsonValue::object()
        .field("bench", "chaos_submit_throughput")
        .field("cpus_available", default_threads())
        .field("submissions_per_rate", submit_n)
        .field("rates", JsonValue::from(rate_docs))
        .field("breaker_cooldown_ms", JsonValue::from(cooldown_ms))
        .field(
            "note",
            "sequential unique-spec submissions through a seeded fault-injecting proxy; \
             strike budget = max_fault_run + 2 so every run completes deterministically; \
             breaker ladder = shard-layer default Backoff(100ms, 2s, seed 0)",
        );

    if args.smoke {
        println!("smoke run: chaos submission path exercised at every rate");
        if let Some(path) = &args.json {
            std::fs::write(path, doc.render() + "\n").expect("write json report");
            println!("wrote {path}");
        }
    } else {
        let path = args.json.as_deref().unwrap_or("BENCH_chaos.json");
        std::fs::write(path, doc.render() + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }

    let _ = exchange(&upstream, "POST", "/shutdown", None, TIMEOUT).expect("shutdown");
    serving.join().expect("server drained");
    let _ = std::fs::remove_dir_all(&data_dir);
}
