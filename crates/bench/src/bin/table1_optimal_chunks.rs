//! Regenerates **Table I**: the optimum protected-buffer (chunk) size per
//! benchmark under the paper's constraints (OV1 = 5 %, OV2 = 10 %,
//! λ = 1e-6 word/cycle).
//!
//! Paper values (words): ADPCM encode 11, ADPCM decode 11, G721 encode 16,
//! G721 decode 32, JPG decode 44. Absolute agreement is not expected (our
//! substrate models differ) — the *order of magnitude* (tens of words) and
//! the interior-optimum structure are the reproduction targets.

use chunkpoint_core::{optimize, SystemConfig};
use chunkpoint_workloads::Benchmark;

fn main() {
    let config = SystemConfig::paper(0);
    println!("Table I — Optimum chunk size obtained for different benchmarks");
    println!();
    println!(
        "{:<14} | {:>12} | {:>12} | {:>8} | {:>10} | {:>8} | {:>8}",
        "benchmark", "chunk (words)", "buffer (words)", "L1' t", "N_CH", "area %", "cycle %"
    );
    println!("{}", "-".repeat(90));
    for benchmark in Benchmark::ALL {
        let best = optimize(benchmark, &config)
            .expect("paper constraints admit a feasible design for every benchmark");
        println!(
            "{:<14} | {:>12} | {:>12} | {:>8} | {:>10} | {:>8.2} | {:>8.2}",
            benchmark.name(),
            best.chunk_words,
            best.cost.buffer_words,
            best.l1_prime_t,
            best.cost.n_checkpoints,
            100.0 * best.area_fraction,
            100.0 * best.cost.cycle_fraction(),
        );
    }
    println!();
    println!("paper (words): ADPCM enc 11 / ADPCM dec 11 / G721 enc 16 / G721 dec 32 / JPG dec 44");
}
