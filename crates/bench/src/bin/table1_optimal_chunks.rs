//! Regenerates **Table I**: the optimum protected-buffer (chunk) size per
//! benchmark under the paper's constraints (OV1 = 5 %, OV2 = 10 %,
//! λ = 1e-6 word/cycle).
//!
//! Paper values (words): ADPCM encode 11, ADPCM decode 11, G721 encode 16,
//! G721 decode 32, JPG decode 44. Absolute agreement is not expected (our
//! substrate models differ) — the *order of magnitude* (tens of words) and
//! the interior-optimum structure are the reproduction targets.
//!
//! The optimizer is deterministic (no Monte Carlo), so only the shared
//! `--json` flag is meaningful here.

use chunkpoint_bench::report;
use chunkpoint_campaign::{write_json_report, CampaignArgs, JsonValue};
use chunkpoint_core::{optimize, SystemConfig};
use chunkpoint_workloads::Benchmark;

fn main() {
    let args = CampaignArgs::parse_or_exit(1, 0);
    let config = SystemConfig::paper(args.seed);
    println!("Table I — Optimum chunk size obtained for different benchmarks");
    println!();
    let table = report::Table::new(14, 12);
    table.header(
        "benchmark",
        &[
            "chunk (words)",
            "buffer (words)",
            "L1' t",
            "N_CH",
            "area %",
            "cycle %",
        ]
        .map(str::to_owned)
        .to_vec(),
    );
    let mut rows = Vec::new();
    for benchmark in Benchmark::ALL {
        let best = optimize(benchmark, &config)
            .expect("paper constraints admit a feasible design for every benchmark");
        table.row(
            benchmark.name(),
            &[
                best.chunk_words.to_string(),
                best.cost.buffer_words.to_string(),
                best.l1_prime_t.to_string(),
                best.cost.n_checkpoints.to_string(),
                format!("{:.2}", 100.0 * best.area_fraction),
                format!("{:.2}", 100.0 * best.cost.cycle_fraction()),
            ],
        );
        rows.push(
            JsonValue::object()
                .field("benchmark", benchmark.name())
                .field("chunk_words", u64::from(best.chunk_words))
                .field("buffer_words", u64::from(best.cost.buffer_words))
                .field("l1_prime_t", u64::from(best.l1_prime_t))
                .field("n_checkpoints", best.cost.n_checkpoints)
                .field("area_fraction", best.area_fraction)
                .field("cycle_fraction", best.cost.cycle_fraction()),
        );
    }
    println!();
    println!("paper (words): ADPCM enc 11 / ADPCM dec 11 / G721 enc 16 / G721 dec 32 / JPG dec 44");
    write_json_report(&args, &JsonValue::Array(rows));
}
