//! Criterion micro-benchmarks for the mitigation machinery itself: the
//! optimizer (one Table I entry), the feasibility sweep (Fig. 4), and one
//! full simulated run per scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chunkpoint_core::{feasible_region, golden, optimize, run, MitigationScheme, SystemConfig};
use chunkpoint_workloads::Benchmark;

fn bench_optimizer(c: &mut Criterion) {
    let config = SystemConfig::paper(0);
    let mut group = c.benchmark_group("optimizer");
    group.sample_size(10);
    group.bench_function("optimize_adpcm_decode", |b| {
        b.iter(|| optimize(black_box(Benchmark::AdpcmDecode), &config))
    });
    group.bench_function("feasible_region_fig4", |b| {
        b.iter(|| feasible_region(black_box(&config)))
    });
    group.finish();
}

fn bench_runs(c: &mut Criterion) {
    let mut config = SystemConfig::paper(1);
    config.scale = 0.5;
    let mut group = c.benchmark_group("simulated_run_adpcm_decode");
    group.sample_size(10);
    group.bench_function("golden", |b| {
        b.iter(|| golden(black_box(Benchmark::AdpcmDecode), &config))
    });
    for (label, scheme) in [
        ("default", MitigationScheme::Default),
        ("sw_restart", MitigationScheme::SwRestart),
        ("hw_ecc_t8", MitigationScheme::hw_baseline()),
        (
            "hybrid",
            MitigationScheme::Hybrid {
                chunk_words: 16,
                l1_prime_t: 8,
            },
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| run(black_box(Benchmark::AdpcmDecode), scheme, &config))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_optimizer, bench_runs
}
criterion_main!(benches);
