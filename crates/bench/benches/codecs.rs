//! Criterion micro-benchmarks for the substrate kernels: ECC codecs (the
//! hardware blocks whose latency models feed `CodeOverhead`) and the media
//! codecs (the workload compute the cycle estimates represent).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use chunkpoint_ecc::{build_scheme, BchCode, EccKind, EccScheme, SecdedCode};
use chunkpoint_workloads::{adpcm, g726, jpeg, speech_pcm, test_image};

fn bench_ecc_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecc_encode");
    for kind in [
        EccKind::Parity,
        EccKind::InterleavedParity { ways: 6 },
        EccKind::Secded,
        EccKind::Bch { t: 4 },
        EccKind::Bch { t: 8 },
        EccKind::Bch { t: 16 },
    ] {
        let scheme = build_scheme(kind).expect("valid kind");
        group.bench_function(kind.to_string(), |b| {
            b.iter(|| scheme.encode(black_box(0xDEAD_BEEF)))
        });
    }
    // Retained bit-serial references, benched side-by-side so the
    // table-driven speedup is visible in one report.
    let secded = SecdedCode::new();
    group.bench_function("secded-reference", |b| {
        b.iter(|| secded.encode_reference(black_box(0xDEAD_BEEF)))
    });
    for t in [4usize, 8, 16] {
        let code = BchCode::for_word(t).expect("valid strength");
        group.bench_function(format!("bch-t{t}-reference"), |b| {
            b.iter(|| code.encode_reference(black_box(0xDEAD_BEEF)))
        });
    }
    group.finish();
}

fn bench_ecc_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecc_decode_with_errors");
    for (kind, flips) in [
        (EccKind::Secded, 1usize),
        (EccKind::Bch { t: 4 }, 4),
        (EccKind::Bch { t: 8 }, 8),
        (EccKind::Bch { t: 16 }, 16),
    ] {
        let scheme = build_scheme(kind).expect("valid kind");
        let clean = scheme.encode(0x1234_5678);
        let mut corrupted = clean;
        let len = corrupted.len();
        for e in 0..flips {
            corrupted.flip((e * len / flips + e) % len);
        }
        group.bench_function(format!("{kind}-{flips}err"), |b| {
            b.iter(|| scheme.decode(black_box(&corrupted)))
        });
        if let EccKind::Bch { t } = kind {
            let code = BchCode::for_word(t as usize).expect("valid strength");
            group.bench_function(format!("{kind}-{flips}err-reference"), |b| {
                b.iter(|| code.decode_reference(black_box(&corrupted)))
            });
        }
    }
    group.finish();
}

fn bench_ecc_decode_clean(c: &mut Criterion) {
    // The zero-syndrome fast exit: clean reads are the common case in
    // every fault-rate regime the paper studies.
    let mut group = c.benchmark_group("ecc_decode_clean");
    for t in [4usize, 8, 16] {
        let code = BchCode::for_word(t).expect("valid strength");
        let clean = code.encode(0x1234_5678);
        group.bench_function(format!("bch-t{t}"), |b| {
            b.iter(|| code.decode(black_box(&clean)))
        });
        group.bench_function(format!("bch-t{t}-reference"), |b| {
            b.iter(|| code.decode_reference(black_box(&clean)))
        });
    }
    group.finish();
}

fn bench_audio_codecs(c: &mut Criterion) {
    let pcm = speech_pcm(1024, 7);
    let adpcm_codes = adpcm::encode(&pcm);
    let g726_codes = g726::encode(&pcm);
    let mut group = c.benchmark_group("audio_codecs_1024_samples");
    group.bench_function("adpcm_encode", |b| {
        b.iter(|| adpcm::encode(black_box(&pcm)))
    });
    group.bench_function("adpcm_decode", |b| {
        b.iter(|| adpcm::decode(black_box(&adpcm_codes), 1024))
    });
    group.bench_function("g726_encode", |b| b.iter(|| g726::encode(black_box(&pcm))));
    group.bench_function("g726_decode", |b| {
        b.iter(|| g726::decode(black_box(&g726_codes), 1024))
    });
    group.finish();
}

fn bench_jpeg(c: &mut Criterion) {
    let img = test_image(32, 32, 3);
    let bytes = jpeg::encode(&img, 32, 32, 80);
    let mut group = c.benchmark_group("jpeg_32x32");
    group.bench_function("encode", |b| {
        b.iter_batched(
            || img.clone(),
            |img| jpeg::encode(&img, 32, 32, 80),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("decode", |b| b.iter(|| jpeg::decode(black_box(&bytes))));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ecc_encode, bench_ecc_decode, bench_ecc_decode_clean, bench_audio_codecs, bench_jpeg
}
criterion_main!(benches);
