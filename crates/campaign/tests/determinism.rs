//! The engine's core guarantee: a campaign's per-scenario results are
//! **bit-identical at any thread count**, because every random stream is
//! derived from `(campaign_seed, scenario_index)` before any worker
//! starts.

use chunkpoint_campaign::{run_campaign, scenario_seed, Axis, CampaignSpec, SchemeSpec};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_workloads::Benchmark;

fn small_grid() -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    CampaignSpec::new(config, 0xD0_0D)
        .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::G721Decode])
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .scheme(
            "Proposed",
            SchemeSpec::Fixed(MitigationScheme::Hybrid {
                chunk_words: 16,
                l1_prime_t: 8,
            }),
        )
        .error_rates(&[1e-6, 1e-5])
        .replicates(3)
}

#[test]
fn thread_count_never_changes_results() {
    let spec = small_grid();
    let serial = run_campaign(&spec, 1);
    let parallel = run_campaign(&spec, 4);
    assert_eq!(serial.results.len(), 2 * 2 * 2 * 3);
    assert_eq!(serial.results.len(), parallel.results.len());
    for (a, b) in serial.results.iter().zip(&parallel.results) {
        assert_eq!(a.scenario, b.scenario, "grid enumeration diverged");
        // f64 compared at the bit level: "close" is not reproducible.
        assert_eq!(
            a.energy_pj.to_bits(),
            b.energy_pj.to_bits(),
            "energy diverged at scenario {}",
            a.scenario.index
        );
        assert_eq!(
            a.cycles, b.cycles,
            "cycles diverged at scenario {}",
            a.scenario.index
        );
        assert_eq!(
            a.rollbacks, b.rollbacks,
            "rollbacks diverged at {}",
            a.scenario.index
        );
        assert_eq!(
            a.restarts, b.restarts,
            "restarts diverged at {}",
            a.scenario.index
        );
        assert_eq!(a.checkpoints, b.checkpoints);
        assert_eq!(a.errors_detected, b.errors_detected);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.correct, b.correct);
        assert_eq!(
            a.energy_ratio.map(f64::to_bits),
            b.energy_ratio.map(f64::to_bits),
            "normalized energy diverged at {}",
            a.scenario.index
        );
        assert_eq!(
            a.cycle_ratio.map(f64::to_bits),
            b.cycle_ratio.map(f64::to_bits)
        );
    }
    // Full-result equality too (PartialEq covers the scenario metadata).
    assert_eq!(serial.results, parallel.results);
}

#[test]
fn aggregates_are_thread_count_independent() {
    let spec = small_grid();
    let a = run_campaign(&spec, 1);
    let b = run_campaign(&spec, 3);
    let axes = [Axis::Benchmark, Axis::Scheme, Axis::ErrorRate];
    let agg_a = a.aggregate(&axes);
    let agg_b = b.aggregate(&axes);
    assert_eq!(agg_a.len(), agg_b.len());
    for ((key_a, stats_a), (key_b, stats_b)) in agg_a.groups().zip(agg_b.groups()) {
        assert_eq!(key_a, key_b);
        assert_eq!(stats_a.n, stats_b.n);
        assert_eq!(
            stats_a.energy_pj.mean().to_bits(),
            stats_b.energy_pj.mean().to_bits()
        );
        assert_eq!(
            stats_a.energy_pj.stddev().to_bits(),
            stats_b.energy_pj.stddev().to_bits()
        );
        assert_eq!(
            stats_a.cycles.mean().to_bits(),
            stats_b.cycles.mean().to_bits()
        );
        assert_eq!(stats_a.correct, stats_b.correct);
    }
    // And the rendered JSON (minus timing fields) must match verbatim.
    let strip_timing = |json: String| -> String {
        json.split(",\"group_by\"")
            .nth(1)
            .map(str::to_owned)
            .unwrap_or(json)
    };
    assert_eq!(
        strip_timing(a.to_json(&axes).render()),
        strip_timing(b.to_json(&axes).render())
    );
}

#[test]
fn faulted_scenarios_actually_differ_across_seeds() {
    // Guard against a degenerate pass: if every replicate produced the
    // same numbers, the bit-identity assertions above would be vacuous.
    let result = run_campaign(&small_grid(), 0);
    // Within at least one (benchmark, scheme, rate) cell the replicates
    // must diverge. (At the low rate many replicates legitimately see no
    // strike at all and tie bit-for-bit; the λ = 1e-5 cells cannot.)
    let mut cells: std::collections::BTreeMap<String, std::collections::BTreeSet<u64>> =
        std::collections::BTreeMap::new();
    for r in &result.results {
        let key = format!(
            "{}/{}/{:e}",
            r.scenario.benchmark.name(),
            r.scenario.scheme_label,
            r.scenario.error_rate
        );
        cells.entry(key).or_default().insert(r.energy_pj.to_bits());
    }
    assert!(
        cells.values().any(|energies| energies.len() > 1),
        "all replicates identical in every cell — fault seeds are not being applied"
    );
}

#[test]
fn seed_derivation_is_position_stable() {
    // Scenario seeds depend only on (campaign_seed, index): the same
    // grid re-enumerated always carries the same seeds, and they match
    // the documented SplitMix64 stream.
    let scenarios = small_grid().scenarios();
    for s in &scenarios {
        assert_eq!(s.seed, scenario_seed(0xD0_0D, s.index as u64));
    }
}
