//! Property tests pitting [`JsonValue::parse`] against the existing
//! writer: for *any* value tree, rendering then parsing must reproduce
//! the tree (up to the documented numeric canonicalization), and the
//! rendering must be a fixed point — `render(parse(render(v))) ==
//! render(v)`.

use chunkpoint_campaign::JsonValue;
use proptest::prelude::*;

/// SplitMix64 step: the deterministic randomness source for tree shapes.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A random string exercising the writer's escape table: quotes,
/// backslashes, control characters, multi-byte UTF-8, astral plane.
fn arbitrary_string(state: &mut u64) -> String {
    const ALPHABET: &[char] = &[
        'a',
        'Z',
        '0',
        ' ',
        '"',
        '\\',
        '/',
        '\n',
        '\r',
        '\t',
        '\u{0}',
        '\u{1}',
        '\u{1f}',
        'é',
        'π',
        '\u{2028}',
        '😀',
        '\u{10FFFF}',
    ];
    let len = (next(state) % 12) as usize;
    (0..len)
        .map(|_| ALPHABET[(next(state) as usize) % ALPHABET.len()])
        .collect()
}

/// A random finite-or-not f64 drawn straight from the bit space, so the
/// writer sees subnormals, extremes, negative zero, NaN and infinities.
fn arbitrary_float(state: &mut u64) -> f64 {
    f64::from_bits(next(state))
}

/// A random value tree of bounded depth over every [`JsonValue`] variant.
fn arbitrary_json(state: &mut u64, depth: u32) -> JsonValue {
    let leaf_only = depth == 0;
    match next(state) % if leaf_only { 6 } else { 8 } {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(next(state) & 1 == 0),
        2 => JsonValue::Int(next(state) as i64),
        3 => JsonValue::Uint(next(state)),
        4 => JsonValue::Float(arbitrary_float(state)),
        5 => JsonValue::Str(arbitrary_string(state)),
        6 => {
            let len = (next(state) % 4) as usize;
            JsonValue::Array((0..len).map(|_| arbitrary_json(state, depth - 1)).collect())
        }
        _ => {
            let len = (next(state) % 4) as usize;
            JsonValue::Object(
                (0..len)
                    .map(|_| (arbitrary_string(state), arbitrary_json(state, depth - 1)))
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// `parse` inverts `render` for arbitrary trees, up to the documented
    /// canonical numeric form.
    #[test]
    fn parse_inverts_render(seed in any::<u64>()) {
        let mut state = seed;
        let value = arbitrary_json(&mut state, 4);
        let rendered = value.render();
        let parsed = JsonValue::parse(&rendered)
            .unwrap_or_else(|e| panic!("writer produced unparseable JSON {rendered:?}: {e}"));
        prop_assert_eq!(&parsed, &value.clone().canonicalize());
        // One round trip reaches the rendering fixed point.
        prop_assert_eq!(parsed.render(), rendered);
    }

    /// Floats survive the trip bit-for-bit (the report/journal invariant
    /// the resumable campaign service depends on).
    #[test]
    fn finite_floats_round_trip_bitwise(bits in any::<u64>()) {
        let x = f64::from_bits(bits);
        prop_assume!(x.is_finite());
        let rendered = JsonValue::Float(x).render();
        match JsonValue::parse(&rendered).expect("float renders as valid JSON") {
            JsonValue::Float(y) => prop_assert_eq!(y.to_bits(), x.to_bits()),
            other => prop_assert!(false, "float reparsed as {:?}", other),
        }
    }

    /// Whitespace-insensitivity: pretty-ish spacing parses to the same tree.
    #[test]
    fn parser_ignores_inter_token_whitespace(seed in any::<u64>()) {
        let mut state = seed;
        let value = arbitrary_json(&mut state, 3);
        let spaced = value
            .render()
            .replace('{', "{ ")
            .replace(',', " ,\n\t")
            .replace(']', " ]");
        prop_assert_eq!(
            JsonValue::parse(&spaced).expect("spaced document parses"),
            value.canonicalize()
        );
    }
}
