//! Shared command-line flags for campaign-driven experiment binaries:
//! `--threads N --seeds N --seed S --json PATH` (plus `--help`).
//!
//! The experiment binaries are plain `fn main()`s with no argument-parser
//! dependency; this module gives them one consistent flag surface so
//! every table/figure regenerator can be parallelised, re-seeded and
//! exported without per-bin parsing code.

use std::fmt::Write as _;

/// Parsed campaign flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignArgs {
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Seed replicates per grid cell.
    pub seeds: u64,
    /// Campaign seed (root of the per-scenario seed derivation).
    pub seed: u64,
    /// Write the machine-readable campaign report here.
    pub json: Option<String>,
    /// Run the reduced smoke grid (CI uses this to exercise the parallel
    /// path in seconds rather than minutes).
    pub smoke: bool,
}

impl CampaignArgs {
    /// Defaults for a binary: `default_seeds` replicates, campaign seed
    /// `default_seed`, all cores, no JSON.
    #[must_use]
    pub fn defaults(default_seeds: u64, default_seed: u64) -> Self {
        Self {
            threads: 0,
            seeds: default_seeds,
            seed: default_seed,
            json: None,
            smoke: false,
        }
    }

    /// Parses flags from an explicit argument list (testable core).
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags or malformed values.
    pub fn parse_from<I>(mut self, args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut args = args.into_iter();
        while let Some(flag) = args.next() {
            let mut value_of = |flag: &str| {
                args.next()
                    .ok_or_else(|| format!("{flag} requires a value\n\n{USAGE}"))
            };
            match flag.as_str() {
                "--threads" => {
                    self.threads = value_of("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}\n\n{USAGE}"))?;
                }
                "--seeds" => {
                    let seeds: u64 = value_of("--seeds")?
                        .parse()
                        .map_err(|e| format!("--seeds: {e}\n\n{USAGE}"))?;
                    if seeds == 0 {
                        return Err(format!("--seeds must be at least 1\n\n{USAGE}"));
                    }
                    self.seeds = seeds;
                }
                "--seed" => {
                    self.seed = value_of("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}\n\n{USAGE}"))?;
                }
                "--json" => self.json = Some(value_of("--json")?),
                "--smoke" => self.smoke = true,
                "--help" | "-h" => return Err(USAGE.to_owned()),
                other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
            }
        }
        Ok(self)
    }

    /// Parses `std::env::args()`, printing usage and exiting on error —
    /// the one-liner for binaries.
    #[must_use]
    pub fn parse_or_exit(default_seeds: u64, default_seed: u64) -> Self {
        match Self::defaults(default_seeds, default_seed).parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(if message == USAGE { 0 } else { 2 });
            }
        }
    }

    /// One-line run description for report headers.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut s = String::new();
        let threads = if self.threads == 0 {
            crate::pool::default_threads()
        } else {
            self.threads
        };
        let _ = write!(
            s,
            "{} seeds/cell, {} threads, campaign seed {:#x}",
            self.seeds, threads, self.seed
        );
        if let Some(path) = &self.json {
            let _ = write!(s, ", json -> {path}");
        }
        s
    }
}

/// Usage text shared by every campaign binary.
pub const USAGE: &str = "campaign flags:
  --threads N   worker threads (default: all cores; results are
                bit-identical at any thread count)
  --seeds N     seed replicates per grid cell
  --seed S      campaign seed (u64; scenario seeds derive from it)
  --json PATH   also write the machine-readable campaign report to PATH
  --smoke       reduced grid for CI smoke runs
  --help        this text";

/// Writes `json` to `path` when the flag was given, reporting the write
/// on stdout.
///
/// # Panics
///
/// Panics if the file cannot be written (experiment binaries treat an
/// unwritable report path as fatal).
pub fn write_json_report(args: &CampaignArgs, json: &crate::json::JsonValue) {
    if let Some(path) = &args.json {
        std::fs::write(path, json.render() + "\n")
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CampaignArgs, String> {
        CampaignArgs::defaults(8, 42).parse_from(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults_pass_through() {
        let args = parse(&[]).unwrap();
        assert_eq!(args, CampaignArgs::defaults(8, 42));
        assert_eq!(args.threads, 0);
        assert_eq!(args.seeds, 8);
        assert_eq!(args.seed, 42);
    }

    #[test]
    fn parses_all_flags() {
        let args = parse(&[
            "--threads",
            "4",
            "--seeds",
            "2",
            "--seed",
            "7",
            "--json",
            "out.json",
            "--smoke",
        ])
        .unwrap();
        assert_eq!(args.threads, 4);
        assert_eq!(args.seeds, 2);
        assert_eq!(args.seed, 7);
        assert_eq!(args.json.as_deref(), Some("out.json"));
        assert!(args.smoke);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--seeds", "0"]).is_err());
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert_eq!(parse(&["--help"]).unwrap_err(), USAGE);
    }
}
