//! The engine-side telemetry seam.
//!
//! `chunkpoint_campaign` sits at the bottom of the workspace and must
//! not depend on the observability crate, so instead of recording
//! metrics itself it exposes one narrow trait — [`TelemetrySink`] — and
//! a process-wide installation point. `chunkpoint_telemetry` provides
//! the adapter that forwards these callbacks into the real metrics
//! registry; a process that never installs a sink pays one relaxed
//! atomic load per callback.
//!
//! The seam is strictly out-of-band: nothing a sink observes can flow
//! back into scenario execution, so installing one cannot change
//! campaign results (the repo's byte-identical determinism invariant).

use std::sync::OnceLock;

/// Observer interface for engine-internal events the service layers
/// want to meter: per-scenario wall time and the pool's queue depth.
pub trait TelemetrySink: Send + Sync {
    /// A scenario finished; `wall_seconds` is its measured wall-clock
    /// execution time on the worker that ran it.
    fn scenario_completed(&self, wall_seconds: f64);

    /// The pool's undelivered-job count changed (set at run start,
    /// decremented per delivery, zeroed when the run returns).
    fn queue_depth(&self, depth: i64);

    /// A timeline scenario's `expect` block was evaluated against a
    /// finished run. Default is a no-op so pre-existing sinks keep
    /// compiling unchanged.
    fn expect_evaluated(&self, _passed: bool) {}
}

static SINK: OnceLock<Box<dyn TelemetrySink>> = OnceLock::new();

/// Installs the process-wide sink. The first installation wins; later
/// calls return `false` and drop their argument — idempotent enough for
/// every entry point (server startup, test harnesses) to call blindly.
pub fn install_sink(sink: Box<dyn TelemetrySink>) -> bool {
    SINK.set(sink).is_ok()
}

/// The installed sink, if any.
#[must_use]
pub fn sink() -> Option<&'static dyn TelemetrySink> {
    SINK.get().map(Box::as_ref)
}

/// Forwards a completed scenario's wall time to the sink, if installed.
pub(crate) fn scenario_completed(wall_seconds: f64) {
    if let Some(sink) = sink() {
        sink.scenario_completed(wall_seconds);
    }
}

/// Forwards a queue-depth change to the sink, if installed.
pub(crate) fn queue_depth(depth: i64) {
    if let Some(sink) = sink() {
        sink.queue_depth(depth);
    }
}

/// Forwards an `expect`-block verdict to the sink, if installed.
pub(crate) fn expect_evaluated(passed: bool) {
    if let Some(sink) = sink() {
        sink.expect_evaluated(passed);
    }
}
