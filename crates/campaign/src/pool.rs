//! A minimal work-stealing thread pool on `std::thread` + channels.
//!
//! The build environment has no crates.io access, so this is a
//! self-contained pool rather than rayon: the job list is dealt
//! round-robin into per-worker deques up front; each worker drains its
//! own deque from the front and, when empty, steals from the *back* of a
//! sibling's deque (classic Arora–Blumofe–Plumbeck discipline, which
//! keeps owner and thief on opposite ends). Results travel back over an
//! `mpsc` channel tagged with their job index, so completion order is
//! irrelevant — the caller gets results in job order regardless of
//! scheduling.
//!
//! Because every job in a campaign is a pure function of its scenario
//! (seeds are pre-derived, see [`crate::seed`]), stealing affects only
//! wall-clock time, never results — the engine's core determinism
//! argument needs nothing from this module beyond "every job runs
//! exactly once".

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

/// Number of workers to use when the caller passes `threads == 0`:
/// everything the OS will give us.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `job` over `0..jobs` on `threads` workers and returns the results
/// in job order. `threads == 0` means [`default_threads`]; the pool never
/// spawns more workers than jobs. With one worker the pool degenerates to
/// a serial loop on a spawned thread — same code path, no special case.
///
/// # Panics
///
/// Propagates panics from `job` (the scope joins all workers first).
pub fn run_jobs<R, F>(jobs: usize, threads: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    }
    .min(jobs);
    // Deal the job indices round-robin so every worker starts with a
    // near-equal share and stealing only handles imbalance.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for index in 0..jobs {
        queues[index % threads]
            .lock()
            .expect("queue poisoned")
            .push_back(index);
    }
    let (sender, receiver) = mpsc::channel::<(usize, R)>();
    let mut results: Vec<Option<R>> = (0..jobs).map(|_| None).collect();
    std::thread::scope(|scope| {
        for me in 0..threads {
            let sender = sender.clone();
            let queues = &queues;
            let job = &job;
            scope.spawn(move || {
                loop {
                    // Own queue first (front) …
                    let next = queues[me].lock().expect("queue poisoned").pop_front();
                    // … then steal from the back of a sibling, trying
                    // every victim: a single victim emptying between a
                    // scan and the pop must not strand work elsewhere.
                    let next = next.or_else(|| {
                        (0..queues.len())
                            .filter(|&victim| victim != me)
                            .find_map(|victim| {
                                queues[victim].lock().expect("queue poisoned").pop_back()
                            })
                    });
                    match next {
                        // Every queue observed empty at pop time: since
                        // jobs are never re-enqueued, none remain
                        // unclaimed and this worker is done.
                        None => break,
                        Some(index) => {
                            if sender.send((index, job(index))).is_err() {
                                break; // receiver gone: caller is unwinding
                            }
                        }
                    }
                }
            });
        }
        drop(sender);
        for (index, result) in receiver {
            results[index] = Some(result);
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("worker completed every dealt job"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn returns_results_in_job_order() {
        for threads in [1, 2, 4, 8] {
            let out = run_jobs(100, threads, |i| i * i);
            assert_eq!(
                out,
                (0..100).map(|i| i * i).collect::<Vec<_>>(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let _ = run_jobs(64, 4, |i| counters[i].fetch_add(1, Ordering::SeqCst));
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "job {i}");
        }
    }

    #[test]
    fn imbalanced_jobs_get_stolen() {
        // Job 0 is slow; with 2 workers the 63 fast jobs must not starve
        // behind it. We can't assert timing, but we can assert the pool
        // completes with wildly uneven job costs.
        let out = run_jobs(64, 2, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            i
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn zero_jobs_and_zero_threads() {
        assert!(run_jobs(0, 4, |i| i).is_empty());
        assert_eq!(run_jobs(3, 0, |i| i), vec![0, 1, 2]);
    }
}
