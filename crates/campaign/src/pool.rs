//! A minimal work-stealing thread pool on `std::thread` + channels.
//!
//! The build environment has no crates.io access, so this is a
//! self-contained pool rather than rayon: the job list is dealt
//! round-robin into per-worker deques up front; each worker drains its
//! own deque from the front and, when empty, steals from the *back* of a
//! sibling's deque (classic Arora–Blumofe–Plumbeck discipline, which
//! keeps owner and thief on opposite ends). Results travel back over an
//! `mpsc` channel tagged with their job index, so completion order is
//! irrelevant — the caller gets results in job order regardless of
//! scheduling.
//!
//! Because every job in a campaign is a pure function of its scenario
//! (seeds are pre-derived, see [`crate::seed`]), stealing affects only
//! wall-clock time, never results — the engine's core determinism
//! argument needs nothing from this module beyond "every job runs
//! exactly once".

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Number of workers to use when the caller passes `threads == 0`:
/// everything the OS will give us.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// A cooperative cancellation token shared between a pool run and its
/// controller.
///
/// Cancellation is *cooperative*: workers check the token between jobs,
/// so the job currently executing runs to completion (its result is
/// still delivered) and everything still queued is abandoned. The run
/// always joins all of its workers before returning — cancellation can
/// never orphan a thread.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// Runs `job` over the given job indices on `threads` workers, delivering
/// each `(index, result)` to `sink` in **completion order** on the
/// calling thread. This is the controllable core under [`run_jobs`]:
///
/// * `indices` need not be dense or sorted — a resumed campaign passes
///   only the scenarios its journal is missing;
/// * `cancel` stops the run between jobs (see [`CancelToken`]); results
///   already computed still reach `sink`;
/// * `sink` runs on the caller's thread, so it may hold non-`Sync` state
///   (an open journal file, a progress counter).
///
/// Returns the number of jobs that completed and were delivered.
///
/// # Panics
///
/// Propagates panics from `job` (the scope joins all workers first).
pub fn run_jobs_ctl<R, F, S>(
    indices: &[usize],
    threads: usize,
    cancel: &CancelToken,
    job: F,
    mut sink: S,
) -> usize
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    S: FnMut(usize, R),
{
    if indices.is_empty() || cancel.is_cancelled() {
        return 0;
    }
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    }
    .min(indices.len());
    // Deal the job indices round-robin so every worker starts with a
    // near-equal share and stealing only handles imbalance.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (position, &index) in indices.iter().enumerate() {
        queues[position % threads]
            .lock()
            .expect("queue poisoned")
            .push_back(index);
    }
    let (sender, receiver) = mpsc::channel::<(usize, R)>();
    let mut delivered = 0;
    // Out-of-band depth reporting: set to the dealt total up front,
    // decremented per delivery, zeroed on return (cancelled runs abandon
    // jobs without delivering them, so the final state is always 0).
    crate::telemetry::queue_depth(indices.len() as i64);
    std::thread::scope(|scope| {
        for me in 0..threads {
            let sender = sender.clone();
            let queues = &queues;
            let job = &job;
            let cancel = &*cancel;
            scope.spawn(move || {
                loop {
                    // Between jobs is the cancellation point: the grid is
                    // abandoned without interrupting a running scenario.
                    if cancel.is_cancelled() {
                        break;
                    }
                    // Own queue first (front) …
                    let next = queues[me].lock().expect("queue poisoned").pop_front();
                    // … then steal from the back of a sibling, trying
                    // every victim: a single victim emptying between a
                    // scan and the pop must not strand work elsewhere.
                    let next = next.or_else(|| {
                        (0..queues.len())
                            .filter(|&victim| victim != me)
                            .find_map(|victim| {
                                queues[victim].lock().expect("queue poisoned").pop_back()
                            })
                    });
                    match next {
                        // Every queue observed empty at pop time: since
                        // jobs are never re-enqueued, none remain
                        // unclaimed and this worker is done.
                        None => break,
                        Some(index) => {
                            if sender.send((index, job(index))).is_err() {
                                break; // receiver gone: caller is unwinding
                            }
                        }
                    }
                }
            });
        }
        drop(sender);
        for (index, result) in receiver {
            sink(index, result);
            delivered += 1;
            crate::telemetry::queue_depth(indices.len() as i64 - delivered as i64);
        }
    });
    crate::telemetry::queue_depth(0);
    delivered
}

/// Runs `job` over `0..jobs` on `threads` workers and returns the results
/// in job order. `threads == 0` means [`default_threads`]; the pool never
/// spawns more workers than jobs. With one worker the pool degenerates to
/// a serial loop on a spawned thread — same code path, no special case.
///
/// # Panics
///
/// Propagates panics from `job` (the scope joins all workers first).
pub fn run_jobs<R, F>(jobs: usize, threads: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..jobs).collect();
    let mut results: Vec<Option<R>> = (0..jobs).map(|_| None).collect();
    run_jobs_ctl(&indices, threads, &CancelToken::new(), job, |index, r| {
        results[index] = Some(r);
    });
    results
        .into_iter()
        .map(|slot| slot.expect("worker completed every dealt job"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn returns_results_in_job_order() {
        for threads in [1, 2, 4, 8] {
            let out = run_jobs(100, threads, |i| i * i);
            assert_eq!(
                out,
                (0..100).map(|i| i * i).collect::<Vec<_>>(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let _ = run_jobs(64, 4, |i| counters[i].fetch_add(1, Ordering::SeqCst));
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "job {i}");
        }
    }

    #[test]
    fn imbalanced_jobs_get_stolen() {
        // Job 0 is slow; with 2 workers the 63 fast jobs must not starve
        // behind it. We can't assert timing, but we can assert the pool
        // completes with wildly uneven job costs.
        let out = run_jobs(64, 2, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            i
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn zero_jobs_and_zero_threads() {
        assert!(run_jobs(0, 4, |i| i).is_empty());
        assert_eq!(run_jobs(3, 0, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn sparse_indices_run_and_deliver() {
        let indices = [3usize, 17, 4, 99];
        let mut seen = Vec::new();
        let n = run_jobs_ctl(
            &indices,
            2,
            &CancelToken::new(),
            |i| i * 10,
            |i, r| seen.push((i, r)),
        );
        assert_eq!(n, 4);
        seen.sort_unstable();
        assert_eq!(seen, vec![(3, 30), (4, 40), (17, 170), (99, 990)]);
    }

    #[test]
    fn cancellation_joins_all_workers_without_deadlock() {
        // 64 slow jobs on 4 workers; cancel from the sink after the first
        // result. The run must (a) return — i.e. every worker joined, no
        // orphaned thread can outlive the scope — (b) deliver far fewer
        // than 64 results, and (c) do so in a bounded amount of time,
        // which a deadlocked join would fail.
        let started = AtomicUsize::new(0);
        let token = CancelToken::new();
        let t0 = std::time::Instant::now();
        let delivered = run_jobs_ctl(
            &(0..64).collect::<Vec<_>>(),
            4,
            &token,
            |i| {
                started.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(10));
                i
            },
            |_, _| token.cancel(),
        );
        assert!(token.is_cancelled());
        // In-flight jobs (at most one per worker) finish; the rest of the
        // grid is abandoned.
        assert!(delivered >= 1, "the triggering result was delivered");
        assert!(delivered <= 8, "cancelled run completed {delivered} jobs");
        assert!(started.load(Ordering::SeqCst) <= 8);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "cancelled run failed to join promptly"
        );
    }

    #[test]
    fn pre_cancelled_run_does_nothing() {
        let token = CancelToken::new();
        token.cancel();
        let delivered = run_jobs_ctl(&[0, 1, 2], 2, &token, |i| i, |_, _| {});
        assert_eq!(delivered, 0);
    }
}
