//! A minimal JSON document builder.
//!
//! The build environment has no crates.io access (so no serde); campaign
//! reports need only a small, correct subset of JSON: objects, arrays,
//! strings with escaping, integers, floats and booleans. Values render
//! via [`JsonValue::render`] with deterministic formatting — floats use
//! Rust's shortest-roundtrip `{}` so a re-parsed value is bit-identical,
//! and non-finite floats render as `null` (JSON has no NaN/Infinity).

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; f64 would lose precision above 2⁵³).
    Int(i64),
    /// An unsigned integer (cycle counts can exceed i64 in principle).
    Uint(u64),
    /// A finite float; non-finite values render as `null`.
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys (deterministic output).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object builder.
    #[must_use]
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// Adds/overwrites nothing — appends a field (builder style).
    ///
    /// # Panics
    ///
    /// Panics when called on a non-object value.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        match &mut self {
            JsonValue::Object(fields) => fields.push((key.to_owned(), value.into())),
            _ => panic!("field() on a non-object JsonValue"),
        }
        self
    }

    /// Renders the value as compact JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => out.push_str(&i.to_string()),
            JsonValue::Uint(u) => out.push_str(&u.to_string()),
            JsonValue::Float(x) => {
                if x.is_finite() {
                    // `{}` prints the shortest string that round-trips.
                    let s = format!("{x}");
                    out.push_str(&s);
                    // Bare "1" is valid JSON but ambiguous about intent;
                    // keep floats recognisable for downstream tooling.
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::Str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}
impl From<i64> for JsonValue {
    fn from(i: i64) -> Self {
        JsonValue::Int(i)
    }
}
impl From<u64> for JsonValue {
    fn from(u: u64) -> Self {
        JsonValue::Uint(u)
    }
}
impl From<usize> for JsonValue {
    fn from(u: usize) -> Self {
        JsonValue::Uint(u as u64)
    }
}
impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Float(x)
    }
}
impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_owned())
    }
}
impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(items: Vec<JsonValue>) -> Self {
        JsonValue::Array(items)
    }
}
impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(opt: Option<T>) -> Self {
        opt.map_or(JsonValue::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = JsonValue::object()
            .field("name", "campaign")
            .field("threads", 4usize)
            .field("ok", true)
            .field("rate", 1e-6)
            .field("none", JsonValue::Null)
            .field(
                "items",
                JsonValue::Array(vec![JsonValue::Int(1), JsonValue::Int(-2)]),
            );
        assert_eq!(
            doc.render(),
            r#"{"name":"campaign","threads":4,"ok":true,"rate":0.000001,"none":null,"items":[1,-2]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::Str("a\"b\\c\nd\te\u{1}".to_owned());
        assert_eq!(v.render(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn floats_round_trip_and_stay_floats() {
        assert_eq!(JsonValue::Float(2.0).render(), "2.0");
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        let x = 0.1 + 0.2;
        let rendered = JsonValue::Float(x).render();
        assert_eq!(rendered.parse::<f64>().unwrap().to_bits(), x.to_bits());
    }

    #[test]
    fn big_integers_stay_exact() {
        let big = (1u64 << 53) + 1;
        assert_eq!(JsonValue::Uint(big).render(), big.to_string());
    }
}
