//! Campaign execution: scenario grid → work-stealing pool → ordered
//! results → aggregates → JSON.
//!
//! Every scenario job is a pure function of its [`Scenario`] (the fault
//! seed is pre-derived from the campaign seed and the scenario index), so
//! the engine produces bit-identical per-scenario results at any thread
//! count — the pool only changes how long the campaign takes.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use chunkpoint_core::{golden, run, MitigationScheme, RunReport, SystemConfig};
use chunkpoint_scenario::{RunStats, ScenarioDef, TimelineEvent};
use chunkpoint_sim::{Burst, FaultTimeline};
use chunkpoint_workloads::Benchmark;

use crate::json::JsonValue;
use crate::pool::{run_jobs_ctl, CancelToken};
use crate::spec::{CampaignSpec, Scenario};
use crate::stats::{Aggregator, Axis, GroupStats, Summary};

/// The measured outcome of one scenario — a [`RunReport`] distilled to
/// its campaign-relevant numbers (output words and the event trace are
/// dropped; a grid of thousands of scenarios cannot keep every frame).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The scenario that produced this result.
    pub scenario: Scenario,
    /// Total energy, pJ.
    pub energy_pj: f64,
    /// Execution cycles.
    pub cycles: u64,
    /// Detected-uncorrectable reads.
    pub errors_detected: u64,
    /// Checkpoint rollbacks (hybrid only).
    pub rollbacks: u64,
    /// Whole-task restarts.
    pub restarts: u64,
    /// Checkpoints committed (hybrid only).
    pub checkpoints: u64,
    /// Whether the run completed within its recovery budgets.
    pub completed: bool,
    /// Energy normalized to the same-seed *Default* run (normalized
    /// campaigns only).
    pub energy_ratio: Option<f64>,
    /// Cycles normalized to the same-seed *Default* run.
    pub cycle_ratio: Option<f64>,
    /// Whether the output matched the fault-free golden reference.
    pub correct: Option<bool>,
    /// Verdict of the timeline scenario's `expect` block (`None` when the
    /// cell has no timeline scenario or the scenario declares no
    /// expectations).
    pub expect_passed: Option<bool>,
    /// Human-readable description of each failed expectation (empty when
    /// the block passed or was absent).
    pub expect_failures: Vec<String>,
}

impl ScenarioResult {
    /// Serializes the result as one self-describing JSON object — the
    /// per-scenario row of campaign reports and the line format of the
    /// service's append-only journal.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let s = &self.scenario;
        let mut doc = JsonValue::object()
            .field("index", s.index)
            .field("benchmark", s.benchmark.name())
            .field("scheme", s.scheme_label.as_str())
            .field("scheme_detail", s.scheme.label())
            .field("error_rate", s.error_rate)
            .field("chunk_words", s.chunk_words().map(u64::from))
            .field("replicate", s.replicate)
            .field("seed", s.seed)
            .field("energy_pj", self.energy_pj)
            .field("cycles", self.cycles)
            .field("errors_detected", self.errors_detected)
            .field("rollbacks", self.rollbacks)
            .field("restarts", self.restarts)
            .field("checkpoints", self.checkpoints)
            .field("completed", self.completed)
            .field("energy_ratio", self.energy_ratio)
            .field("cycle_ratio", self.cycle_ratio)
            .field("correct", self.correct);
        // Appended only on scenario-axis cells: pre-existing campaigns
        // keep their journal and report bytes unchanged.
        if let Some(name) = &s.scenario {
            doc = doc.field("scenario", name.as_str());
        }
        if let Some(passed) = self.expect_passed {
            let failures: Vec<JsonValue> = self
                .expect_failures
                .iter()
                .map(|f| JsonValue::from(f.as_str()))
                .collect();
            doc = doc
                .field("expect_passed", passed)
                .field("expect_failures", JsonValue::Array(failures));
        }
        doc
    }

    /// Reconstructs a result from its [`ScenarioResult::to_json`] form
    /// plus the scenario it claims to belong to (re-enumerated from the
    /// spec — the journal stores measurements, the spec stays the single
    /// source of truth for the grid).
    ///
    /// # Errors
    ///
    /// Rejects rows whose `index` or `seed` disagree with `scenario`
    /// (a journal from a different spec or campaign seed) and rows with
    /// missing or mistyped measurement fields.
    pub fn from_json(value: &JsonValue, scenario: Scenario) -> Result<Self, String> {
        let get_u64 = |key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("journal row: missing or non-integer {key:?}"))
        };
        let get_f64 = |key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("journal row: missing or non-numeric {key:?}"))
        };
        let opt_f64 = |key: &str| match value.get(key) {
            None => Ok(None),
            Some(v) if v.is_null() => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| format!("journal row: non-numeric {key:?}")),
        };
        let index = get_u64("index")? as usize;
        if index != scenario.index {
            return Err(format!(
                "journal row: index {index} does not match scenario {}",
                scenario.index
            ));
        }
        let seed = get_u64("seed")?;
        if seed != scenario.seed {
            return Err(format!(
                "journal row: seed {seed:#x} disagrees with the spec's derived seed \
                 {:#x} for scenario {index} — journal belongs to a different campaign",
                scenario.seed
            ));
        }
        let correct = match value.get("correct") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => Some(v.as_bool().ok_or("journal row: non-boolean \"correct\"")?),
        };
        let expect_passed = match value.get("expect_passed") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => Some(
                v.as_bool()
                    .ok_or("journal row: non-boolean \"expect_passed\"")?,
            ),
        };
        let expect_failures = match value.get("expect_failures") {
            None => Vec::new(),
            Some(v) if v.is_null() => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or("journal row: \"expect_failures\" must be an array")?
                .iter()
                .map(|f| {
                    f.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| "journal row: non-string expect failure".to_owned())
                })
                .collect::<Result<_, _>>()?,
        };
        Ok(Self {
            scenario,
            energy_pj: get_f64("energy_pj")?,
            cycles: get_u64("cycles")?,
            errors_detected: get_u64("errors_detected")?,
            rollbacks: get_u64("rollbacks")?,
            restarts: get_u64("restarts")?,
            checkpoints: get_u64("checkpoints")?,
            completed: value
                .get("completed")
                .and_then(JsonValue::as_bool)
                .ok_or("journal row: missing or non-boolean \"completed\"")?,
            energy_ratio: opt_f64("energy_ratio")?,
            cycle_ratio: opt_f64("cycle_ratio")?,
            correct,
            expect_passed,
            expect_failures,
        })
    }

    fn from_report(scenario: Scenario, report: &RunReport) -> Self {
        Self {
            scenario,
            energy_pj: report.energy_pj(),
            cycles: report.cycles(),
            errors_detected: report.errors_detected,
            rollbacks: report.rollbacks,
            restarts: report.restarts,
            checkpoints: report.checkpoints,
            completed: report.completed,
            energy_ratio: None,
            cycle_ratio: None,
            correct: None,
            expect_passed: None,
            expect_failures: Vec::new(),
        }
    }
}

/// A completed campaign: per-scenario results in grid order plus timing.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Results, ordered by scenario index (grid order, not completion
    /// order).
    pub results: Vec<ScenarioResult>,
    /// Worker count the campaign ran with.
    pub threads: usize,
    /// Wall-clock execution time of the grid (excludes golden pre-runs).
    pub elapsed: Duration,
    /// Campaign seed the scenario seeds were derived from.
    pub campaign_seed: u64,
}

impl CampaignResult {
    /// Scenario throughput, scenarios per wall-clock second.
    #[must_use]
    pub fn scenarios_per_sec(&self) -> f64 {
        self.results.len() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Aggregates the results grouped by `axes`, pushing in scenario
    /// order so the accumulation is itself reproducible.
    #[must_use]
    pub fn aggregate(&self, axes: &[Axis]) -> Aggregator {
        let mut aggregator = Aggregator::new(axes);
        for result in &self.results {
            aggregator.push(result);
        }
        aggregator
    }

    /// The machine-readable campaign report: metadata, per-scenario rows
    /// and aggregates grouped by `axes`.
    #[must_use]
    pub fn to_json(&self, axes: &[Axis]) -> JsonValue {
        let scenarios: Vec<JsonValue> = self.results.iter().map(ScenarioResult::to_json).collect();
        let aggregator = self.aggregate(axes);
        let axis_names: Vec<JsonValue> = axes
            .iter()
            .map(|a| JsonValue::from(format!("{a:?}")))
            .collect();
        let groups: Vec<JsonValue> = aggregator
            .groups()
            .map(|(key, stats)| {
                let key: Vec<JsonValue> = key
                    .iter()
                    .map(|part| JsonValue::from(part.as_str()))
                    .collect();
                group_json(&key, stats)
            })
            .collect();
        JsonValue::object()
            .field("campaign_seed", self.campaign_seed)
            .field("threads", self.threads)
            .field("scenarios", self.results.len())
            .field("elapsed_secs", self.elapsed.as_secs_f64())
            .field("scenarios_per_sec", self.scenarios_per_sec())
            .field("group_by", JsonValue::Array(axis_names))
            .field("aggregates", JsonValue::Array(groups))
            .field("results", JsonValue::Array(scenarios))
    }
}

fn summary_json(summary: &Summary) -> JsonValue {
    JsonValue::object()
        .field("mean", summary.mean())
        .field("stddev", summary.stddev())
        .field("ci95", summary.ci95_half_width())
}

fn group_json(key: &[JsonValue], stats: &GroupStats) -> JsonValue {
    JsonValue::object()
        .field("key", JsonValue::Array(key.to_vec()))
        .field("n", stats.n)
        .field("energy_pj", summary_json(&stats.energy_pj))
        .field("cycles", summary_json(&stats.cycles))
        .field("rollbacks", summary_json(&stats.rollbacks))
        .field("restarts", summary_json(&stats.restarts))
        .field("energy_ratio", summary_json(&stats.energy_ratio))
        .field("cycle_ratio", summary_json(&stats.cycle_ratio))
        .field("correct", stats.correct)
        .field("completed", stats.completed)
}

/// The timing-free campaign report: metadata, aggregates grouped by
/// `axes`, and per-scenario rows, from results alone.
///
/// Unlike [`CampaignResult::to_json`] this carries no wall-clock fields
/// (`elapsed_secs`, `scenarios_per_sec`, `threads`), so its rendering is
/// a pure function of the spec and seed: an interrupted campaign that
/// resumes from a journal produces **bit-identical** report bytes to an
/// uninterrupted run — the invariant the campaign service's checkpoint
/// store is built on. `results` must be in scenario-index order (the
/// aggregation streams in push order).
#[must_use]
pub fn canonical_report_json(
    campaign_seed: u64,
    results: &[ScenarioResult],
    axes: &[Axis],
) -> JsonValue {
    let mut aggregator = Aggregator::new(axes);
    for result in results {
        aggregator.push(result);
    }
    let axis_names: Vec<JsonValue> = axes
        .iter()
        .map(|a| JsonValue::from(format!("{a:?}")))
        .collect();
    let groups: Vec<JsonValue> = aggregator
        .groups()
        .map(|(key, stats)| {
            let key: Vec<JsonValue> = key
                .iter()
                .map(|part| JsonValue::from(part.as_str()))
                .collect();
            group_json(&key, stats)
        })
        .collect();
    let rows: Vec<JsonValue> = results.iter().map(ScenarioResult::to_json).collect();
    JsonValue::object()
        .field("campaign_seed", campaign_seed)
        .field("scenarios", results.len())
        .field("group_by", JsonValue::Array(axis_names))
        .field("aggregates", JsonValue::Array(groups))
        .field("results", JsonValue::Array(rows))
}

/// Lowers a scenario definition's timeline to the simulator's
/// [`FaultTimeline`]. `task_switch` events are resolved separately (they
/// change the benchmark, not the fault process); a later `scrub` wins.
fn timeline_from_def(def: &ScenarioDef) -> FaultTimeline {
    let mut timeline = FaultTimeline::default();
    for event in &def.timeline {
        match event {
            TimelineEvent::ErrorRateShift { cycle, rate } => {
                timeline.shifts.push((*cycle, *rate));
            }
            TimelineEvent::FaultBurst { cycle, words, rate } => timeline.bursts.push(Burst {
                cycle: *cycle,
                words: *words,
                rate: *rate,
            }),
            TimelineEvent::Scrub { period } => timeline.scrub_period = Some(*period),
            TimelineEvent::TaskSwitch { .. } => {}
        }
    }
    timeline
}

/// The benchmark a scenario actually executes: the grid benchmark unless
/// its timeline scenario carries a `task_switch` override. Targets are
/// validated when the axis is built, so an unresolvable name (impossible
/// through the public API) degrades to the grid benchmark instead of
/// panicking mid-campaign.
fn effective_benchmark(spec: &CampaignSpec, scenario: &Scenario) -> Benchmark {
    scenario
        .scenario
        .as_deref()
        .and_then(|name| spec.scenario_def(name))
        .and_then(ScenarioDef::task_override)
        .and_then(|task| crate::spec::benchmark_from_name(task).ok())
        .unwrap_or(scenario.benchmark)
}

/// Runs one scenario: derive the config (applying any timeline-scenario
/// fault environment and task override), execute the scheme, and — for
/// normalized campaigns — the same-seed Default denominator plus the
/// golden comparison; finally evaluate the scenario's `expect` block.
fn run_scenario(
    spec: &CampaignSpec,
    scenario: &Scenario,
    golden_output: Option<&[u32]>,
) -> ScenarioResult {
    let mut config = spec.base.with_seed(scenario.seed);
    config.faults.error_rate = scenario.error_rate;
    let def = scenario
        .scenario
        .as_deref()
        .and_then(|name| spec.scenario_def(name));
    if let Some(def) = def {
        let timeline = timeline_from_def(def);
        if !timeline.is_empty() {
            config.timeline = Some(timeline);
        }
    }
    let benchmark = effective_benchmark(spec, scenario);
    let report = run(benchmark, scenario.scheme, &config);
    let mut result = ScenarioResult::from_report(scenario.clone(), &report);
    if spec.is_normalized() {
        let denominator = if scenario.scheme == MitigationScheme::Default {
            // The denominator *is* this run; skip the duplicate work.
            None
        } else {
            Some(run(benchmark, MitigationScheme::Default, &config))
        };
        let denominator = denominator.as_ref().unwrap_or(&report);
        result.energy_ratio = Some(report.energy_ratio(denominator));
        result.cycle_ratio = Some(report.cycle_ratio(denominator));
    }
    if let Some(golden_output) = golden_output {
        result.correct = Some(report.output == golden_output);
    }
    if let Some(def) = def {
        if !def.expect.is_empty() {
            let stats = RunStats {
                completed: result.completed,
                correct: result.correct.unwrap_or(true),
                detected_errors: result.errors_detected,
                rollbacks: result.rollbacks,
                restarts: result.restarts,
                checkpoints: result.checkpoints,
                energy_pj: result.energy_pj,
                cycles: result.cycles,
            };
            let verdict = def.evaluate(&stats);
            result.expect_passed = Some(verdict.passed);
            result.expect_failures = verdict.failures;
            crate::telemetry::expect_evaluated(verdict.passed);
        }
    }
    result
}

/// Executes the part of a campaign not in `skip`, streaming every result
/// to `on_result` as it completes and honouring cooperative cancellation
/// — the engine seam the campaign service's checkpoint/resume machinery
/// drives.
///
/// * A spec with a [`CampaignSpec::scenario_range`] restriction runs only
///   the scenarios inside its half-open range — the shard execution path.
///   Indices and seeds are global (enumeration always covers the whole
///   grid), so the rows a ranged run produces are exactly the rows the
///   full campaign would produce for those indices.
/// * `skip` holds scenario indices that are already journaled: they are
///   neither re-run nor re-delivered. Because every scenario's seed is
///   derived from `(campaign_seed, index)`, the scenarios that *do* run
///   produce exactly the bytes they would have produced in the skipped
///   run — resume is bit-identical by construction.
/// * `cancel` stops the grid between scenarios ([`CancelToken`]); the
///   results computed before the stop have already reached `on_result`.
/// * `on_result` runs on the calling thread in **completion order**
///   (suitable for append-only journaling); the returned vector is
///   re-sorted into scenario-index order.
///
/// # Panics
///
/// Panics if the spec enumerates an empty or unresolvable grid (see
/// [`CampaignSpec::scenarios`]) or if a scenario's simulation panics.
pub fn run_campaign_streaming(
    spec: &CampaignSpec,
    threads: usize,
    cancel: &CancelToken,
    skip: &HashSet<usize>,
    mut on_result: impl FnMut(&ScenarioResult),
) -> Vec<ScenarioResult> {
    let scenarios = spec.scenarios();
    let pending: Vec<usize> = spec
        .active_range(scenarios.len())
        .filter(|index| !skip.contains(index))
        .collect();
    // Golden references are fault-free and seed-independent: one per
    // *effective* benchmark that still has work pending (a resumed
    // campaign whose journal already covers a benchmark skips its golden
    // run too, and a task_switch scenario gets the golden of the
    // benchmark it actually runs), computed up front so workers only
    // compare outputs. First-seen dedup keeps the set a pure function of
    // the spec, independent of thread count.
    let goldens: Vec<(Benchmark, RunReport)> = if spec.checks_golden() {
        let mut needed: Vec<Benchmark> = Vec::new();
        for &index in &pending {
            let benchmark = effective_benchmark(spec, &scenarios[index]);
            if !needed.contains(&benchmark) {
                needed.push(benchmark);
            }
        }
        needed
            .into_iter()
            .map(|benchmark| (benchmark, golden(benchmark, &spec.base)))
            .collect()
    } else {
        Vec::new()
    };
    let golden_for = |benchmark: Benchmark| -> Option<&[u32]> {
        goldens
            .iter()
            .find(|(b, _)| *b == benchmark)
            .map(|(_, report)| report.output.as_slice())
    };
    let mut results: Vec<ScenarioResult> = Vec::with_capacity(pending.len());
    run_jobs_ctl(
        &pending,
        threads,
        cancel,
        |index| {
            let scenario = &scenarios[index];
            let started = Instant::now();
            let result = run_scenario(
                spec,
                scenario,
                golden_for(effective_benchmark(spec, scenario)),
            );
            // Out-of-band: the sink observes wall time, it never feeds
            // back into the result.
            crate::telemetry::scenario_completed(started.elapsed().as_secs_f64());
            result
        },
        |_, result| {
            on_result(&result);
            results.push(result);
        },
    );
    results.sort_by_key(|r| r.scenario.index);
    results
}

/// Executes the campaign on `threads` workers (`0` = all available
/// cores). Per-scenario results are bit-identical at any thread count.
///
/// # Panics
///
/// Panics if the spec enumerates an empty or unresolvable grid (see
/// [`CampaignSpec::scenarios`]).
#[must_use]
pub fn run_campaign(spec: &CampaignSpec, threads: usize) -> CampaignResult {
    let start = Instant::now();
    let results =
        run_campaign_streaming(spec, threads, &CancelToken::new(), &HashSet::new(), |_| {});
    // The worker count the pool actually used: never more workers than
    // jobs, so small grids at tall ladder points report honestly. (With
    // nothing skipped, the result count is the grid size — computing it
    // here avoids enumerating the grid twice.)
    let workers = if threads == 0 {
        crate::pool::default_threads()
    } else {
        threads
    }
    .min(results.len().max(1));
    CampaignResult {
        results,
        threads: workers,
        elapsed: start.elapsed(),
        campaign_seed: spec.campaign_seed,
    }
}

/// Convenience wrapper: the campaign-engine equivalent of the old serial
/// "run this scheme over N seeds" loop. Returns the per-scenario results
/// for one `(benchmark, scheme)` cell.
#[must_use]
pub fn run_cell(
    benchmark: Benchmark,
    scheme: MitigationScheme,
    config: &SystemConfig,
    seeds: u64,
    threads: usize,
) -> CampaignResult {
    let spec = CampaignSpec::new(config.clone(), config.faults.seed)
        .benchmarks(&[benchmark])
        .scheme(&scheme.label(), crate::spec::SchemeSpec::Fixed(scheme))
        .replicates(seeds);
    run_campaign(&spec, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SchemeSpec;

    fn fast_config() -> SystemConfig {
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        config
    }

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn campaign_types_are_send_sync() {
        // The pool moves these across threads; lock it in at compile time.
        assert_send_sync::<SystemConfig>();
        assert_send_sync::<MitigationScheme>();
        assert_send_sync::<Benchmark>();
        assert_send_sync::<RunReport>();
        assert_send_sync::<Scenario>();
        assert_send_sync::<ScenarioResult>();
        assert_send_sync::<CampaignSpec>();
    }

    #[test]
    fn default_scenarios_normalize_to_unity() {
        let spec = CampaignSpec::new(fast_config(), 3)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .replicates(2);
        let result = run_campaign(&spec, 2);
        assert_eq!(result.results.len(), 2);
        for r in &result.results {
            assert!((r.energy_ratio.unwrap() - 1.0).abs() < 1e-12);
            assert!((r.cycle_ratio.unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn unnormalized_campaigns_skip_ratios() {
        let spec = CampaignSpec::new(fast_config(), 3)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
            .normalize(false)
            .golden_check(false);
        let result = run_campaign(&spec, 1);
        assert_eq!(result.results.len(), 1);
        let r = &result.results[0];
        assert!(r.energy_ratio.is_none() && r.correct.is_none());
        assert!(r.energy_pj > 0.0);
    }

    #[test]
    fn streaming_skip_set_resumes_bit_identically() {
        let spec = CampaignSpec::new(fast_config(), 21)
            .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
            .replicates(3);
        let full = run_campaign(&spec, 1);
        // "Crash" after an arbitrary prefix: pretend scenarios {0,3,7} are
        // journaled and re-run only the rest.
        let skip: HashSet<usize> = [0usize, 3, 7].into_iter().collect();
        let rest = run_campaign_streaming(&spec, 2, &CancelToken::new(), &skip, |_| {});
        assert_eq!(rest.len(), full.results.len() - skip.len());
        // Merge journaled + fresh, sort, compare to the uninterrupted run
        // at the canonical-report byte level.
        let mut merged: Vec<ScenarioResult> = full
            .results
            .iter()
            .filter(|r| skip.contains(&r.scenario.index))
            .cloned()
            .chain(rest)
            .collect();
        merged.sort_by_key(|r| r.scenario.index);
        let axes = [Axis::Benchmark, Axis::Scheme, Axis::ErrorRate];
        assert_eq!(
            canonical_report_json(spec.campaign_seed, &merged, &axes).render(),
            canonical_report_json(spec.campaign_seed, &full.results, &axes).render(),
        );
    }

    #[test]
    fn ranged_specs_run_exactly_their_slice() {
        let spec = CampaignSpec::new(fast_config(), 31)
            .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
            .replicates(2);
        let full = run_campaign(&spec, 1);
        let n = full.results.len();
        // Shard the grid in two; each half computes precisely the full
        // run's rows for its indices, bit for bit.
        let lo = spec.clone().scenario_range(0, n / 2);
        let hi = spec.clone().scenario_range(n / 2, n);
        let lo_rows = run_campaign_streaming(&lo, 2, &CancelToken::new(), &HashSet::new(), |_| {});
        let hi_rows = run_campaign_streaming(&hi, 1, &CancelToken::new(), &HashSet::new(), |_| {});
        assert_eq!(lo_rows.len() + hi_rows.len(), n);
        let merged: Vec<ScenarioResult> = lo_rows.into_iter().chain(hi_rows).collect();
        for (merged_row, full_row) in merged.iter().zip(&full.results) {
            assert_eq!(merged_row, full_row);
        }
        // A skip set composes with the range: already-journaled rows in
        // the slice are not recomputed.
        let skip: HashSet<usize> = [n / 2, n / 2 + 1].into_iter().collect();
        let resumed = run_campaign_streaming(&hi, 1, &CancelToken::new(), &skip, |_| {});
        assert_eq!(resumed.len(), n - n / 2 - 2);
        assert!(resumed.iter().all(|r| !skip.contains(&r.scenario.index)));
    }

    #[test]
    fn streaming_cancel_stops_between_scenarios() {
        let spec = CampaignSpec::new(fast_config(), 5)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .replicates(12);
        let cancel = CancelToken::new();
        let mut delivered = 0;
        let results = run_campaign_streaming(&spec, 1, &cancel, &HashSet::new(), |_| {
            delivered += 1;
            if delivered == 3 {
                cancel.cancel();
            }
        });
        assert!(cancel.is_cancelled());
        assert_eq!(results.len(), delivered);
        // Cancellation is cooperative and the worker races the sink, so
        // anywhere from 3 to all 12 results may land — but never fewer
        // than the delivery that triggered the cancel.
        assert!(results.len() >= 3, "lost deliveries: {}", results.len());
        // The partial results are the full run's prefix values, bit for bit.
        let full = run_campaign(&spec, 1);
        for r in &results {
            assert_eq!(r, &full.results[r.scenario.index]);
        }
    }

    #[test]
    fn scenario_results_round_trip_through_json() {
        let spec = CampaignSpec::new(fast_config(), 9)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
            .replicates(2);
        let scenarios = spec.scenarios();
        for result in run_campaign(&spec, 1).results {
            let line = result.to_json().render();
            let parsed = JsonValue::parse(&line).expect("journal line parses");
            let back = ScenarioResult::from_json(&parsed, scenarios[result.scenario.index].clone())
                .expect("journal line loads");
            assert_eq!(back, result);
            // A row from a different campaign seed is rejected loudly.
            let mut forged = scenarios[result.scenario.index].clone();
            forged.seed ^= 1;
            let err = ScenarioResult::from_json(&parsed, forged).unwrap_err();
            assert!(err.contains("different campaign"), "{err}");
        }
    }

    #[test]
    fn timeline_scenarios_change_results_deterministically() {
        let mut quiet = ScenarioDef::named("quiet");
        quiet.timeline = vec![TimelineEvent::ErrorRateShift {
            cycle: 0,
            rate: 0.0,
        }];
        let mut storm = ScenarioDef::named("storm");
        // Strikes materialise lazily at read time, so the burst must fall
        // inside some word's write→read window. Cycle 2000 sits between
        // the first block's output writes and the end-of-frame drain.
        storm.timeline = vec![TimelineEvent::FaultBurst {
            cycle: 2_000,
            words: 64,
            rate: 1.0,
        }];
        let mut config = fast_config();
        config.faults.error_rate = 1e-6;
        let spec = CampaignSpec::new(config, 13)
            .benchmarks(&[Benchmark::AdpcmDecode])
            .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
            .timeline_scenarios(&[quiet, storm]);
        let first = run_campaign(&spec, 2);
        assert_eq!(first.results.len(), 2);
        let quiet_row = &first.results[0];
        let storm_row = &first.results[1];
        assert_eq!(quiet_row.scenario.scenario.as_deref(), Some("quiet"));
        assert_eq!(storm_row.scenario.scenario.as_deref(), Some("storm"));
        // A saturating burst must be visible in the outcome the way a
        // zeroed rate cannot be.
        assert_eq!(quiet_row.restarts, 0, "rate shifted to zero");
        assert_eq!(quiet_row.errors_detected, 0, "rate shifted to zero");
        assert!(
            storm_row.restarts > 0
                || storm_row.errors_detected > 0
                || storm_row.correct == Some(false),
            "burst went unnoticed: {storm_row:?}"
        );
        // No expect block → no verdict.
        assert!(quiet_row.expect_passed.is_none());
        // Same spec, different thread count: bit-identical rows.
        let again = run_campaign(&spec, 1);
        assert_eq!(again.results, first.results);
    }

    #[test]
    fn expect_blocks_become_typed_outcomes_not_panics() {
        use chunkpoint_scenario::{ExpectField, ExpectOp, ExpectValue, Expectation};
        let mut demanding = ScenarioDef::named("demanding");
        demanding.expect = vec![
            Expectation {
                field: ExpectField::Completed,
                op: ExpectOp::Eq,
                value: ExpectValue::Bool(true),
            },
            // Impossible: cycles are always positive.
            Expectation {
                field: ExpectField::Cycles,
                op: ExpectOp::Le,
                value: ExpectValue::Uint(0),
            },
        ];
        let mut satisfied = ScenarioDef::named("satisfied");
        satisfied.expect = vec![Expectation {
            field: ExpectField::Cycles,
            op: ExpectOp::Ge,
            value: ExpectValue::Uint(1),
        }];
        let spec = CampaignSpec::new(fast_config(), 17)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .timeline_scenarios(&[demanding, satisfied]);
        let results = run_campaign(&spec, 1).results;
        assert_eq!(results[0].expect_passed, Some(false));
        assert_eq!(results[0].expect_failures.len(), 1);
        assert!(results[0].expect_failures[0].contains("cycles"));
        assert_eq!(results[1].expect_passed, Some(true));
        assert!(results[1].expect_failures.is_empty());
        // The verdict rides the journal row round trip.
        let scenarios = spec.scenarios();
        for result in &results {
            let parsed = JsonValue::parse(&result.to_json().render()).unwrap();
            let back = ScenarioResult::from_json(&parsed, scenarios[result.scenario.index].clone())
                .expect("scenario journal row loads");
            assert_eq!(&back, result);
        }
    }

    #[test]
    fn task_switch_scenarios_run_the_override_benchmark() {
        let mut switched = ScenarioDef::named("g722-instead");
        switched.timeline = vec![TimelineEvent::TaskSwitch {
            cycle: 0,
            task: "G722 encode".to_owned(),
        }];
        let spec = CampaignSpec::new(fast_config(), 19)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .timeline_scenarios(std::slice::from_ref(&switched));
        let with_override = run_campaign(&spec, 1).results;
        assert_eq!(with_override.len(), 1);
        // The override must actually change the run: compare against the
        // same grid executed on G.722 directly — identical physics.
        let direct = CampaignSpec::new(fast_config(), 19)
            .benchmarks(&[Benchmark::G722Encode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .timeline_scenarios(std::slice::from_ref(&switched));
        let direct_rows = run_campaign(&direct, 1).results;
        assert_eq!(with_override[0].cycles, direct_rows[0].cycles);
        assert_eq!(with_override[0].energy_pj, direct_rows[0].energy_pj);
        // And the golden check must have compared against the *override*
        // benchmark's golden output, not ADPCM's.
        assert_eq!(with_override[0].correct, Some(true));
    }

    #[test]
    fn aggregates_group_and_count() {
        let spec = CampaignSpec::new(fast_config(), 11)
            .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
            .replicates(2);
        let result = run_campaign(&spec, 0);
        let by_scheme = result.aggregate(&[Axis::Scheme]);
        assert_eq!(by_scheme.len(), 2);
        for (_, stats) in by_scheme.groups() {
            assert_eq!(stats.n, 4); // 2 benchmarks x 2 replicates
            assert_eq!(stats.completed, 4);
        }
        let json = result.to_json(&[Axis::Scheme]).render();
        assert!(json.contains("\"aggregates\""));
        assert!(json.contains("\"scenarios_per_sec\""));
    }
}
