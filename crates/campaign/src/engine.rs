//! Campaign execution: scenario grid → work-stealing pool → ordered
//! results → aggregates → JSON.
//!
//! Every scenario job is a pure function of its [`Scenario`] (the fault
//! seed is pre-derived from the campaign seed and the scenario index), so
//! the engine produces bit-identical per-scenario results at any thread
//! count — the pool only changes how long the campaign takes.

use std::time::{Duration, Instant};

use chunkpoint_core::{golden, run, MitigationScheme, RunReport, SystemConfig};
use chunkpoint_workloads::Benchmark;

use crate::json::JsonValue;
use crate::pool::run_jobs;
use crate::spec::{CampaignSpec, Scenario};
use crate::stats::{Aggregator, Axis, GroupStats, Summary};

/// The measured outcome of one scenario — a [`RunReport`] distilled to
/// its campaign-relevant numbers (output words and the event trace are
/// dropped; a grid of thousands of scenarios cannot keep every frame).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The scenario that produced this result.
    pub scenario: Scenario,
    /// Total energy, pJ.
    pub energy_pj: f64,
    /// Execution cycles.
    pub cycles: u64,
    /// Detected-uncorrectable reads.
    pub errors_detected: u64,
    /// Checkpoint rollbacks (hybrid only).
    pub rollbacks: u64,
    /// Whole-task restarts.
    pub restarts: u64,
    /// Checkpoints committed (hybrid only).
    pub checkpoints: u64,
    /// Whether the run completed within its recovery budgets.
    pub completed: bool,
    /// Energy normalized to the same-seed *Default* run (normalized
    /// campaigns only).
    pub energy_ratio: Option<f64>,
    /// Cycles normalized to the same-seed *Default* run.
    pub cycle_ratio: Option<f64>,
    /// Whether the output matched the fault-free golden reference.
    pub correct: Option<bool>,
}

impl ScenarioResult {
    fn from_report(scenario: Scenario, report: &RunReport) -> Self {
        Self {
            scenario,
            energy_pj: report.energy_pj(),
            cycles: report.cycles(),
            errors_detected: report.errors_detected,
            rollbacks: report.rollbacks,
            restarts: report.restarts,
            checkpoints: report.checkpoints,
            completed: report.completed,
            energy_ratio: None,
            cycle_ratio: None,
            correct: None,
        }
    }
}

/// A completed campaign: per-scenario results in grid order plus timing.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Results, ordered by scenario index (grid order, not completion
    /// order).
    pub results: Vec<ScenarioResult>,
    /// Worker count the campaign ran with.
    pub threads: usize,
    /// Wall-clock execution time of the grid (excludes golden pre-runs).
    pub elapsed: Duration,
    /// Campaign seed the scenario seeds were derived from.
    pub campaign_seed: u64,
}

impl CampaignResult {
    /// Scenario throughput, scenarios per wall-clock second.
    #[must_use]
    pub fn scenarios_per_sec(&self) -> f64 {
        self.results.len() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Aggregates the results grouped by `axes`, pushing in scenario
    /// order so the accumulation is itself reproducible.
    #[must_use]
    pub fn aggregate(&self, axes: &[Axis]) -> Aggregator {
        let mut aggregator = Aggregator::new(axes);
        for result in &self.results {
            aggregator.push(result);
        }
        aggregator
    }

    /// The machine-readable campaign report: metadata, per-scenario rows
    /// and aggregates grouped by `axes`.
    #[must_use]
    pub fn to_json(&self, axes: &[Axis]) -> JsonValue {
        let scenarios: Vec<JsonValue> = self.results.iter().map(scenario_json).collect();
        let aggregator = self.aggregate(axes);
        let axis_names: Vec<JsonValue> = axes
            .iter()
            .map(|a| JsonValue::from(format!("{a:?}")))
            .collect();
        let groups: Vec<JsonValue> = aggregator
            .groups()
            .map(|(key, stats)| {
                let key: Vec<JsonValue> = key
                    .iter()
                    .map(|part| JsonValue::from(part.as_str()))
                    .collect();
                group_json(&key, stats)
            })
            .collect();
        JsonValue::object()
            .field("campaign_seed", self.campaign_seed)
            .field("threads", self.threads)
            .field("scenarios", self.results.len())
            .field("elapsed_secs", self.elapsed.as_secs_f64())
            .field("scenarios_per_sec", self.scenarios_per_sec())
            .field("group_by", JsonValue::Array(axis_names))
            .field("aggregates", JsonValue::Array(groups))
            .field("results", JsonValue::Array(scenarios))
    }
}

fn summary_json(summary: &Summary) -> JsonValue {
    JsonValue::object()
        .field("mean", summary.mean())
        .field("stddev", summary.stddev())
        .field("ci95", summary.ci95_half_width())
}

fn group_json(key: &[JsonValue], stats: &GroupStats) -> JsonValue {
    JsonValue::object()
        .field("key", JsonValue::Array(key.to_vec()))
        .field("n", stats.n)
        .field("energy_pj", summary_json(&stats.energy_pj))
        .field("cycles", summary_json(&stats.cycles))
        .field("rollbacks", summary_json(&stats.rollbacks))
        .field("restarts", summary_json(&stats.restarts))
        .field("energy_ratio", summary_json(&stats.energy_ratio))
        .field("cycle_ratio", summary_json(&stats.cycle_ratio))
        .field("correct", stats.correct)
        .field("completed", stats.completed)
}

fn scenario_json(result: &ScenarioResult) -> JsonValue {
    let s = &result.scenario;
    JsonValue::object()
        .field("index", s.index)
        .field("benchmark", s.benchmark.name())
        .field("scheme", s.scheme_label.as_str())
        .field("scheme_detail", s.scheme.label())
        .field("error_rate", s.error_rate)
        .field("chunk_words", s.chunk_words().map(u64::from))
        .field("replicate", s.replicate)
        .field("seed", s.seed)
        .field("energy_pj", result.energy_pj)
        .field("cycles", result.cycles)
        .field("errors_detected", result.errors_detected)
        .field("rollbacks", result.rollbacks)
        .field("restarts", result.restarts)
        .field("checkpoints", result.checkpoints)
        .field("completed", result.completed)
        .field("energy_ratio", result.energy_ratio)
        .field("cycle_ratio", result.cycle_ratio)
        .field("correct", result.correct)
}

/// Runs one scenario: derive the config, execute the scheme, and — for
/// normalized campaigns — the same-seed Default denominator plus the
/// golden comparison.
fn run_scenario(
    spec: &CampaignSpec,
    scenario: &Scenario,
    golden_output: Option<&[u32]>,
) -> ScenarioResult {
    let mut config = spec.base.with_seed(scenario.seed);
    config.faults.error_rate = scenario.error_rate;
    let report = run(scenario.benchmark, scenario.scheme, &config);
    let mut result = ScenarioResult::from_report(scenario.clone(), &report);
    if spec.is_normalized() {
        let denominator = if scenario.scheme == MitigationScheme::Default {
            // The denominator *is* this run; skip the duplicate work.
            None
        } else {
            Some(run(scenario.benchmark, MitigationScheme::Default, &config))
        };
        let denominator = denominator.as_ref().unwrap_or(&report);
        result.energy_ratio = Some(report.energy_ratio(denominator));
        result.cycle_ratio = Some(report.cycle_ratio(denominator));
    }
    if let Some(golden_output) = golden_output {
        result.correct = Some(report.output == golden_output);
    }
    result
}

/// Executes the campaign on `threads` workers (`0` = all available
/// cores). Per-scenario results are bit-identical at any thread count.
///
/// # Panics
///
/// Panics if the spec enumerates an empty or unresolvable grid (see
/// [`CampaignSpec::scenarios`]).
#[must_use]
pub fn run_campaign(spec: &CampaignSpec, threads: usize) -> CampaignResult {
    let scenarios = spec.scenarios();
    // Golden references are fault-free and seed-independent: one per
    // benchmark, computed up front so workers only compare outputs.
    let goldens: Vec<(Benchmark, RunReport)> = if spec.checks_golden() {
        spec.benchmark_axis()
            .iter()
            .map(|&benchmark| (benchmark, golden(benchmark, &spec.base)))
            .collect()
    } else {
        Vec::new()
    };
    let golden_for = |benchmark: Benchmark| -> Option<&[u32]> {
        goldens
            .iter()
            .find(|(b, _)| *b == benchmark)
            .map(|(_, report)| report.output.as_slice())
    };
    // The worker count the pool will actually use: never more workers
    // than jobs, so small grids at tall ladder points report honestly.
    let workers = if threads == 0 {
        crate::pool::default_threads()
    } else {
        threads
    }
    .min(scenarios.len().max(1));
    let start = Instant::now();
    let results = run_jobs(scenarios.len(), threads, |index| {
        let scenario = &scenarios[index];
        run_scenario(spec, scenario, golden_for(scenario.benchmark))
    });
    CampaignResult {
        results,
        threads: workers,
        elapsed: start.elapsed(),
        campaign_seed: spec.campaign_seed,
    }
}

/// Convenience wrapper: the campaign-engine equivalent of the old serial
/// "run this scheme over N seeds" loop. Returns the per-scenario results
/// for one `(benchmark, scheme)` cell.
#[must_use]
pub fn run_cell(
    benchmark: Benchmark,
    scheme: MitigationScheme,
    config: &SystemConfig,
    seeds: u64,
    threads: usize,
) -> CampaignResult {
    let spec = CampaignSpec::new(config.clone(), config.faults.seed)
        .benchmarks(&[benchmark])
        .scheme(&scheme.label(), crate::spec::SchemeSpec::Fixed(scheme))
        .replicates(seeds);
    run_campaign(&spec, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SchemeSpec;

    fn fast_config() -> SystemConfig {
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        config
    }

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn campaign_types_are_send_sync() {
        // The pool moves these across threads; lock it in at compile time.
        assert_send_sync::<SystemConfig>();
        assert_send_sync::<MitigationScheme>();
        assert_send_sync::<Benchmark>();
        assert_send_sync::<RunReport>();
        assert_send_sync::<Scenario>();
        assert_send_sync::<ScenarioResult>();
        assert_send_sync::<CampaignSpec>();
    }

    #[test]
    fn default_scenarios_normalize_to_unity() {
        let spec = CampaignSpec::new(fast_config(), 3)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .replicates(2);
        let result = run_campaign(&spec, 2);
        assert_eq!(result.results.len(), 2);
        for r in &result.results {
            assert!((r.energy_ratio.unwrap() - 1.0).abs() < 1e-12);
            assert!((r.cycle_ratio.unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn unnormalized_campaigns_skip_ratios() {
        let spec = CampaignSpec::new(fast_config(), 3)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
            .normalize(false)
            .golden_check(false);
        let result = run_campaign(&spec, 1);
        assert_eq!(result.results.len(), 1);
        let r = &result.results[0];
        assert!(r.energy_ratio.is_none() && r.correct.is_none());
        assert!(r.energy_pj > 0.0);
    }

    #[test]
    fn aggregates_group_and_count() {
        let spec = CampaignSpec::new(fast_config(), 11)
            .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
            .replicates(2);
        let result = run_campaign(&spec, 0);
        let by_scheme = result.aggregate(&[Axis::Scheme]);
        assert_eq!(by_scheme.len(), 2);
        for (_, stats) in by_scheme.groups() {
            assert_eq!(stats.n, 4); // 2 benchmarks x 2 replicates
            assert_eq!(stats.completed, 4);
        }
        let json = result.to_json(&[Axis::Scheme]).render();
        assert!(json.contains("\"aggregates\""));
        assert!(json.contains("\"scenarios_per_sec\""));
    }
}
