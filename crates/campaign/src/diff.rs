//! Spec-diffing for **incremental campaigns**.
//!
//! Editing one axis value of a completed campaign re-derives the whole
//! grid: later scenario indices shift, and with them their SplitMix64
//! seeds. But most cells of the edited grid are *measurement-identical*
//! to a cell of the old grid — same benchmark, scheme, strike rate,
//! replicate **and** fault seed — so their sealed journal rows can be
//! carried over verbatim instead of re-simulated. This module computes
//! that mapping:
//!
//! * [`diff_specs`] pairs up old and new scenario indices whose
//!   `(seed, parameters)` are unchanged, refusing to pair anything when
//!   the non-axis context (base [`SystemConfig`] knobs, normalization,
//!   golden checking) differs — those affect measurements without
//!   appearing in a [`Scenario`].
//! * [`translate_rows`] rewrites old journal rows onto their new global
//!   indices, producing rows byte-identical to what a clean run of the
//!   new spec would seal for those cells.
//!
//! The coordinator's range-granular result cache
//! (`chunkpoint_shard::cache`) consumes the translated rows: seeding
//! them under the new spec's key means a subsequent sharded run
//! dispatches only the changed cells, with report bytes identical to a
//! full clean run.
//!
//! [`SystemConfig`]: chunkpoint_core::SystemConfig

use std::collections::HashMap;

use chunkpoint_core::MitigationScheme;

use crate::engine::ScenarioResult;
use crate::spec::{CampaignSpec, Scenario};

/// Everything that distinguishes one scenario's measurements from
/// another's, assuming an equal non-axis context. The derived fault
/// seed is part of the key, so campaigns with different `campaign_seed`
/// (or shifted enumeration orders) simply pair nothing rather than
/// pairing wrongly.
#[derive(PartialEq, Eq, Hash)]
struct ScenarioKey {
    benchmark: &'static str,
    scheme_label: String,
    scheme: MitigationScheme,
    rate_bits: u64,
    /// The timeline scenario's canonical wire rendering — its *content*,
    /// not just its name. Two campaigns whose axes share a scenario name
    /// but disagree on its timeline or expect block measure different
    /// things; keying on the rendering makes those cells changed cells.
    scenario: Option<String>,
    replicate: u64,
    seed: u64,
}

impl ScenarioKey {
    fn of(scenario: &Scenario, spec: &CampaignSpec) -> Self {
        ScenarioKey {
            benchmark: scenario.benchmark.name(),
            scheme_label: scenario.scheme_label.clone(),
            scheme: scenario.scheme,
            rate_bits: scenario.error_rate.to_bits(),
            scenario: scenario
                .scenario
                .as_deref()
                .and_then(|name| spec.scenario_def(name))
                .map(|def| def.to_json().render()),
            replicate: scenario.replicate,
            seed: scenario.seed,
        }
    }
}

/// The scenario-index mapping between an old and a new campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecDiff {
    /// `(old_index, new_index)` pairs whose measurements are identical,
    /// sorted by new index.
    pub pairs: Vec<(usize, usize)>,
    /// Scenarios of the new grid with no old counterpart — the cells an
    /// incremental run must actually execute.
    pub changed: usize,
    /// Scenarios of the old grid that no longer exist in the new one.
    pub dropped: usize,
    /// Total size of the new grid (`pairs.len() + changed`).
    pub new_total: usize,
}

impl SpecDiff {
    /// Number of new-grid scenarios whose old rows can be reused.
    #[must_use]
    pub fn reused(&self) -> usize {
        self.pairs.len()
    }
}

/// Returns `true` when two specs agree on everything that shapes a
/// measurement but is not part of a [`Scenario`]: the base
/// [`SystemConfig`](chunkpoint_core::SystemConfig) knobs (compared via
/// their canonical wire rendering) and the `normalize` / `golden_check`
/// flags. When this is `false`, no row of one campaign is valid in the
/// other, whatever the axes say.
#[must_use]
pub fn contexts_match(old: &CampaignSpec, new: &CampaignSpec) -> bool {
    let base = |spec: &CampaignSpec| spec.to_json().get("base").map(super::JsonValue::render);
    base(old) == base(new)
        && old.is_normalized() == new.is_normalized()
        && old.checks_golden() == new.checks_golden()
}

/// Maps the scenario indices of `old` onto those of `new` wherever the
/// `(seed, parameters)` pair — and therefore the sealed measurements —
/// are unchanged. Range restrictions on either spec are ignored: the
/// diff is between the full grids.
///
/// # Panics
///
/// Panics if either spec enumerates an infeasible grid (empty scheme
/// axis, or an optimizer entry with no feasible design point) — the
/// same contract as [`CampaignSpec::scenarios`].
#[must_use]
pub fn diff_specs(old: &CampaignSpec, new: &CampaignSpec) -> SpecDiff {
    let new_grid = new.clone().without_range().scenarios();
    let old_grid = old.clone().without_range().scenarios();
    if !contexts_match(old, new) {
        return SpecDiff {
            pairs: Vec::new(),
            changed: new_grid.len(),
            dropped: old_grid.len(),
            new_total: new_grid.len(),
        };
    }
    // Keys are unique per grid: two scenarios agreeing on every
    // parameter and replicate sit at different indices, hence carry
    // different SplitMix64 seeds.
    let by_key: HashMap<ScenarioKey, usize> = old_grid
        .iter()
        .map(|scenario| (ScenarioKey::of(scenario, old), scenario.index))
        .collect();
    let pairs: Vec<(usize, usize)> = new_grid
        .iter()
        .filter_map(|scenario| {
            by_key
                .get(&ScenarioKey::of(scenario, new))
                .map(|&old_index| (old_index, scenario.index))
        })
        .collect();
    SpecDiff {
        changed: new_grid.len() - pairs.len(),
        dropped: old_grid.len() - pairs.len(),
        new_total: new_grid.len(),
        pairs,
    }
}

/// Rewrites old journal rows onto the new campaign's global indices,
/// keeping only rows whose scenario survives the diff unchanged. Rows
/// whose `(index, seed)` does not match the old grid (foreign or stale
/// journals) are skipped, never translated wrongly. The result is
/// sorted by new index and carries the *new* grid's scenarios, so each
/// row is byte-identical to what a clean run of `new` would seal.
///
/// # Panics
///
/// Panics if either spec enumerates an infeasible grid — the same
/// contract as [`CampaignSpec::scenarios`].
#[must_use]
pub fn translate_rows(
    old: &CampaignSpec,
    new: &CampaignSpec,
    old_rows: &[ScenarioResult],
) -> Vec<ScenarioResult> {
    let diff = diff_specs(old, new);
    let old_grid = old.clone().without_range().scenarios();
    let new_grid = new.clone().without_range().scenarios();
    let by_old_index: HashMap<usize, &ScenarioResult> = old_rows
        .iter()
        .filter(|row| {
            old_grid
                .get(row.scenario.index)
                .is_some_and(|expected| expected.seed == row.scenario.seed)
        })
        .map(|row| (row.scenario.index, row))
        .collect();
    diff.pairs
        .iter()
        .filter_map(|&(old_index, new_index)| {
            by_old_index.get(&old_index).map(|row| ScenarioResult {
                scenario: new_grid[new_index].clone(),
                ..(*row).clone()
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_campaign;
    use crate::spec::SchemeSpec;
    use chunkpoint_core::SystemConfig;
    use chunkpoint_workloads::Benchmark;

    fn small_config() -> SystemConfig {
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        config
    }

    fn base_spec() -> CampaignSpec {
        CampaignSpec::new(small_config(), 0x1D1F)
            .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
            .error_rates(&[1e-7, 1e-6])
            .replicates(2)
    }

    #[test]
    fn identical_specs_pair_everything() {
        let spec = base_spec();
        let diff = diff_specs(&spec, &spec);
        assert_eq!(diff.changed, 0);
        assert_eq!(diff.dropped, 0);
        assert_eq!(diff.reused(), diff.new_total);
        // The mapping is the identity.
        assert!(diff.pairs.iter().all(|&(old, new)| old == new));
    }

    #[test]
    fn one_axis_edit_reuses_unchanged_cells() {
        // One rate swapped: the 1e-7 cells (half the grid) survive at
        // their original indices; the edited rate's cells are all new.
        let old = base_spec();
        let new = base_spec().error_rates(&[1e-7, 2e-6]);
        let diff = diff_specs(&old, &new);
        let total = new.scenarios().len();
        assert_eq!(diff.new_total, total);
        assert_eq!(diff.reused(), total / 2);
        assert_eq!(diff.changed, total / 2);
        assert_eq!(diff.dropped, total / 2);
        // Because the rate axis is inner to benchmark × scheme and the
        // edit keeps axis lengths equal, unchanged cells keep their
        // indices exactly.
        assert!(diff.pairs.iter().all(|&(old, new)| old == new));
    }

    #[test]
    fn campaign_seed_change_pairs_nothing() {
        let old = base_spec();
        let new = CampaignSpec::new(small_config(), 0x2E2E)
            .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
            .error_rates(&[1e-7, 1e-6])
            .replicates(2);
        let diff = diff_specs(&old, &new);
        assert_eq!(diff.reused(), 0);
        assert_eq!(diff.changed, diff.new_total);
    }

    #[test]
    fn context_mismatch_pairs_nothing() {
        let old = base_spec();
        let normalized_off = base_spec().normalize(false);
        assert!(!contexts_match(&old, &normalized_off));
        assert_eq!(diff_specs(&old, &normalized_off).reused(), 0);

        let mut other_base = small_config();
        other_base.scale = 0.5;
        let rescaled = CampaignSpec::new(other_base, 0x1D1F)
            .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
            .error_rates(&[1e-7, 1e-6])
            .replicates(2);
        assert!(!contexts_match(&old, &rescaled));
        assert_eq!(diff_specs(&old, &rescaled).reused(), 0);
    }

    #[test]
    fn range_restrictions_are_ignored() {
        let spec = base_spec();
        let ranged = base_spec().scenario_range(0, 3);
        let diff = diff_specs(&ranged, &spec);
        assert_eq!(diff.reused(), diff.new_total);
    }

    #[test]
    fn translated_rows_match_a_clean_run() {
        let old = base_spec();
        let new = base_spec().error_rates(&[1e-7, 2e-6]);
        let old_run = run_campaign(&old, 1);
        let clean = run_campaign(&new, 1);
        let translated = translate_rows(&old, &new, &old_run.results);
        assert_eq!(translated.len(), diff_specs(&old, &new).reused());
        for row in &translated {
            assert_eq!(row, &clean.results[row.scenario.index]);
        }
    }

    #[test]
    fn scenario_content_edits_are_changed_cells() {
        use chunkpoint_scenario::{ScenarioDef, TimelineEvent};
        let mut storm = ScenarioDef::named("storm");
        storm.timeline = vec![TimelineEvent::FaultBurst {
            cycle: 1_000,
            words: 8,
            rate: 0.5,
        }];
        let calm = ScenarioDef::named("calm");
        let with_axis = |defs: &[ScenarioDef]| base_spec().timeline_scenarios(defs).replicates(2);

        // Identical scenario axes pair everything.
        let old = with_axis(&[storm.clone(), calm.clone()]);
        let same = with_axis(&[storm.clone(), calm.clone()]);
        let diff = diff_specs(&old, &same);
        assert_eq!(diff.reused(), diff.new_total);

        // Same name, different timeline: every "storm" cell is a changed
        // cell — indices and seeds are unchanged, but the measurements
        // are not. The untouched "calm" cells still pair.
        let mut harder_storm = storm.clone();
        harder_storm.timeline = vec![TimelineEvent::FaultBurst {
            cycle: 1_000,
            words: 64,
            rate: 1.0,
        }];
        let edited = with_axis(&[harder_storm, calm.clone()]);
        let diff = diff_specs(&old, &edited);
        assert_eq!(diff.reused(), diff.new_total / 2);
        assert_eq!(diff.changed, diff.new_total / 2);
        let new_grid = edited.scenarios();
        for &(_, new_index) in &diff.pairs {
            assert_eq!(
                new_grid[new_index].scenario.as_deref(),
                Some("calm"),
                "an edited-scenario cell was wrongly reused"
            );
        }

        // An expect-block edit is also a content edit: re-running it is
        // the only way to refresh the verdict journal rows carry.
        let mut demanding_calm = calm.clone();
        demanding_calm.expect = vec![chunkpoint_scenario::Expectation {
            field: chunkpoint_scenario::ExpectField::Completed,
            op: chunkpoint_scenario::ExpectOp::Eq,
            value: chunkpoint_scenario::ExpectValue::Bool(true),
        }];
        let diff = diff_specs(&old, &with_axis(&[storm, demanding_calm]));
        assert_eq!(diff.reused(), diff.new_total / 2);

        // And a scenario-axis spec never pairs with a scenario-less one.
        let diff = diff_specs(&old, &base_spec());
        assert_eq!(diff.reused(), 0);
    }

    #[test]
    fn foreign_rows_are_dropped_not_translated() {
        let old = base_spec();
        let new = base_spec();
        let mut rows = run_campaign(&old, 1).results;
        // Corrupt one row's seed: it must be skipped, not carried over.
        rows[0].scenario.seed ^= 1;
        let translated = translate_rows(&old, &new, &rows);
        assert_eq!(translated.len(), rows.len() - 1);
        assert!(translated.iter().all(|row| row.scenario.index != 0));
    }
}
