//! Per-scenario seed derivation.
//!
//! A campaign must produce bit-identical results at any thread count, so a
//! scenario's fault-process seed cannot depend on *when* or *where* the
//! scenario runs — only on the campaign seed and the scenario's position
//! in the declared grid. We derive it as the `index`-th output of the
//! SplitMix64 stream seeded with the campaign seed (Steele, Lea, Flood —
//! *Fast Splittable Pseudorandom Number Generators*, OOPSLA 2014): a
//! single multiply-xorshift finalizer over an additive Weyl sequence,
//! which is stateless per call, platform-independent (pure `u64`
//! wrapping arithmetic), and passes BigCrush — far better dispersion than
//! the `seed * GOLDEN` xor that the serial harness used before.

/// The SplitMix64 Weyl-sequence increment (2⁶⁴ / φ, odd).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output finalizer (variant 13 of Stafford's mix).
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the fault seed of scenario `index` in a campaign seeded with
/// `campaign_seed`: the `index`-th output of SplitMix64(`campaign_seed`).
///
/// The mapping is a pure function of its two arguments, so any worker on
/// any platform derives the same stream — the foundation of the engine's
/// thread-count-independent reproducibility.
#[must_use]
pub fn scenario_seed(campaign_seed: u64, index: u64) -> u64 {
    mix64(campaign_seed.wrapping_add(index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_splitmix64_stream() {
        // First outputs of the canonical SplitMix64 reference
        // implementation (seed 0): the cross-platform anchor vectors.
        assert_eq!(scenario_seed(0, 0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(scenario_seed(0, 1), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(scenario_seed(0, 2), 0x06C4_5D18_8009_454F);
        assert_eq!(scenario_seed(1, 0), 0x910A_2DEC_8902_5CC1);
    }

    #[test]
    fn stable_across_seeds_and_wide_indices() {
        assert_eq!(scenario_seed(42, 0), 0xBDD7_3226_2FEB_6E95);
        assert_eq!(scenario_seed(42, 7), 0xCCF6_35EE_9E9E_2FA4);
        assert_eq!(scenario_seed(0xDEAD_BEEF, 123), 0xB41B_028C_503C_5893);
        assert_eq!(scenario_seed(u64::MAX, 0), 0xE4D9_7177_1B65_2C20);
        assert_eq!(scenario_seed(0, 1 << 32), 0x4609_3CF9_861E_C2E4);
    }

    #[test]
    fn distinct_scenarios_get_distinct_seeds() {
        let mut seen = std::collections::HashSet::new();
        for campaign in [0u64, 1, 42, u64::MAX] {
            for index in 0..1000u64 {
                assert!(
                    seen.insert(scenario_seed(campaign, index)),
                    "collision at campaign {campaign}, index {index}"
                );
            }
        }
    }
}
