//! Declarative scenario grids.
//!
//! A [`CampaignSpec`] describes a Monte Carlo evaluation campaign as a
//! cross product of axes — benchmarks × schemes × error rates × chunk
//! sizes × timeline scenarios × seed replicates — plus a base
//! [`SystemConfig`] and a campaign seed. [`CampaignSpec::scenarios`] enumerates the grid in a fixed,
//! documented order and assigns every scenario a dense index; the
//! scenario's fault seed is derived from `(campaign_seed, index)` by
//! [`crate::seed::scenario_seed`], so the spec alone fully determines
//! every random stream in the campaign.

use chunkpoint_core::{optimize, suboptimal, MitigationScheme, SystemConfig};
use chunkpoint_scenario::{parse_scenarios, ScenarioDef, TimelineEvent};
use chunkpoint_workloads::Benchmark;

use crate::json::JsonValue;
use crate::seed::scenario_seed;

/// How the scheme axis resolves to a concrete [`MitigationScheme`] for a
/// given benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeSpec {
    /// A fixed scheme, identical for every benchmark.
    Fixed(MitigationScheme),
    /// The hybrid scheme at the benchmark's optimizer point (Table I).
    Optimal,
    /// The hybrid scheme at the benchmark's smallest feasible chunk — the
    /// paper's "Proposed (sub-optimal)" column.
    Suboptimal,
    /// The optimizer point executed with the unsound single-parity
    /// detector (the Fig. 2a literal reading) — the detector-soundness
    /// counter-example.
    OptimalSingleParity,
}

impl SchemeSpec {
    /// Resolves to a concrete scheme for `benchmark` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if the optimizer finds no feasible design point for a
    /// benchmark (the paper's constraints always admit one).
    #[must_use]
    pub fn resolve(&self, benchmark: Benchmark, config: &SystemConfig) -> MitigationScheme {
        match *self {
            SchemeSpec::Fixed(scheme) => scheme,
            SchemeSpec::Optimal => {
                let best = optimize(benchmark, config)
                    .expect("campaign scheme axis: no feasible design point");
                MitigationScheme::Hybrid {
                    chunk_words: best.chunk_words,
                    l1_prime_t: best.l1_prime_t,
                }
            }
            SchemeSpec::Suboptimal => {
                let sub = suboptimal(benchmark, config)
                    .expect("campaign scheme axis: no feasible design point");
                MitigationScheme::Hybrid {
                    chunk_words: sub.chunk_words,
                    l1_prime_t: sub.l1_prime_t,
                }
            }
            SchemeSpec::OptimalSingleParity => {
                let best = optimize(benchmark, config)
                    .expect("campaign scheme axis: no feasible design point");
                MitigationScheme::HybridSingleParity {
                    chunk_words: best.chunk_words,
                    l1_prime_t: best.l1_prime_t,
                }
            }
        }
    }
}

/// One point of the campaign grid, fully resolved and seeded.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Dense position in the enumeration order (the seed-derivation key).
    pub index: usize,
    /// Benchmark under test.
    pub benchmark: Benchmark,
    /// Scheme-axis label (stable across benchmarks; used for grouping).
    pub scheme_label: String,
    /// Concrete scheme, with any chunk-axis override already applied.
    pub scheme: MitigationScheme,
    /// Strike rate λ for this scenario.
    pub error_rate: f64,
    /// Name of the timeline scenario applied to this cell, when the spec
    /// has a scenario axis (`None` on the implicit static-environment
    /// axis entry).
    pub scenario: Option<String>,
    /// Replicate number within the cell (0-based).
    pub replicate: u64,
    /// Derived fault-process seed.
    pub seed: u64,
}

impl Scenario {
    /// Chunk size of the scenario's hybrid scheme, if it has one.
    #[must_use]
    pub fn chunk_words(&self) -> Option<u32> {
        match self.scheme {
            MitigationScheme::Hybrid { chunk_words, .. }
            | MitigationScheme::HybridSingleParity { chunk_words, .. } => Some(chunk_words),
            _ => None,
        }
    }

    /// Canonical grid-cell key: every axis except the replicate,
    /// rendered with the report's own formatting discipline (`{:e}`
    /// rates, `-` for chunkless schemes). Replicates of one cell share
    /// the key; scenarios of different cells never do — the keying the
    /// adaptive controller aggregates per-cell statistics under.
    #[must_use]
    pub fn cell_key(&self) -> String {
        let chunk = match self.chunk_words() {
            Some(k) => k.to_string(),
            None => "-".to_owned(),
        };
        let mut key = format!(
            "{} · {} · {:e} · {}",
            self.benchmark.name(),
            self.scheme_label,
            self.error_rate,
            chunk
        );
        // Scenario-less grids keep their historical keys byte-for-byte.
        if let Some(name) = &self.scenario {
            key.push_str(" · ");
            key.push_str(name);
        }
        key
    }
}

/// A declarative campaign: axes, base configuration, campaign seed.
///
/// # Examples
///
/// ```
/// use chunkpoint_campaign::{CampaignSpec, SchemeSpec};
/// use chunkpoint_core::{MitigationScheme, SystemConfig};
/// use chunkpoint_workloads::Benchmark;
///
/// let mut config = SystemConfig::paper(0);
/// config.scale = 0.25;
/// let spec = CampaignSpec::new(config, 0xC0FFEE)
///     .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
///     .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
///     .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
///     .error_rates(&[1e-7, 1e-6])
///     .replicates(3);
/// // 2 benchmarks x 2 schemes x 2 rates x 3 replicates:
/// assert_eq!(spec.scenarios().len(), 24);
/// ```
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Base configuration; per-scenario overrides touch only the fault
    /// environment (rate + seed).
    pub base: SystemConfig,
    /// Root seed of the campaign's seed-derivation tree.
    pub campaign_seed: u64,
    benchmarks: Vec<Benchmark>,
    schemes: Vec<(String, SchemeSpec)>,
    error_rates: Vec<f64>,
    chunk_words: Vec<u32>,
    timeline_scenarios: Vec<ScenarioDef>,
    replicates: u64,
    normalize: bool,
    golden_check: bool,
    scenario_range: Option<(usize, usize)>,
}

/// Validates a prospective timeline-scenario axis: names must be unique
/// and every `task_switch` target must be a known benchmark (so the
/// engine never discovers an unresolvable override mid-campaign).
fn validate_scenario_axis(defs: &[ScenarioDef]) -> Result<(), String> {
    let mut seen = std::collections::BTreeSet::new();
    for def in defs {
        if !seen.insert(def.name.as_str()) {
            return Err(format!("scenarios: duplicate scenario name {:?}", def.name));
        }
        for event in &def.timeline {
            if let TimelineEvent::TaskSwitch { task, .. } = event {
                benchmark_from_name(task)
                    .map_err(|e| format!("scenario {:?}: task_switch: {e}", def.name))?;
            }
        }
    }
    Ok(())
}

impl CampaignSpec {
    /// Starts a spec over `base` with the given campaign seed. Defaults:
    /// all benchmarks, no schemes (add at least one), the base config's
    /// error rate, no chunk override, one replicate, normalization on.
    #[must_use]
    pub fn new(base: SystemConfig, campaign_seed: u64) -> Self {
        let error_rates = vec![base.faults.error_rate];
        Self {
            base,
            campaign_seed,
            benchmarks: Benchmark::ALL.to_vec(),
            schemes: Vec::new(),
            error_rates,
            chunk_words: Vec::new(),
            timeline_scenarios: Vec::new(),
            replicates: 1,
            normalize: true,
            golden_check: true,
            scenario_range: None,
        }
    }

    /// Sets the benchmark axis.
    #[must_use]
    pub fn benchmarks(mut self, benchmarks: &[Benchmark]) -> Self {
        self.benchmarks = benchmarks.to_vec();
        self
    }

    /// Appends one labelled entry to the scheme axis.
    #[must_use]
    pub fn scheme(mut self, label: &str, spec: SchemeSpec) -> Self {
        self.schemes.push((label.to_owned(), spec));
        self
    }

    /// Sets the error-rate (λ) axis.
    #[must_use]
    pub fn error_rates(mut self, rates: &[f64]) -> Self {
        assert!(!rates.is_empty(), "error-rate axis cannot be empty");
        self.error_rates = rates.to_vec();
        self
    }

    /// Sets the chunk-size axis. Hybrid schemes cross with every entry
    /// (their `chunk_words` is overridden); schemes without a chunk are
    /// unaffected and contribute one scenario per cell as usual.
    #[must_use]
    pub fn chunk_words(mut self, chunks: &[u32]) -> Self {
        self.chunk_words = chunks.to_vec();
        self
    }

    /// Sets the timeline-scenario axis. Every grid cell crosses with
    /// every named scenario: the cell's fault process follows the
    /// scenario's timeline and its result carries the scenario's
    /// `expect`-block verdict. An empty axis (the default) keeps the
    /// implicit static environment — one scenario-less entry per cell,
    /// with the pre-scenario wire rendering byte for byte.
    ///
    /// # Panics
    ///
    /// Panics on duplicate scenario names or a `task_switch` event naming
    /// an unknown benchmark — the same checks [`CampaignSpec::from_json`]
    /// reports as errors.
    #[must_use]
    pub fn timeline_scenarios(mut self, defs: &[ScenarioDef]) -> Self {
        if let Err(e) = validate_scenario_axis(defs) {
            panic!("{e}");
        }
        self.timeline_scenarios = defs.to_vec();
        self
    }

    /// Sets the number of seed replicates per grid cell.
    #[must_use]
    pub fn replicates(mut self, replicates: u64) -> Self {
        assert!(replicates > 0, "need at least one replicate");
        self.replicates = replicates;
        self
    }

    /// Enables/disables normalization: when on, every scenario also runs
    /// the same-seed *Default* denominator and reports energy/cycle
    /// ratios against it. Off roughly halves the work when only absolute
    /// numbers are needed.
    #[must_use]
    pub fn normalize(mut self, normalize: bool) -> Self {
        self.normalize = normalize;
        self
    }

    /// Enables/disables the golden-output comparison: when on, every
    /// scenario's output is checked against the benchmark's fault-free
    /// reference (one golden run per benchmark, shared by all workers).
    #[must_use]
    pub fn golden_check(mut self, golden_check: bool) -> Self {
        self.golden_check = golden_check;
        self
    }

    /// Restricts execution to the half-open slice `start..end` of the
    /// global scenario index space — the shard wire format. Enumeration
    /// ([`CampaignSpec::scenarios`]) still covers the whole grid with
    /// unchanged indices and seeds, so a ranged sub-spec computes exactly
    /// the rows the full campaign would, and per-shard journals merge
    /// back into the unsharded report byte for byte.
    ///
    /// # Panics
    ///
    /// Panics on an empty range (`start >= end`).
    #[must_use]
    pub fn scenario_range(mut self, start: usize, end: usize) -> Self {
        assert!(start < end, "scenario range must be non-empty");
        self.scenario_range = Some((start, end));
        self
    }

    /// The raw range restriction, if any (half-open, unclamped).
    #[must_use]
    pub fn range(&self) -> Option<(usize, usize)> {
        self.scenario_range
    }

    /// Drops any `scenario_range` restriction, recovering the parent
    /// campaign a ranged sub-spec was cut from. Every ranged sub-spec of
    /// one campaign shares the same `without_range` rendering (and
    /// therefore the same [`CampaignSpec::spec_hash`]) — the keying the
    /// coordinator's range-granular result cache groups sealed rows
    /// under, so rows sealed by one partitioning are findable by any
    /// other partitioning of the same campaign.
    #[must_use]
    pub fn without_range(mut self) -> Self {
        self.scenario_range = None;
        self
    }

    /// The half-open index range this spec actually executes, clamped to
    /// a grid of `grid` scenarios. An unranged spec runs everything.
    #[must_use]
    pub fn active_range(&self, grid: usize) -> std::ops::Range<usize> {
        match self.scenario_range {
            None => 0..grid,
            Some((start, end)) => start.min(grid)..end.min(grid),
        }
    }

    /// Whether scenarios carry normalized ratios.
    #[must_use]
    pub fn is_normalized(&self) -> bool {
        self.normalize
    }

    /// Whether scenarios carry the golden correctness verdict.
    #[must_use]
    pub fn checks_golden(&self) -> bool {
        self.golden_check
    }

    /// The benchmark axis (the engine pre-computes one golden per entry).
    #[must_use]
    pub fn benchmark_axis(&self) -> &[Benchmark] {
        &self.benchmarks
    }

    /// The timeline-scenario axis (empty on a static-environment spec).
    #[must_use]
    pub fn timeline_scenario_axis(&self) -> &[ScenarioDef] {
        &self.timeline_scenarios
    }

    /// Looks up a timeline scenario of the axis by name.
    #[must_use]
    pub fn scenario_def(&self, name: &str) -> Option<&ScenarioDef> {
        self.timeline_scenarios.iter().find(|d| d.name == name)
    }

    /// The number of seed replicates per grid cell. Because the
    /// enumeration order of [`CampaignSpec::scenarios`] keeps the
    /// replicate axis innermost, cell `c` occupies exactly the
    /// contiguous global index block `[c·R, (c+1)·R)` for
    /// `R = replicate_count()` — the geometry the adaptive controller's
    /// ranged sub-specs rely on.
    #[must_use]
    pub fn replicate_count(&self) -> u64 {
        self.replicates
    }

    /// Enumerates the full grid in the canonical order
    /// `benchmark → scheme → error rate → chunk → scenario → replicate`,
    /// assigning dense indices and derived seeds. A spec without a
    /// timeline-scenario axis contributes one implicit scenario-less
    /// entry per cell, preserving the pre-scenario enumeration exactly.
    ///
    /// The order — and therefore every derived seed — depends only on the
    /// spec, never on thread count or timing. Note the flip side: editing
    /// an axis shifts the indices (and seeds) of every later scenario,
    /// deliberately — a campaign is reproducible as a whole, not
    /// patchable cell by cell.
    ///
    /// # Panics
    ///
    /// Panics if the scheme axis is empty or a scheme spec fails to
    /// resolve (infeasible optimizer point).
    #[must_use]
    pub fn scenarios(&self) -> Vec<Scenario> {
        assert!(
            !self.schemes.is_empty(),
            "campaign needs at least one scheme"
        );
        let timeline_names: Vec<Option<String>> = if self.timeline_scenarios.is_empty() {
            vec![None]
        } else {
            self.timeline_scenarios
                .iter()
                .map(|d| Some(d.name.clone()))
                .collect()
        };
        let mut scenarios = Vec::new();
        for &benchmark in &self.benchmarks {
            for (label, spec) in &self.schemes {
                let resolved = spec.resolve(benchmark, &self.base);
                let variants: Vec<MitigationScheme> = match (resolved, self.chunk_words.as_slice())
                {
                    (MitigationScheme::Hybrid { l1_prime_t, .. }, chunks) if !chunks.is_empty() => {
                        chunks
                            .iter()
                            .map(|&chunk_words| MitigationScheme::Hybrid {
                                chunk_words,
                                l1_prime_t,
                            })
                            .collect()
                    }
                    (MitigationScheme::HybridSingleParity { l1_prime_t, .. }, chunks)
                        if !chunks.is_empty() =>
                    {
                        chunks
                            .iter()
                            .map(|&chunk_words| MitigationScheme::HybridSingleParity {
                                chunk_words,
                                l1_prime_t,
                            })
                            .collect()
                    }
                    _ => vec![resolved],
                };
                for &error_rate in &self.error_rates {
                    for &scheme in &variants {
                        for scenario_name in &timeline_names {
                            for replicate in 0..self.replicates {
                                let index = scenarios.len();
                                scenarios.push(Scenario {
                                    index,
                                    benchmark,
                                    scheme_label: label.clone(),
                                    scheme,
                                    error_rate,
                                    scenario: scenario_name.clone(),
                                    replicate,
                                    seed: scenario_seed(self.campaign_seed, index as u64),
                                });
                            }
                        }
                    }
                }
            }
        }
        scenarios
    }
}

// ---------------------------------------------------------------------------
// Spec serde: the wire format of a campaign
// ---------------------------------------------------------------------------

/// Current wire-format version of [`CampaignSpec::to_json`].
pub const SPEC_VERSION: u64 = 1;

pub(crate) fn benchmark_from_name(name: &str) -> Result<Benchmark, String> {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| {
            let known: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
            format!("unknown benchmark {name:?} (known: {})", known.join(", "))
        })
}

fn scheme_to_json(scheme: &MitigationScheme) -> JsonValue {
    match *scheme {
        MitigationScheme::Default => JsonValue::object().field("kind", "default"),
        MitigationScheme::HwEcc { t } => JsonValue::object()
            .field("kind", "hw-ecc")
            .field("t", u64::from(t)),
        MitigationScheme::SwRestart => JsonValue::object().field("kind", "sw-restart"),
        MitigationScheme::Hybrid {
            chunk_words,
            l1_prime_t,
        } => JsonValue::object()
            .field("kind", "hybrid")
            .field("chunk_words", u64::from(chunk_words))
            .field("l1_prime_t", u64::from(l1_prime_t)),
        MitigationScheme::HybridSingleParity {
            chunk_words,
            l1_prime_t,
        } => JsonValue::object()
            .field("kind", "hybrid-single-parity")
            .field("chunk_words", u64::from(chunk_words))
            .field("l1_prime_t", u64::from(l1_prime_t)),
        MitigationScheme::ScrubbedSecded { interval_cycles } => JsonValue::object()
            .field("kind", "scrubbed-secded")
            .field("interval_cycles", u64::from(interval_cycles)),
    }
}

fn field_u64(value: &JsonValue, key: &str, context: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("{context}: missing or non-integer {key:?}"))
}

fn field_f64(value: &JsonValue, key: &str, context: &str) -> Result<f64, String> {
    value
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("{context}: missing or non-numeric {key:?}"))
}

fn narrow<T: TryFrom<u64>>(raw: u64, what: &str) -> Result<T, String> {
    T::try_from(raw).map_err(|_| format!("{what} out of range: {raw}"))
}

fn scheme_from_json(value: &JsonValue) -> Result<MitigationScheme, String> {
    let kind = value
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("scheme: missing \"kind\"")?;
    match kind {
        "default" => Ok(MitigationScheme::Default),
        "sw-restart" => Ok(MitigationScheme::SwRestart),
        "hw-ecc" => Ok(MitigationScheme::HwEcc {
            t: narrow(field_u64(value, "t", "hw-ecc")?, "hw-ecc t")?,
        }),
        "hybrid" => Ok(MitigationScheme::Hybrid {
            chunk_words: narrow(field_u64(value, "chunk_words", "hybrid")?, "chunk_words")?,
            l1_prime_t: narrow(field_u64(value, "l1_prime_t", "hybrid")?, "l1_prime_t")?,
        }),
        "hybrid-single-parity" => Ok(MitigationScheme::HybridSingleParity {
            chunk_words: narrow(
                field_u64(value, "chunk_words", "hybrid-single-parity")?,
                "chunk_words",
            )?,
            l1_prime_t: narrow(
                field_u64(value, "l1_prime_t", "hybrid-single-parity")?,
                "l1_prime_t",
            )?,
        }),
        "scrubbed-secded" => Ok(MitigationScheme::ScrubbedSecded {
            interval_cycles: narrow(
                field_u64(value, "interval_cycles", "scrubbed-secded")?,
                "interval_cycles",
            )?,
        }),
        other => Err(format!("scheme: unknown kind {other:?}")),
    }
}

fn scheme_spec_to_json(spec: &SchemeSpec) -> JsonValue {
    match spec {
        SchemeSpec::Fixed(scheme) => JsonValue::object()
            .field("kind", "fixed")
            .field("scheme", scheme_to_json(scheme)),
        SchemeSpec::Optimal => JsonValue::object().field("kind", "optimal"),
        SchemeSpec::Suboptimal => JsonValue::object().field("kind", "suboptimal"),
        SchemeSpec::OptimalSingleParity => {
            JsonValue::object().field("kind", "optimal-single-parity")
        }
    }
}

fn scheme_spec_from_json(value: &JsonValue) -> Result<SchemeSpec, String> {
    let kind = value
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("scheme spec: missing \"kind\"")?;
    match kind {
        "fixed" => Ok(SchemeSpec::Fixed(scheme_from_json(
            value
                .get("scheme")
                .ok_or("fixed scheme spec: missing \"scheme\"")?,
        )?)),
        "optimal" => Ok(SchemeSpec::Optimal),
        "suboptimal" => Ok(SchemeSpec::Suboptimal),
        "optimal-single-parity" => Ok(SchemeSpec::OptimalSingleParity),
        other => Err(format!("scheme spec: unknown kind {other:?}")),
    }
}

impl CampaignSpec {
    /// Serializes the spec to its canonical JSON wire form — the format
    /// [`CampaignSpec::from_json`] accepts and the campaign service hashes
    /// for its content-addressed result cache.
    ///
    /// The rendering is deterministic (insertion-ordered keys,
    /// shortest-roundtrip floats), so equal specs always render to equal
    /// bytes and [`CampaignSpec::spec_hash`] is stable across processes
    /// and platforms.
    ///
    /// The base [`SystemConfig`] serializes as its campaign-relevant
    /// knobs (scale, fault environment, constraint overheads); the
    /// platform is pinned to the paper's LH7A400 — a spec cannot carry a
    /// custom platform over the wire.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let benchmarks: Vec<JsonValue> = self
            .benchmarks
            .iter()
            .map(|b| JsonValue::from(b.name()))
            .collect();
        let schemes: Vec<JsonValue> = self
            .schemes
            .iter()
            .map(|(label, spec)| {
                JsonValue::object()
                    .field("label", label.as_str())
                    .field("spec", scheme_spec_to_json(spec))
            })
            .collect();
        let error_rates: Vec<JsonValue> = self
            .error_rates
            .iter()
            .map(|&r| JsonValue::Float(r))
            .collect();
        let chunk_words: Vec<JsonValue> = self
            .chunk_words
            .iter()
            .map(|&k| JsonValue::from(u64::from(k)))
            .collect();
        let mut doc = JsonValue::object()
            .field("version", SPEC_VERSION)
            .field("campaign_seed", self.campaign_seed)
            .field(
                "base",
                JsonValue::object()
                    .field("scale", self.base.scale)
                    .field("error_rate", self.base.faults.error_rate)
                    .field("seed", self.base.faults.seed)
                    .field("area_overhead", self.base.constraints.area_overhead)
                    .field("cycle_overhead", self.base.constraints.cycle_overhead),
            )
            .field("benchmarks", JsonValue::Array(benchmarks))
            .field("schemes", JsonValue::Array(schemes))
            .field("error_rates", JsonValue::Array(error_rates))
            .field("chunk_words", JsonValue::Array(chunk_words))
            .field("replicates", self.replicates)
            .field("normalize", self.normalize)
            .field("golden_check", self.golden_check);
        // Like scenario_range below, the timeline-scenario axis is only
        // emitted when present, so scenario-less specs render (and hash)
        // exactly as they did before the axis existed.
        if !self.timeline_scenarios.is_empty() {
            let defs: Vec<JsonValue> = self
                .timeline_scenarios
                .iter()
                .map(ScenarioDef::to_json)
                .collect();
            doc = doc.field("scenarios", JsonValue::Array(defs));
        }
        // Emitted only when set: unranged specs keep their pre-shard
        // rendering, so every existing spec hash is stable — and every
        // ranged sub-spec hashes differently from its parent and from
        // every sibling range.
        if let Some((start, end)) = self.scenario_range {
            doc = doc.field(
                "scenario_range",
                JsonValue::Array(vec![
                    JsonValue::from(start as u64),
                    JsonValue::from(end as u64),
                ]),
            );
        }
        doc
    }

    /// Deserializes a spec from the wire form produced by
    /// [`CampaignSpec::to_json`]. The `base` object and both boolean
    /// flags are optional (defaulting to the paper configuration,
    /// normalization and golden checks on) so hand-written specs can stay
    /// minimal.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field on any structural,
    /// type, or domain violation (unknown benchmark or scheme kind, zero
    /// replicates, empty axes, non-finite or negative rates…).
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let version = field_u64(value, "version", "spec")?;
        if version != SPEC_VERSION {
            return Err(format!(
                "spec: unsupported version {version} (this build speaks {SPEC_VERSION})"
            ));
        }
        let campaign_seed = field_u64(value, "campaign_seed", "spec")?;
        let mut base = SystemConfig::paper(0);
        if let Some(base_json) = value.get("base") {
            base.faults.seed = field_u64(base_json, "seed", "base")?;
            base.scale = field_f64(base_json, "scale", "base")?;
            base.faults.error_rate = field_f64(base_json, "error_rate", "base")?;
            if !(base.scale.is_finite() && base.scale > 0.0) {
                return Err(format!(
                    "base: scale must be finite and > 0, got {}",
                    base.scale
                ));
            }
            if !(base.faults.error_rate.is_finite() && base.faults.error_rate >= 0.0) {
                return Err("base: error_rate must be finite and >= 0".to_owned());
            }
            let area = field_f64(base_json, "area_overhead", "base")?;
            let cycle = field_f64(base_json, "cycle_overhead", "base")?;
            if !(area > 0.0 && area < 1.0 && cycle > 0.0 && cycle < 1.0) {
                return Err("base: overheads must be in (0, 1)".to_owned());
            }
            base.constraints.area_overhead = area;
            base.constraints.cycle_overhead = cycle;
        }
        let mut spec = CampaignSpec::new(base, campaign_seed);
        let benchmarks = value
            .get("benchmarks")
            .and_then(JsonValue::as_array)
            .ok_or("spec: missing \"benchmarks\" array")?;
        if benchmarks.is_empty() {
            return Err("spec: benchmark axis cannot be empty".to_owned());
        }
        spec.benchmarks = benchmarks
            .iter()
            .map(|b| {
                b.as_str()
                    .ok_or_else(|| "benchmarks: entries must be strings".to_owned())
                    .and_then(benchmark_from_name)
            })
            .collect::<Result<_, _>>()?;
        let schemes = value
            .get("schemes")
            .and_then(JsonValue::as_array)
            .ok_or("spec: missing \"schemes\" array")?;
        if schemes.is_empty() {
            return Err("spec: scheme axis cannot be empty".to_owned());
        }
        spec.schemes = schemes
            .iter()
            .map(|entry| {
                let label = entry
                    .get("label")
                    .and_then(JsonValue::as_str)
                    .ok_or("schemes: entry missing \"label\"")?;
                let scheme_spec = scheme_spec_from_json(
                    entry.get("spec").ok_or("schemes: entry missing \"spec\"")?,
                )?;
                Ok((label.to_owned(), scheme_spec))
            })
            .collect::<Result<_, String>>()?;
        let error_rates = value
            .get("error_rates")
            .and_then(JsonValue::as_array)
            .ok_or("spec: missing \"error_rates\" array")?;
        if error_rates.is_empty() {
            return Err("spec: error-rate axis cannot be empty".to_owned());
        }
        spec.error_rates = error_rates
            .iter()
            .map(|r| match r.as_f64() {
                Some(rate) if rate.is_finite() && rate >= 0.0 => Ok(rate),
                _ => Err("error_rates: entries must be finite and >= 0".to_owned()),
            })
            .collect::<Result<_, _>>()?;
        spec.chunk_words = value
            .get("chunk_words")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|k| {
                let raw = k.as_u64().ok_or_else(|| {
                    "chunk_words: entries must be non-negative integers".to_owned()
                })?;
                let chunk: u32 = narrow(raw, "chunk_words entry")?;
                if chunk == 0 {
                    return Err("chunk_words: entries must be >= 1".to_owned());
                }
                Ok(chunk)
            })
            .collect::<Result<_, _>>()?;
        spec.replicates = field_u64(value, "replicates", "spec")?;
        if spec.replicates == 0 {
            return Err("spec: replicates must be at least 1".to_owned());
        }
        if let Some(flag) = value.get("normalize") {
            spec.normalize = flag
                .as_bool()
                .ok_or("spec: \"normalize\" must be a boolean")?;
        }
        if let Some(flag) = value.get("golden_check") {
            spec.golden_check = flag
                .as_bool()
                .ok_or("spec: \"golden_check\" must be a boolean")?;
        }
        if let Some(defs) = value.get("scenarios") {
            spec.timeline_scenarios =
                parse_scenarios(defs).map_err(|e| format!("scenarios: {e}"))?;
            validate_scenario_axis(&spec.timeline_scenarios)?;
        }
        if let Some(range) = value.get("scenario_range") {
            let parts = range
                .as_array()
                .ok_or("spec: \"scenario_range\" must be a [start, end) pair")?;
            if parts.len() != 2 {
                return Err(format!(
                    "spec: scenario_range needs exactly [start, end), got {} entries",
                    parts.len()
                ));
            }
            let bound = |part: &JsonValue, name: &str| {
                part.as_u64()
                    .ok_or_else(|| format!("scenario_range: {name} must be a non-negative integer"))
                    .and_then(|raw| narrow::<usize>(raw, "scenario_range bound"))
            };
            let start = bound(&parts[0], "start")?;
            let end = bound(&parts[1], "end")?;
            if start >= end {
                return Err(format!(
                    "spec: scenario_range [{start}, {end}) is empty — start must be < end"
                ));
            }
            spec.scenario_range = Some((start, end));
        }
        Ok(spec)
    }

    /// A stable 64-bit content hash of the spec: FNV-1a over the
    /// canonical [`CampaignSpec::to_json`] rendering. Equal specs hash
    /// equal on every platform; the campaign service uses this as the
    /// job/result-cache key, printed as 16 lowercase hex digits.
    #[must_use]
    pub fn spec_hash(&self) -> u64 {
        let rendered = self.to_json().render();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in rendered.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CampaignSpec {
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        CampaignSpec::new(config, 7)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .scheme(
                "Proposed",
                SchemeSpec::Fixed(MitigationScheme::Hybrid {
                    chunk_words: 16,
                    l1_prime_t: 8,
                }),
            )
            .replicates(2)
    }

    #[test]
    fn enumeration_is_dense_and_seeded() {
        let scenarios = small_spec().scenarios();
        assert_eq!(scenarios.len(), 4);
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.seed, scenario_seed(7, i as u64));
        }
        // Same spec, same grid — byte for byte.
        assert_eq!(scenarios, small_spec().scenarios());
    }

    #[test]
    fn chunk_axis_crosses_hybrids_only() {
        let spec = small_spec().chunk_words(&[8, 16, 32]);
        let scenarios = spec.scenarios();
        // Default contributes 2 (replicates), hybrid 3 chunks x 2 replicates.
        assert_eq!(scenarios.len(), 2 + 6);
        let chunks: Vec<Option<u32>> = scenarios.iter().map(Scenario::chunk_words).collect();
        assert_eq!(chunks.iter().filter(|c| c.is_none()).count(), 2);
        for &k in &[8u32, 16, 32] {
            assert_eq!(
                chunks.iter().filter(|c| **c == Some(k)).count(),
                2,
                "chunk {k}"
            );
        }
    }

    #[test]
    fn cells_are_contiguous_replicate_blocks() {
        let spec = small_spec().chunk_words(&[8, 16]);
        let r = spec.replicate_count() as usize;
        let grid = spec.scenarios();
        assert_eq!(grid.len() % r, 0);
        for (cell, block) in grid.chunks(r).enumerate() {
            let key = block[0].cell_key();
            for (offset, s) in block.iter().enumerate() {
                assert_eq!(s.cell_key(), key, "cell {cell} is not one key");
                assert_eq!(s.replicate, offset as u64);
            }
        }
        // Distinct cells carry distinct keys.
        let keys: std::collections::BTreeSet<String> =
            grid.iter().map(Scenario::cell_key).collect();
        assert_eq!(keys.len(), grid.len() / r);
    }

    #[test]
    fn optimal_scheme_resolves_to_feasible_hybrid() {
        let config = SystemConfig::paper(0);
        let scheme = SchemeSpec::Optimal.resolve(Benchmark::AdpcmDecode, &config);
        assert!(matches!(scheme, MitigationScheme::Hybrid { chunk_words, .. } if chunk_words > 0));
        let single = SchemeSpec::OptimalSingleParity.resolve(Benchmark::AdpcmDecode, &config);
        assert!(matches!(
            single,
            MitigationScheme::HybridSingleParity { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "at least one scheme")]
    fn empty_scheme_axis_is_rejected() {
        let _ = CampaignSpec::new(SystemConfig::paper(0), 0).scenarios();
    }

    fn full_spec() -> CampaignSpec {
        let mut config = SystemConfig::paper(3);
        config.scale = 0.5;
        config.faults.error_rate = 2e-6;
        CampaignSpec::new(config, 0xFEED)
            .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::JpegDecode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .scheme("HW", SchemeSpec::Fixed(MitigationScheme::HwEcc { t: 8 }))
            .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
            .scheme(
                "Proposed",
                SchemeSpec::Fixed(MitigationScheme::Hybrid {
                    chunk_words: 16,
                    l1_prime_t: 8,
                }),
            )
            .scheme("Optimal", SchemeSpec::Optimal)
            .scheme("Suboptimal", SchemeSpec::Suboptimal)
            .scheme("1-parity", SchemeSpec::OptimalSingleParity)
            .scheme(
                "Scrub",
                SchemeSpec::Fixed(MitigationScheme::ScrubbedSecded {
                    interval_cycles: 4096,
                }),
            )
            .error_rates(&[1e-7, 1e-6])
            .chunk_words(&[8, 32])
            .replicates(3)
            .normalize(false)
            .golden_check(false)
    }

    #[test]
    fn spec_serde_round_trips_every_axis() {
        let spec = full_spec();
        let json = spec.to_json();
        let back = CampaignSpec::from_json(&json).expect("round trip");
        assert_eq!(back.to_json().render(), json.render());
        assert_eq!(back.campaign_seed, spec.campaign_seed);
        assert_eq!(back.benchmarks, spec.benchmarks);
        assert_eq!(back.schemes, spec.schemes);
        assert_eq!(back.error_rates, spec.error_rates);
        assert_eq!(back.chunk_words, spec.chunk_words);
        assert_eq!(back.replicates, spec.replicates);
        assert_eq!(back.normalize, spec.normalize);
        assert_eq!(back.golden_check, spec.golden_check);
        assert_eq!(back.base, spec.base);
        // Byte-level round trip through the parser too.
        let reparsed = JsonValue::parse(&json.render()).expect("valid JSON");
        let again = CampaignSpec::from_json(&reparsed).expect("parse round trip");
        assert_eq!(again.spec_hash(), spec.spec_hash());
        // And the grid a wire-form spec enumerates is identical (checked
        // on the fixed-scheme spec: full_spec's optimizer entries are
        // deliberately infeasible at its scaled-down config).
        let fixed = small_spec();
        let fixed_back = CampaignSpec::from_json(&fixed.to_json()).expect("fixed round trip");
        assert_eq!(fixed_back.scenarios(), fixed.scenarios());
    }

    #[test]
    fn spec_hash_is_stable_and_content_sensitive() {
        let spec = full_spec();
        assert_eq!(spec.spec_hash(), full_spec().spec_hash());
        let reseeded = CampaignSpec {
            campaign_seed: spec.campaign_seed + 1,
            ..full_spec()
        };
        assert_ne!(spec.spec_hash(), reseeded.spec_hash());
        assert_ne!(spec.spec_hash(), full_spec().replicates(4).spec_hash());
    }

    #[test]
    fn spec_from_json_rejects_bad_documents() {
        let good = full_spec().to_json().render();
        for (mutation, expect) in [
            (good.replace("\"version\":1", "\"version\":99"), "version"),
            (good.replace("ADPCM encode", "ADPCM encoed"), "benchmark"),
            (
                good.replace("\"replicates\":3", "\"replicates\":0"),
                "replicates",
            ),
            (good.replace("sw-restart", "sw-restrat"), "kind"),
            (
                good.replace("\"error_rates\":[0.0000001,0.000001]", "\"error_rates\":[]"),
                "error-rate",
            ),
            (good.replace("\"schemes\":[", "\"schemas\":["), "schemes"),
        ] {
            assert_ne!(mutation, good, "mutation {expect:?} did not apply");
            let value = JsonValue::parse(&mutation).expect("still valid JSON");
            let err = CampaignSpec::from_json(&value).expect_err(expect);
            assert!(
                err.contains(expect),
                "error {err:?} should mention {expect:?}"
            );
        }
    }

    #[test]
    fn scenario_range_round_trips_and_rehashes() {
        let parent = small_spec();
        let ranged = small_spec().scenario_range(1, 3);
        assert_eq!(ranged.range(), Some((1, 3)));
        // Enumeration is untouched: same grid, same indices, same seeds.
        assert_eq!(ranged.scenarios(), parent.scenarios());
        // But the wire form (and therefore the content hash) differs —
        // from the parent and from any other range.
        assert_ne!(ranged.spec_hash(), parent.spec_hash());
        assert_ne!(
            ranged.spec_hash(),
            small_spec().scenario_range(0, 1).spec_hash()
        );
        let back = CampaignSpec::from_json(&ranged.to_json()).expect("ranged round trip");
        assert_eq!(back.range(), Some((1, 3)));
        assert_eq!(back.to_json().render(), ranged.to_json().render());
        // An unranged spec renders without the field at all (pre-shard
        // hashes stay stable).
        assert!(!parent.to_json().render().contains("scenario_range"));
    }

    #[test]
    fn active_range_clamps_to_grid() {
        let spec = small_spec();
        assert_eq!(spec.active_range(4), 0..4);
        assert_eq!(small_spec().scenario_range(1, 3).active_range(4), 1..3);
        // Ranges beyond the grid clamp rather than index out of bounds.
        assert_eq!(small_spec().scenario_range(2, 99).active_range(4), 2..4);
        assert!(small_spec().scenario_range(7, 9).active_range(4).is_empty());
    }

    #[test]
    fn bad_scenario_ranges_are_rejected() {
        let good = small_spec().scenario_range(1, 3).to_json().render();
        for (mutation, expect) in [
            (
                good.replace("\"scenario_range\":[1,3]", "\"scenario_range\":[3,1]"),
                "start must be < end",
            ),
            (
                good.replace("\"scenario_range\":[1,3]", "\"scenario_range\":[1]"),
                "exactly",
            ),
            (
                good.replace("\"scenario_range\":[1,3]", "\"scenario_range\":true"),
                "pair",
            ),
            (
                good.replace("\"scenario_range\":[1,3]", "\"scenario_range\":[-1,3]"),
                "non-negative",
            ),
        ] {
            assert_ne!(mutation, good, "mutation {expect:?} did not apply");
            let value = JsonValue::parse(&mutation).expect("still valid JSON");
            let err = CampaignSpec::from_json(&value).expect_err(expect);
            assert!(
                err.contains(expect),
                "error {err:?} should mention {expect:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_scenario_range_builder_panics() {
        let _ = small_spec().scenario_range(2, 2);
    }

    fn two_scenarios() -> Vec<ScenarioDef> {
        let mut burst = ScenarioDef::named("burst");
        burst.timeline = vec![TimelineEvent::FaultBurst {
            cycle: 1_000,
            words: 4,
            rate: 0.5,
        }];
        let mut calm = ScenarioDef::named("calm");
        calm.timeline = vec![TimelineEvent::Scrub { period: 4_096 }];
        vec![burst, calm]
    }

    #[test]
    fn scenario_axis_crosses_every_cell() {
        let plain = small_spec().scenarios();
        let grid = small_spec()
            .timeline_scenarios(&two_scenarios())
            .scenarios();
        // Every plain cell crosses with both named scenarios.
        assert_eq!(grid.len(), plain.len() * 2);
        for (i, s) in grid.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.seed, scenario_seed(7, i as u64));
            let name = s.scenario.as_deref().expect("axis entry has a name");
            // The scenario axis sits between chunk and replicate:
            // replicates stay innermost, scenarios alternate per block.
            assert_eq!(name, if (i / 2) % 2 == 0 { "burst" } else { "calm" });
            assert!(s.cell_key().ends_with(&format!(" · {name}")));
        }
        // Scenario-less grids keep scenario-less keys.
        assert!(plain.iter().all(|s| s.scenario.is_none()));
    }

    #[test]
    fn scenario_axis_round_trips_and_rehashes() {
        let plain = small_spec();
        let spec = small_spec().timeline_scenarios(&two_scenarios());
        assert_eq!(spec.timeline_scenario_axis().len(), 2);
        assert!(spec.scenario_def("burst").is_some());
        assert!(spec.scenario_def("missing").is_none());
        let back = CampaignSpec::from_json(&spec.to_json()).expect("scenario round trip");
        assert_eq!(back.to_json().render(), spec.to_json().render());
        assert_eq!(back.scenarios(), spec.scenarios());
        // The axis is part of the content hash…
        assert_ne!(spec.spec_hash(), plain.spec_hash());
        // …down to the timeline payload, not just the names.
        let mut edited = two_scenarios();
        edited[0].timeline = vec![TimelineEvent::FaultBurst {
            cycle: 2_000,
            words: 4,
            rate: 0.5,
        }];
        assert_ne!(
            spec.spec_hash(),
            small_spec().timeline_scenarios(&edited).spec_hash()
        );
        // A scenario-less spec renders without the field at all.
        assert!(!plain.to_json().render().contains("\"scenarios\""));
    }

    #[test]
    fn scenario_axis_rejects_bad_definitions() {
        let mut switcher = ScenarioDef::named("switch");
        switcher.timeline = vec![TimelineEvent::TaskSwitch {
            cycle: 0,
            task: "No such codec".to_owned(),
        }];
        // Inject past the builder's validation to exercise the parser's.
        let mut doctored = small_spec();
        doctored.timeline_scenarios = vec![switcher];
        let rendered = doctored.to_json();
        let err = CampaignSpec::from_json(&rendered).expect_err("unknown task_switch target");
        assert!(err.contains("unknown benchmark"), "got {err:?}");
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn scenario_builder_panics_on_unknown_task_switch_target() {
        let mut switcher = ScenarioDef::named("switch");
        switcher.timeline = vec![TimelineEvent::TaskSwitch {
            cycle: 0,
            task: "No such codec".to_owned(),
        }];
        let _ = small_spec().timeline_scenarios(&[switcher]);
    }

    #[test]
    #[should_panic(expected = "duplicate scenario name")]
    fn scenario_builder_panics_on_duplicate_names() {
        let twice = vec![ScenarioDef::named("dup"), ScenarioDef::named("dup")];
        let _ = small_spec().timeline_scenarios(&twice);
    }

    #[test]
    fn minimal_spec_defaults_match_builder() {
        let value = JsonValue::parse(
            r#"{"version":1,"campaign_seed":5,
                "benchmarks":["ADPCM encode"],
                "schemes":[{"label":"Default","spec":{"kind":"fixed","scheme":{"kind":"default"}}}],
                "error_rates":[0.000001],"replicates":1}"#,
        )
        .unwrap();
        let spec = CampaignSpec::from_json(&value).expect("minimal spec");
        assert!(spec.is_normalized() && spec.checks_golden());
        assert_eq!(spec.base, SystemConfig::paper(0));
        assert_eq!(spec.scenarios().len(), 1);
    }
}
