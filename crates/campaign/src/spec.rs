//! Declarative scenario grids.
//!
//! A [`CampaignSpec`] describes a Monte Carlo evaluation campaign as a
//! cross product of axes — benchmarks × schemes × error rates × chunk
//! sizes × seed replicates — plus a base [`SystemConfig`] and a campaign
//! seed. [`CampaignSpec::scenarios`] enumerates the grid in a fixed,
//! documented order and assigns every scenario a dense index; the
//! scenario's fault seed is derived from `(campaign_seed, index)` by
//! [`crate::seed::scenario_seed`], so the spec alone fully determines
//! every random stream in the campaign.

use chunkpoint_core::{optimize, suboptimal, MitigationScheme, SystemConfig};
use chunkpoint_workloads::Benchmark;

use crate::seed::scenario_seed;

/// How the scheme axis resolves to a concrete [`MitigationScheme`] for a
/// given benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeSpec {
    /// A fixed scheme, identical for every benchmark.
    Fixed(MitigationScheme),
    /// The hybrid scheme at the benchmark's optimizer point (Table I).
    Optimal,
    /// The hybrid scheme at the benchmark's smallest feasible chunk — the
    /// paper's "Proposed (sub-optimal)" column.
    Suboptimal,
    /// The optimizer point executed with the unsound single-parity
    /// detector (the Fig. 2a literal reading) — the detector-soundness
    /// counter-example.
    OptimalSingleParity,
}

impl SchemeSpec {
    /// Resolves to a concrete scheme for `benchmark` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if the optimizer finds no feasible design point for a
    /// benchmark (the paper's constraints always admit one).
    #[must_use]
    pub fn resolve(&self, benchmark: Benchmark, config: &SystemConfig) -> MitigationScheme {
        match *self {
            SchemeSpec::Fixed(scheme) => scheme,
            SchemeSpec::Optimal => {
                let best = optimize(benchmark, config)
                    .expect("campaign scheme axis: no feasible design point");
                MitigationScheme::Hybrid {
                    chunk_words: best.chunk_words,
                    l1_prime_t: best.l1_prime_t,
                }
            }
            SchemeSpec::Suboptimal => {
                let sub = suboptimal(benchmark, config)
                    .expect("campaign scheme axis: no feasible design point");
                MitigationScheme::Hybrid {
                    chunk_words: sub.chunk_words,
                    l1_prime_t: sub.l1_prime_t,
                }
            }
            SchemeSpec::OptimalSingleParity => {
                let best = optimize(benchmark, config)
                    .expect("campaign scheme axis: no feasible design point");
                MitigationScheme::HybridSingleParity {
                    chunk_words: best.chunk_words,
                    l1_prime_t: best.l1_prime_t,
                }
            }
        }
    }
}

/// One point of the campaign grid, fully resolved and seeded.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Dense position in the enumeration order (the seed-derivation key).
    pub index: usize,
    /// Benchmark under test.
    pub benchmark: Benchmark,
    /// Scheme-axis label (stable across benchmarks; used for grouping).
    pub scheme_label: String,
    /// Concrete scheme, with any chunk-axis override already applied.
    pub scheme: MitigationScheme,
    /// Strike rate λ for this scenario.
    pub error_rate: f64,
    /// Replicate number within the cell (0-based).
    pub replicate: u64,
    /// Derived fault-process seed.
    pub seed: u64,
}

impl Scenario {
    /// Chunk size of the scenario's hybrid scheme, if it has one.
    #[must_use]
    pub fn chunk_words(&self) -> Option<u32> {
        match self.scheme {
            MitigationScheme::Hybrid { chunk_words, .. }
            | MitigationScheme::HybridSingleParity { chunk_words, .. } => Some(chunk_words),
            _ => None,
        }
    }
}

/// A declarative campaign: axes, base configuration, campaign seed.
///
/// # Examples
///
/// ```
/// use chunkpoint_campaign::{CampaignSpec, SchemeSpec};
/// use chunkpoint_core::{MitigationScheme, SystemConfig};
/// use chunkpoint_workloads::Benchmark;
///
/// let mut config = SystemConfig::paper(0);
/// config.scale = 0.25;
/// let spec = CampaignSpec::new(config, 0xC0FFEE)
///     .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
///     .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
///     .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
///     .error_rates(&[1e-7, 1e-6])
///     .replicates(3);
/// // 2 benchmarks x 2 schemes x 2 rates x 3 replicates:
/// assert_eq!(spec.scenarios().len(), 24);
/// ```
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Base configuration; per-scenario overrides touch only the fault
    /// environment (rate + seed).
    pub base: SystemConfig,
    /// Root seed of the campaign's seed-derivation tree.
    pub campaign_seed: u64,
    benchmarks: Vec<Benchmark>,
    schemes: Vec<(String, SchemeSpec)>,
    error_rates: Vec<f64>,
    chunk_words: Vec<u32>,
    replicates: u64,
    normalize: bool,
    golden_check: bool,
}

impl CampaignSpec {
    /// Starts a spec over `base` with the given campaign seed. Defaults:
    /// all benchmarks, no schemes (add at least one), the base config's
    /// error rate, no chunk override, one replicate, normalization on.
    #[must_use]
    pub fn new(base: SystemConfig, campaign_seed: u64) -> Self {
        let error_rates = vec![base.faults.error_rate];
        Self {
            base,
            campaign_seed,
            benchmarks: Benchmark::ALL.to_vec(),
            schemes: Vec::new(),
            error_rates,
            chunk_words: Vec::new(),
            replicates: 1,
            normalize: true,
            golden_check: true,
        }
    }

    /// Sets the benchmark axis.
    #[must_use]
    pub fn benchmarks(mut self, benchmarks: &[Benchmark]) -> Self {
        self.benchmarks = benchmarks.to_vec();
        self
    }

    /// Appends one labelled entry to the scheme axis.
    #[must_use]
    pub fn scheme(mut self, label: &str, spec: SchemeSpec) -> Self {
        self.schemes.push((label.to_owned(), spec));
        self
    }

    /// Sets the error-rate (λ) axis.
    #[must_use]
    pub fn error_rates(mut self, rates: &[f64]) -> Self {
        assert!(!rates.is_empty(), "error-rate axis cannot be empty");
        self.error_rates = rates.to_vec();
        self
    }

    /// Sets the chunk-size axis. Hybrid schemes cross with every entry
    /// (their `chunk_words` is overridden); schemes without a chunk are
    /// unaffected and contribute one scenario per cell as usual.
    #[must_use]
    pub fn chunk_words(mut self, chunks: &[u32]) -> Self {
        self.chunk_words = chunks.to_vec();
        self
    }

    /// Sets the number of seed replicates per grid cell.
    #[must_use]
    pub fn replicates(mut self, replicates: u64) -> Self {
        assert!(replicates > 0, "need at least one replicate");
        self.replicates = replicates;
        self
    }

    /// Enables/disables normalization: when on, every scenario also runs
    /// the same-seed *Default* denominator and reports energy/cycle
    /// ratios against it. Off roughly halves the work when only absolute
    /// numbers are needed.
    #[must_use]
    pub fn normalize(mut self, normalize: bool) -> Self {
        self.normalize = normalize;
        self
    }

    /// Enables/disables the golden-output comparison: when on, every
    /// scenario's output is checked against the benchmark's fault-free
    /// reference (one golden run per benchmark, shared by all workers).
    #[must_use]
    pub fn golden_check(mut self, golden_check: bool) -> Self {
        self.golden_check = golden_check;
        self
    }

    /// Whether scenarios carry normalized ratios.
    #[must_use]
    pub fn is_normalized(&self) -> bool {
        self.normalize
    }

    /// Whether scenarios carry the golden correctness verdict.
    #[must_use]
    pub fn checks_golden(&self) -> bool {
        self.golden_check
    }

    /// The benchmark axis (the engine pre-computes one golden per entry).
    #[must_use]
    pub fn benchmark_axis(&self) -> &[Benchmark] {
        &self.benchmarks
    }

    /// Enumerates the full grid in the canonical order
    /// `benchmark → scheme → error rate → chunk → replicate`, assigning
    /// dense indices and derived seeds.
    ///
    /// The order — and therefore every derived seed — depends only on the
    /// spec, never on thread count or timing. Note the flip side: editing
    /// an axis shifts the indices (and seeds) of every later scenario,
    /// deliberately — a campaign is reproducible as a whole, not
    /// patchable cell by cell.
    ///
    /// # Panics
    ///
    /// Panics if the scheme axis is empty or a scheme spec fails to
    /// resolve (infeasible optimizer point).
    #[must_use]
    pub fn scenarios(&self) -> Vec<Scenario> {
        assert!(
            !self.schemes.is_empty(),
            "campaign needs at least one scheme"
        );
        let mut scenarios = Vec::new();
        for &benchmark in &self.benchmarks {
            for (label, spec) in &self.schemes {
                let resolved = spec.resolve(benchmark, &self.base);
                let variants: Vec<MitigationScheme> = match (resolved, self.chunk_words.as_slice())
                {
                    (MitigationScheme::Hybrid { l1_prime_t, .. }, chunks) if !chunks.is_empty() => {
                        chunks
                            .iter()
                            .map(|&chunk_words| MitigationScheme::Hybrid {
                                chunk_words,
                                l1_prime_t,
                            })
                            .collect()
                    }
                    (MitigationScheme::HybridSingleParity { l1_prime_t, .. }, chunks)
                        if !chunks.is_empty() =>
                    {
                        chunks
                            .iter()
                            .map(|&chunk_words| MitigationScheme::HybridSingleParity {
                                chunk_words,
                                l1_prime_t,
                            })
                            .collect()
                    }
                    _ => vec![resolved],
                };
                for &error_rate in &self.error_rates {
                    for &scheme in &variants {
                        for replicate in 0..self.replicates {
                            let index = scenarios.len();
                            scenarios.push(Scenario {
                                index,
                                benchmark,
                                scheme_label: label.clone(),
                                scheme,
                                error_rate,
                                replicate,
                                seed: scenario_seed(self.campaign_seed, index as u64),
                            });
                        }
                    }
                }
            }
        }
        scenarios
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CampaignSpec {
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        CampaignSpec::new(config, 7)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .scheme(
                "Proposed",
                SchemeSpec::Fixed(MitigationScheme::Hybrid {
                    chunk_words: 16,
                    l1_prime_t: 8,
                }),
            )
            .replicates(2)
    }

    #[test]
    fn enumeration_is_dense_and_seeded() {
        let scenarios = small_spec().scenarios();
        assert_eq!(scenarios.len(), 4);
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.seed, scenario_seed(7, i as u64));
        }
        // Same spec, same grid — byte for byte.
        assert_eq!(scenarios, small_spec().scenarios());
    }

    #[test]
    fn chunk_axis_crosses_hybrids_only() {
        let spec = small_spec().chunk_words(&[8, 16, 32]);
        let scenarios = spec.scenarios();
        // Default contributes 2 (replicates), hybrid 3 chunks x 2 replicates.
        assert_eq!(scenarios.len(), 2 + 6);
        let chunks: Vec<Option<u32>> = scenarios.iter().map(Scenario::chunk_words).collect();
        assert_eq!(chunks.iter().filter(|c| c.is_none()).count(), 2);
        for &k in &[8u32, 16, 32] {
            assert_eq!(
                chunks.iter().filter(|c| **c == Some(k)).count(),
                2,
                "chunk {k}"
            );
        }
    }

    #[test]
    fn optimal_scheme_resolves_to_feasible_hybrid() {
        let config = SystemConfig::paper(0);
        let scheme = SchemeSpec::Optimal.resolve(Benchmark::AdpcmDecode, &config);
        assert!(matches!(scheme, MitigationScheme::Hybrid { chunk_words, .. } if chunk_words > 0));
        let single = SchemeSpec::OptimalSingleParity.resolve(Benchmark::AdpcmDecode, &config);
        assert!(matches!(
            single,
            MitigationScheme::HybridSingleParity { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "at least one scheme")]
    fn empty_scheme_axis_is_rejected() {
        let _ = CampaignSpec::new(SystemConfig::paper(0), 0).scenarios();
    }
}
