//! Streaming statistical aggregation of scenario results.
//!
//! [`Summary`] is a Welford accumulator (numerically stable one-pass
//! mean/variance); [`Aggregator`] groups [`ScenarioResult`]s by a
//! user-chosen set of grid axes and keeps one bundle of summaries per
//! group — constant memory per group no matter how many replicates
//! stream through. Results must be pushed in scenario order for the
//! floating-point accumulation itself to be bit-reproducible; the engine
//! guarantees that by aggregating over its index-ordered result vector.

use std::collections::BTreeMap;

use crate::engine::ScenarioResult;

/// One-pass mean / variance / confidence-interval accumulator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Summary {
    /// An empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample standard deviation (0 for fewer than two points).
    #[must_use]
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95 % confidence interval of
    /// the mean, `1.96 · s / √n` (0 for fewer than two points).
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev() / (self.n as f64).sqrt()
        }
    }
}

/// Grid axes a campaign can group its aggregates by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Group by benchmark.
    Benchmark,
    /// Group by scheme-axis label.
    Scheme,
    /// Group by strike rate λ.
    ErrorRate,
    /// Group by the hybrid chunk size (non-hybrid schemes group as "-").
    ChunkWords,
}

impl Axis {
    /// The scenario's key component along this axis.
    #[must_use]
    pub fn key_of(&self, result: &ScenarioResult) -> String {
        let scenario = &result.scenario;
        match self {
            Axis::Benchmark => scenario.benchmark.name().to_owned(),
            Axis::Scheme => scenario.scheme_label.clone(),
            Axis::ErrorRate => format!("{:e}", scenario.error_rate),
            Axis::ChunkWords => scenario
                .chunk_words()
                .map_or_else(|| "-".to_owned(), |k| format!("{k}")),
        }
    }
}

/// Aggregate statistics of one group of scenarios.
#[derive(Debug, Clone, Default)]
pub struct GroupStats {
    /// Scenarios aggregated into this group.
    pub n: u64,
    /// Total energy, pJ.
    pub energy_pj: Summary,
    /// Execution cycles.
    pub cycles: Summary,
    /// Checkpoint rollbacks.
    pub rollbacks: Summary,
    /// Whole-task restarts.
    pub restarts: Summary,
    /// Energy normalized to the same-seed Default run (normalized
    /// campaigns only; empty otherwise).
    pub energy_ratio: Summary,
    /// Cycles normalized to the same-seed Default run.
    pub cycle_ratio: Summary,
    /// Scenarios whose output matched the fault-free golden reference.
    pub correct: u64,
    /// Scenarios that ran to completion.
    pub completed: u64,
}

impl GroupStats {
    fn push(&mut self, result: &ScenarioResult) {
        self.n += 1;
        self.energy_pj.push(result.energy_pj);
        self.cycles.push(result.cycles as f64);
        self.rollbacks.push(result.rollbacks as f64);
        self.restarts.push(result.restarts as f64);
        if let Some(ratio) = result.energy_ratio {
            self.energy_ratio.push(ratio);
        }
        if let Some(ratio) = result.cycle_ratio {
            self.cycle_ratio.push(ratio);
        }
        if result.correct == Some(true) {
            self.correct += 1;
        }
        if result.completed {
            self.completed += 1;
        }
    }
}

/// Groups streamed scenario results by a fixed set of axes.
#[derive(Debug, Clone)]
pub struct Aggregator {
    axes: Vec<Axis>,
    groups: BTreeMap<Vec<String>, GroupStats>,
}

impl Aggregator {
    /// An aggregator grouping by `axes` (empty = one global group).
    #[must_use]
    pub fn new(axes: &[Axis]) -> Self {
        Self {
            axes: axes.to_vec(),
            groups: BTreeMap::new(),
        }
    }

    /// Streams one result into its group.
    pub fn push(&mut self, result: &ScenarioResult) {
        let key: Vec<String> = self.axes.iter().map(|axis| axis.key_of(result)).collect();
        self.groups.entry(key).or_default().push(result);
    }

    /// The groups in lexicographic key order (deterministic).
    pub fn groups(&self) -> impl Iterator<Item = (&[String], &GroupStats)> {
        self.groups
            .iter()
            .map(|(key, stats)| (key.as_slice(), stats))
    }

    /// Looks up one group by its key parts (in axis order) — the lookup
    /// the table renderers use to print groups in paper order rather
    /// than lexicographic order.
    #[must_use]
    pub fn get(&self, key: &[&str]) -> Option<&GroupStats> {
        let key: Vec<String> = key.iter().map(|&part| part.to_owned()).collect();
        self.groups.get(&key)
    }

    /// Number of groups.
    #[must_use]
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether nothing has been aggregated yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The axes this aggregator groups by.
    #[must_use]
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = Summary::new();
        for &x in &data {
            s.push(x);
        }
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.stddev() - var.sqrt()).abs() < 1e-12);
        assert!(s.ci95_half_width() > 0.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn degenerate_summaries_are_zero() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }
}
