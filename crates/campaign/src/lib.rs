//! # chunkpoint-campaign
//!
//! A deterministic, parallel Monte Carlo **campaign engine** for the
//! chunkpoint evaluation grid. The paper's results are a cross product of
//! independent simulations — benchmark × mitigation scheme × strike rate
//! λ × chunk size × fault seed — and this crate turns that sweep into a
//! first-class workload:
//!
//! * **Declarative grids** — [`CampaignSpec`] builds the scenario cross
//!   product axis by axis ([`CampaignSpec::benchmarks`],
//!   [`CampaignSpec::scheme`], [`CampaignSpec::error_rates`],
//!   [`CampaignSpec::chunk_words`], [`CampaignSpec::replicates`]), with
//!   scheme entries that resolve per benchmark through the optimizer
//!   ([`SchemeSpec::Optimal`] / [`SchemeSpec::Suboptimal`]).
//! * **Deterministic parallelism** — scenarios execute on a
//!   work-stealing pool of `std::thread` workers ([`pool`]), but every
//!   scenario's fault seed is derived up front from
//!   `(campaign_seed, scenario_index)` via SplitMix64 ([`seed`]), so the
//!   per-scenario results are **bit-identical at any thread count**.
//! * **Streaming statistics** — per-scenario results aggregate into
//!   mean / stddev / 95 % CI summaries for energy, cycles, rollbacks and
//!   restarts, grouped by any subset of grid axes ([`stats`]).
//! * **Machine-readable reports** — [`CampaignResult::to_json`] emits the
//!   full campaign (metadata, per-scenario rows, aggregates) as JSON with
//!   no external dependencies ([`json`]); [`cli`] gives every experiment
//!   binary the same `--threads/--seeds/--seed/--json` surface.
//!
//! ## Example
//!
//! ```
//! use chunkpoint_campaign::{run_campaign, Axis, CampaignSpec, SchemeSpec};
//! use chunkpoint_core::{MitigationScheme, SystemConfig};
//! use chunkpoint_workloads::Benchmark;
//!
//! let mut config = SystemConfig::paper(0);
//! config.scale = 0.25; // short run for the doctest
//! let spec = CampaignSpec::new(config, 0xCA4A)
//!     .benchmarks(&[Benchmark::AdpcmEncode])
//!     .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
//!     .scheme(
//!         "Proposed",
//!         SchemeSpec::Fixed(MitigationScheme::Hybrid { chunk_words: 16, l1_prime_t: 8 }),
//!     )
//!     .replicates(2);
//!
//! // Thread count changes wall-clock time, never results:
//! let parallel = run_campaign(&spec, 4);
//! let serial = run_campaign(&spec, 1);
//! assert_eq!(parallel.results, serial.results);
//!
//! // Aggregate by scheme: every replicate completed and was correct.
//! for (_key, stats) in parallel.aggregate(&[Axis::Scheme]).groups() {
//!     assert_eq!(stats.correct, 2);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod diff;
pub mod engine;
/// The workspace JSON layer at its historical path — the types now live
/// in [`chunkpoint_scenario::json`] so the scenario DSL sits below the
/// campaign engine in the dependency graph.
pub mod json {
    pub use chunkpoint_scenario::json::*;
}
pub mod pool;
pub mod seed;
pub mod spec;
pub mod stats;
pub mod telemetry;

pub use cli::{write_json_report, CampaignArgs};
pub use diff::{contexts_match, diff_specs, translate_rows, SpecDiff};
pub use engine::{
    canonical_report_json, run_campaign, run_campaign_streaming, run_cell, CampaignResult,
    ScenarioResult,
};
pub use json::{JsonParseError, JsonValue};
pub use pool::CancelToken;
pub use seed::scenario_seed;
pub use spec::{CampaignSpec, Scenario, SchemeSpec, SPEC_VERSION};
pub use stats::{Aggregator, Axis, GroupStats, Summary};
pub use telemetry::TelemetrySink;
