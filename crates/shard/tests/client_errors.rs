//! Negative paths of the coordinator's HTTP client: every way a backend
//! can misbehave must surface a **typed** error — never a panic, never a
//! hang. Connection refused, torn responses of several shapes, a body
//! declared past the cap, and a backend that shuts down mid-poll.

use std::io::Write;
use std::net::TcpListener;
use std::time::{Duration, Instant};

use chunkpoint_campaign::{CampaignSpec, SchemeSpec};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_serve::server::{ServeConfig, Server};
use chunkpoint_shard::{exchange, run_sharded, ClientError, ShardConfig, ShardError};
use chunkpoint_workloads::Benchmark;

const TIMEOUT: Duration = Duration::from_secs(5);

/// A one-shot server that accepts a single connection, reads the request
/// head, writes `response` verbatim, and closes.
fn spawn_raw(response: &'static [u8]) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        // Drain the request head so the client is not racing our close.
        let mut buf = [0u8; 4096];
        let _ = std::io::Read::read(&mut stream, &mut buf);
        stream.write_all(response).expect("write raw response");
        // Dropping the stream closes the connection.
    });
    addr
}

#[test]
fn connection_refused_is_typed() {
    // Bind then drop: the port was just free, so connecting is refused.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").to_string()
    };
    let err = exchange(&addr, "GET", "/healthz", None, TIMEOUT).expect_err("refused");
    assert!(matches!(err, ClientError::Connect(_)), "{err}");
}

#[test]
fn unresolvable_address_is_typed() {
    let err = exchange("does-not-resolve.invalid:1", "GET", "/", None, TIMEOUT)
        .expect_err("unresolvable");
    assert!(matches!(err, ClientError::Connect(_)), "{err}");
}

#[test]
fn garbage_status_line_is_torn() {
    let addr = spawn_raw(b"NONSENSE GARBAGE\r\n\r\n");
    let err = exchange(&addr, "GET", "/", None, TIMEOUT).expect_err("garbage");
    assert!(matches!(err, ClientError::TornResponse(_)), "{err}");
}

#[test]
fn eof_before_status_line_is_torn() {
    let addr = spawn_raw(b"");
    let err = exchange(&addr, "GET", "/", None, TIMEOUT).expect_err("eof");
    assert!(matches!(err, ClientError::TornResponse(_)), "{err}");
}

#[test]
fn eof_inside_head_is_torn() {
    let addr = spawn_raw(b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n");
    let err = exchange(&addr, "GET", "/", None, TIMEOUT).expect_err("mid-head eof");
    assert!(matches!(err, ClientError::TornResponse(_)), "{err}");
}

#[test]
fn body_shorter_than_content_length_is_torn() {
    let addr = spawn_raw(b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort");
    let start = Instant::now();
    let err = exchange(&addr, "GET", "/", None, TIMEOUT).expect_err("short body");
    assert!(matches!(err, ClientError::TornResponse(_)), "{err}");
    // The tear is detected at EOF, not by burning the whole timeout.
    assert!(start.elapsed() < TIMEOUT, "hung on a torn body");
}

#[test]
fn unparseable_content_length_is_torn() {
    let addr = spawn_raw(b"HTTP/1.1 200 OK\r\nContent-Length: banana\r\n\r\n{}");
    let err = exchange(&addr, "GET", "/", None, TIMEOUT).expect_err("bad length");
    assert!(matches!(err, ClientError::TornResponse(_)), "{err}");
}

#[test]
fn oversized_declared_body_is_refused_without_allocating() {
    // 1 TiB declared: the error must come from the header alone.
    let addr = spawn_raw(b"HTTP/1.1 200 OK\r\nContent-Length: 1099511627776\r\n\r\n");
    let err = exchange(&addr, "GET", "/", None, TIMEOUT).expect_err("oversized");
    match err {
        ClientError::OversizedBody { declared, limit } => {
            assert_eq!(declared, 1_099_511_627_776);
            assert!(limit < declared);
        }
        other => panic!("expected OversizedBody, got {other}"),
    }
}

#[test]
fn non_utf8_body_is_torn() {
    let addr = spawn_raw(b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\n\xff\xfe\xfd\xfc");
    let err = exchange(&addr, "GET", "/", None, TIMEOUT).expect_err("non-utf8");
    assert!(matches!(err, ClientError::TornResponse(_)), "{err}");
}

/// A fake backend that accepts every submission and reports every job
/// failed — the deterministic-failure worst case (scenario that panics,
/// disk full everywhere). Serves connections until the test ends.
fn spawn_always_failing_backend() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            let mut buf = [0u8; 4096];
            let n = std::io::Read::read(&mut stream, &mut buf).unwrap_or(0);
            let head = String::from_utf8_lossy(&buf[..n]);
            let body = if head.starts_with("POST /campaigns") {
                r#"{"id":"00000000000000ff","status":"queued","scenarios":1,"completed":0}"#
            } else {
                r#"{"id":"00000000000000ff","status":"failed","scenarios":1,"completed":0,"error":"boom"}"#
            };
            let _ = write!(
                stream,
                "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
        }
    });
    addr
}

/// A shard whose job fails on every dispatch must exhaust its attempt
/// budget and surface a typed error — not ping-pong between backends
/// forever (transport strikes never fire here: every exchange succeeds).
#[test]
fn deterministically_failing_job_exhausts_attempts() {
    let backend = spawn_always_failing_backend();
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    let spec = CampaignSpec::new(config, 0xFA11)
        .benchmarks(&[Benchmark::AdpcmEncode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .normalize(false)
        .golden_check(false);
    let shard_config = ShardConfig {
        poll_interval: Duration::from_millis(2),
        request_timeout: Duration::from_secs(2),
        ..ShardConfig::default()
    };
    let start = Instant::now();
    let err = run_sharded(&spec, &[backend], &shard_config).expect_err("must give up");
    match &err {
        ShardError::Exhausted { detail, .. } => {
            assert!(detail.contains("dispatch attempts"), "{detail}");
        }
        other => panic!("expected Exhausted, got {other}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "coordinator looped instead of exhausting attempts"
    );
}

/// Mid-poll shutdown: the coordinator's only backend drains away while a
/// campaign is in flight. The coordinator must come back with a typed
/// `Exhausted` error — no panic, no hang.
#[test]
fn mid_poll_shutdown_surfaces_exhausted() {
    let dir = std::env::temp_dir().join(format!("chunkpoint_shard_midpoll_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: dir.clone(),
        max_jobs: 1,
        campaign_threads: 1,
        max_queued: 0,
        trace_out: None,
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let serving = std::thread::spawn(move || server.run());

    // A grid big enough to still be running when the shutdown lands.
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    let spec = CampaignSpec::new(config, 0x9D0F)
        .benchmarks(&[Benchmark::AdpcmEncode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .replicates(4000)
        .normalize(false)
        .golden_check(false);

    let coordinator = {
        let spec = spec.clone();
        let backends = vec![addr.clone()];
        let config = ShardConfig {
            poll_interval: Duration::from_millis(5),
            request_timeout: Duration::from_secs(2),
            backend_strikes: 2,
            ..ShardConfig::default()
        };
        std::thread::spawn(move || run_sharded(&spec, &backends, &config))
    };

    // Let the coordinator submit and start polling, then pull the rug.
    std::thread::sleep(Duration::from_millis(100));
    let _ = exchange(&addr, "POST", "/shutdown", None, TIMEOUT);
    serving.join().expect("server drained");

    let start = Instant::now();
    let outcome = coordinator
        .join()
        .expect("coordinator thread must not panic");
    let err = outcome.expect_err("shutdown mid-poll must fail the run");
    assert!(matches!(err, ShardError::Exhausted { .. }), "{err}");
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "coordinator hung after backend shutdown"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
