//! Property coverage for spec-range partitioning: for arbitrary grid
//! sizes and backend counts, the ranges must be disjoint, contiguous,
//! non-empty, and cover `0..n` exactly — and every ranged sub-spec must
//! hash differently from its siblings and from the parent spec (the
//! content-addressed job store must never conflate a shard with the
//! whole campaign or with another shard).

use std::collections::HashSet;

use chunkpoint_campaign::{CampaignSpec, SchemeSpec};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_shard::partition;
use chunkpoint_workloads::Benchmark;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Disjoint + contiguous + covering: walking the ranges in order
    /// must consume 0..n with no gap, overlap, or empty range.
    #[test]
    fn ranges_tile_the_grid_exactly(n in 0usize..500, shards in 1usize..16) {
        let ranges = partition(n, shards);
        prop_assert!(ranges.len() <= shards);
        prop_assert_eq!(ranges.len(), shards.min(n));
        let mut cursor = 0usize;
        for &(start, end) in &ranges {
            prop_assert_eq!(start, cursor, "gap or overlap at {}", start);
            prop_assert!(start < end, "empty range [{}, {})", start, end);
            cursor = end;
        }
        prop_assert_eq!(cursor, n, "ranges do not cover the grid");
        // Balance: sizes differ by at most one.
        if let (Some(max), Some(min)) = (
            ranges.iter().map(|&(s, e)| e - s).max(),
            ranges.iter().map(|&(s, e)| e - s).min(),
        ) {
            prop_assert!(max - min <= 1, "unbalanced split: {} vs {}", max, min);
        }
    }

    /// Ranged sub-spec hashes are pairwise distinct and distinct from
    /// the parent's — for any partitioning.
    #[test]
    fn ranged_spec_hashes_are_distinct(n in 1usize..200, shards in 1usize..12) {
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        let parent = CampaignSpec::new(config, n as u64)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default));
        let mut hashes = HashSet::new();
        hashes.insert(parent.spec_hash());
        for &(start, end) in &partition(n, shards) {
            let sub = parent.clone().scenario_range(start, end);
            prop_assert!(
                hashes.insert(sub.spec_hash()),
                "hash collision for range [{}, {})", start, end
            );
        }
    }
}
