//! Property coverage for spec-range partitioning: for arbitrary grid
//! sizes and backend counts, the ranges must be disjoint, contiguous,
//! non-empty, and cover `0..n` exactly — and every ranged sub-spec must
//! hash differently from its siblings and from the parent spec (the
//! content-addressed job store must never conflate a shard with the
//! whole campaign or with another shard).

use std::collections::HashSet;

use chunkpoint_campaign::{CampaignSpec, SchemeSpec};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_shard::{partition, partition_weighted};
use chunkpoint_workloads::Benchmark;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Disjoint + contiguous + covering: walking the ranges in order
    /// must consume 0..n with no gap, overlap, or empty range.
    #[test]
    fn ranges_tile_the_grid_exactly(n in 0usize..500, shards in 1usize..16) {
        let ranges = partition(n, shards);
        prop_assert!(ranges.len() <= shards);
        prop_assert_eq!(ranges.len(), shards.min(n));
        let mut cursor = 0usize;
        for &(start, end) in &ranges {
            prop_assert_eq!(start, cursor, "gap or overlap at {}", start);
            prop_assert!(start < end, "empty range [{}, {})", start, end);
            cursor = end;
        }
        prop_assert_eq!(cursor, n, "ranges do not cover the grid");
        // Balance: sizes differ by at most one.
        if let (Some(max), Some(min)) = (
            ranges.iter().map(|&(s, e)| e - s).max(),
            ranges.iter().map(|&(s, e)| e - s).min(),
        ) {
            prop_assert!(max - min <= 1, "unbalanced split: {} vs {}", max, min);
        }
    }

    /// Weighted partitioning keeps the tiling invariants with empty
    /// ranges allowed: exactly one range per weight, contiguous,
    /// disjoint, covering `0..n`.
    #[test]
    fn weighted_ranges_tile_the_grid(
        n in 0usize..500,
        weights in proptest::collection::vec(0.01f64..10.0, 1..12),
    ) {
        let ranges = partition_weighted(n, &weights);
        prop_assert_eq!(ranges.len(), weights.len());
        let mut cursor = 0usize;
        for &(start, end) in &ranges {
            prop_assert_eq!(start, cursor, "gap or overlap at {}", start);
            prop_assert!(end >= start);
            cursor = end;
        }
        prop_assert_eq!(cursor, n, "weighted ranges do not cover the grid");
    }

    /// Monotonicity: a strictly larger weight never receives a smaller
    /// range than a smaller weight does.
    #[test]
    fn weighted_sizes_are_monotone_in_weight(
        n in 1usize..400,
        weights in proptest::collection::vec(0.01f64..10.0, 2..10),
    ) {
        let ranges = partition_weighted(n, &weights);
        let size = |k: usize| ranges[k].1 - ranges[k].0;
        for i in 0..weights.len() {
            for j in 0..weights.len() {
                if weights[i] > weights[j] {
                    prop_assert!(
                        size(i) >= size(j),
                        "weight {} got {} scenarios but weight {} got {}",
                        weights[i], size(i), weights[j], size(j)
                    );
                }
            }
        }
    }

    /// Uniform weights degenerate to `partition`: exactly for grids at
    /// least as large as the shard count, and up to dropping empty
    /// ranges for smaller grids.
    #[test]
    fn uniform_weights_match_partition(n in 0usize..400, shards in 1usize..12) {
        let weighted = partition_weighted(n, &vec![1.0; shards]);
        if n >= shards {
            prop_assert_eq!(weighted, partition(n, shards));
        } else {
            let nonempty: Vec<(usize, usize)> =
                weighted.into_iter().filter(|&(s, e)| s < e).collect();
            prop_assert_eq!(nonempty, partition(n, shards));
        }
    }

    /// Ranged sub-spec hashes are pairwise distinct and distinct from
    /// the parent's — for any partitioning.
    #[test]
    fn ranged_spec_hashes_are_distinct(n in 1usize..200, shards in 1usize..12) {
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        let parent = CampaignSpec::new(config, n as u64)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default));
        let mut hashes = HashSet::new();
        hashes.insert(parent.spec_hash());
        for &(start, end) in &partition(n, shards) {
            let sub = parent.clone().scenario_range(start, end);
            prop_assert!(
                hashes.insert(sub.spec_hash()),
                "hash collision for range [{}, {})", start, end
            );
        }
    }
}
