//! Property coverage for the circuit breaker and its deterministic
//! backoff: over arbitrary failure/success sequences on a synthetic
//! clock, the breaker must never admit a request while open, must offer
//! a half-open probe the moment its cooldown elapses, and — because
//! every delay derives from `(seed, step)` — two breakers with the same
//! seed must walk identical schedules. The caller-owned clock is what
//! makes this possible: years of
//! schedule run in microseconds, no sleeping involved.

use std::time::Duration;

use chunkpoint_shard::{Backoff, BreakerState, CircuitBreaker};
use proptest::prelude::*;

/// One step of a synthetic breaker history.
#[derive(Debug, Clone)]
enum Op {
    /// Report a failed exchange.
    Fail,
    /// Report a successful exchange.
    Succeed,
    /// Let this much synthetic time pass.
    Advance(u64),
}

/// Decodes a raw draw into a weighted op: 4/9 fail, 2/9 succeed, 3/9
/// advance by up to five synthetic seconds.
fn decode_op(raw: u64) -> Op {
    match raw % 9 {
        0..=3 => Op::Fail,
        4..=5 => Op::Succeed,
        _ => Op::Advance(1 + raw / 9 % 4_999),
    }
}

/// Builds a backoff whose cap is `factor` times its base, both in
/// milliseconds — `(1..200, 1..30)` spans sub-base caps after clamping
/// through wide ladders.
fn make_backoff(base_ms: u64, factor: u64, seed: u64) -> Backoff {
    Backoff::new(
        Duration::from_millis(base_ms),
        Duration::from_millis(base_ms * factor),
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The breaker's core contract: `ready` is **never** true while the
    /// state is `Open`, under any interleaving of failures, successes,
    /// and time — and the two views (`state`/`ready`) always agree.
    #[test]
    fn never_ready_while_open(
        threshold in 1u32..6,
        base_ms in 1u64..200,
        factor in 1u64..30,
        seed in any::<u64>(),
        raw_ops in proptest::collection::vec(any::<u64>(), 1..120),
    ) {
        let mut breaker = CircuitBreaker::new(threshold, make_backoff(base_ms, factor, seed));
        let mut now = Duration::ZERO;
        for op in raw_ops.into_iter().map(decode_op) {
            match op {
                Op::Fail => { breaker.record_failure(now); }
                Op::Succeed => breaker.record_success(),
                Op::Advance(ms) => now += Duration::from_millis(ms),
            }
            let state = breaker.state(now);
            prop_assert_eq!(
                breaker.ready(now),
                state != BreakerState::Open,
                "ready/state disagree at {:?} in {:?}", now, state
            );
            if state == BreakerState::Open {
                let until = breaker.retry_at().expect("open must have a deadline");
                prop_assert!(until > now, "open with an elapsed deadline");
            }
        }
    }

    /// The half-open window is exact: an open breaker refuses a request
    /// one nanosecond before its deadline and offers the probe at the
    /// deadline itself — and a success at any point closes it fully.
    #[test]
    fn half_open_probes_exactly_at_the_deadline(
        threshold in 1u32..6,
        base_ms in 1u64..200,
        factor in 1u64..30,
        seed in any::<u64>(),
        reopen_rounds in 0u32..6,
    ) {
        let mut breaker = CircuitBreaker::new(threshold, make_backoff(base_ms, factor, seed));
        let mut now = Duration::from_millis(1);
        // Drive to open.
        for _ in 0..threshold {
            breaker.record_failure(now);
        }
        prop_assert_eq!(breaker.state(now), BreakerState::Open);
        // Each round: cooldown boundary is exact, failed probe re-opens
        // with a cooldown at least as long (monotone ladder up to the
        // cap).
        let mut last_cooldown = Duration::ZERO;
        for round in 0..reopen_rounds {
            let until = breaker.retry_at().expect("open has a deadline");
            let cooldown = until - now;
            prop_assert!(
                cooldown >= last_cooldown,
                "round {}: cooldown shrank from {:?} to {:?}", round, last_cooldown, cooldown
            );
            last_cooldown = cooldown;
            prop_assert!(!breaker.ready(until - Duration::from_nanos(1)));
            prop_assert_eq!(breaker.state(until), BreakerState::HalfOpen);
            prop_assert!(breaker.ready(until), "probe refused at the deadline");
            now = until;
            prop_assert!(breaker.record_failure(now), "failed probe must report re-open");
        }
        breaker.record_success();
        prop_assert_eq!(breaker.state(now), BreakerState::Closed);
        prop_assert_eq!(breaker.opens(), 0);
        prop_assert!(breaker.ready(now));
    }

    /// Below the threshold the breaker stays closed no matter how the
    /// failures are spread over time; the threshold-th consecutive
    /// failure opens it; any intervening success resets the count.
    #[test]
    fn threshold_counts_consecutive_failures_only(
        threshold in 2u32..8,
        base_ms in 1u64..200,
        factor in 1u64..30,
        seed in any::<u64>(),
        gap_ms in 0u64..10_000,
    ) {
        let mut breaker = CircuitBreaker::new(threshold, make_backoff(base_ms, factor, seed));
        let mut now = Duration::ZERO;
        // threshold - 1 failures, then a success: still closed, and the
        // next threshold - 1 failures are again below the bar.
        for _ in 0..threshold - 1 {
            prop_assert!(!breaker.record_failure(now), "opened below threshold");
            now += Duration::from_millis(gap_ms);
        }
        breaker.record_success();
        for _ in 0..threshold - 1 {
            prop_assert!(!breaker.record_failure(now), "success did not reset the count");
            now += Duration::from_millis(gap_ms);
        }
        prop_assert_eq!(breaker.state(now), BreakerState::Closed);
        prop_assert!(breaker.record_failure(now), "threshold-th failure must open");
        prop_assert_eq!(breaker.state(now), BreakerState::Open);
    }

    /// Determinism: the same seed yields bit-identical delay schedules
    /// and breaker timelines, for any base/cap geometry.
    #[test]
    fn same_seed_identical_schedules(
        base_ms in 1u64..200,
        factor in 1u64..30,
        seed in any::<u64>(),
    ) {
        let (a, b) = (
            make_backoff(base_ms, factor, seed),
            make_backoff(base_ms, factor, seed),
        );
        for step in 0..16 {
            prop_assert_eq!(a.delay(step), b.delay(step), "step {} diverged", step);
            prop_assert!(a.delay(step) <= a.max(), "step {} over the cap", step);
        }
        // Two breakers with the same seed, driven identically, stay in
        // lockstep at every instant.
        let mut x = CircuitBreaker::new(2, make_backoff(base_ms, factor, seed));
        let mut y = CircuitBreaker::new(2, make_backoff(base_ms, factor, seed));
        let mut now = Duration::ZERO;
        for round in 0u64..8 {
            now += Duration::from_millis(round * 7 + 1);
            prop_assert_eq!(x.record_failure(now), y.record_failure(now));
            prop_assert_eq!(x.retry_at(), y.retry_at(), "timelines diverged");
            prop_assert_eq!(x.state(now), y.state(now));
        }
    }
}
