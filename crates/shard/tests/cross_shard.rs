//! Cross-process shard harness: the acceptance test for the coordinator.
//!
//! Real `serve` processes are launched on ephemeral ports; the same spec
//! runs sharded across them and unsharded in-process, and the reports
//! must be **byte-identical**. Then the hostile variant: one backend is
//! `SIGKILL`ed mid-campaign, the coordinator must re-dispatch its range
//! to a survivor, and the merged bytes must *still* be identical —
//! sharding, crashes, and re-dispatch are invisible in the output.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use chunkpoint_campaign::{canonical_report_json, run_campaign, CampaignSpec, SchemeSpec};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_serve::{JobStore, REPORT_AXES};
use chunkpoint_shard::{partition, run_sharded, ShardConfig};
use chunkpoint_workloads::Benchmark;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chunkpoint_shard_{}_{tag}", std::process::id()))
}

/// The `serve` binary lives next to this test binary's parent directory
/// (`target/<profile>/serve`); it belongs to `chunkpoint_serve`, so
/// Cargo does not export a `CARGO_BIN_EXE_serve` for this crate — but a
/// workspace `cargo test`/`cargo build` always compiles it.
fn serve_bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // <profile>/deps/
    if path.ends_with("deps") {
        path.pop(); // <profile>/
    }
    let bin = path.join(format!("serve{}", std::env::consts::EXE_SUFFIX));
    assert!(
        bin.is_file(),
        "serve binary not found at {} — build the workspace first (`cargo build`)",
        bin.display()
    );
    bin
}

struct ServeProcess {
    child: Child,
    addr: String,
}

impl ServeProcess {
    /// Starts a real `serve` on an ephemeral port and waits until it
    /// answers `/healthz`.
    fn start(data_dir: &PathBuf, port_file: &PathBuf) -> Self {
        let _ = std::fs::remove_file(port_file);
        let child = Command::new(serve_bin())
            .args([
                "--addr",
                "127.0.0.1:0",
                "--data-dir",
                data_dir.to_str().expect("utf8 dir"),
                "--port-file",
                port_file.to_str().expect("utf8 path"),
                "--jobs",
                "1",
                "--threads",
                "1",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn serve");
        let deadline = Instant::now() + Duration::from_secs(60);
        let port: u16 = loop {
            if let Ok(raw) = std::fs::read_to_string(port_file) {
                if let Ok(port) = raw.trim().parse() {
                    break port;
                }
            }
            assert!(Instant::now() < deadline, "serve never wrote its port");
            std::thread::sleep(Duration::from_millis(10));
        };
        let addr = format!("127.0.0.1:{port}");
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Ok((200, _)) =
                chunkpoint_shard::exchange(&addr, "GET", "/healthz", None, Duration::from_secs(5))
            {
                break;
            }
            assert!(Instant::now() < deadline, "serve never became healthy");
            std::thread::sleep(Duration::from_millis(10));
        }
        Self { child, addr }
    }
}

impl Drop for ServeProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn shutdown(serve: &ServeProcess) {
    let _ = chunkpoint_shard::exchange(
        &serve.addr,
        "POST",
        "/shutdown",
        None,
        Duration::from_secs(5),
    );
}

/// Sharded across two live backends, the merged report is byte-identical
/// to an unsharded in-process single-threaded run.
#[test]
fn sharded_run_matches_unsharded_bytes() {
    // Live telemetry throughout: the engine sink meters the in-process
    // reference run and the coordinator traces every dispatch — the
    // byte-identity assert below proves both are out-of-band.
    let _ = chunkpoint_telemetry::install_campaign_metrics();
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    let spec = CampaignSpec::new(config, 0x54A6D)
        .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .error_rates(&[1e-6, 1e-5])
        .replicates(3);

    let dirs: Vec<(PathBuf, PathBuf)> = (0..2)
        .map(|k| {
            (
                temp_dir(&format!("clean{k}")),
                temp_dir(&format!("clean{k}_port")),
            )
        })
        .collect();
    for (data, _) in &dirs {
        let _ = std::fs::remove_dir_all(data);
    }
    let serves: Vec<ServeProcess> = dirs
        .iter()
        .map(|(data, port)| ServeProcess::start(data, port))
        .collect();
    let backends: Vec<String> = serves.iter().map(|s| s.addr.clone()).collect();

    let trace_out = temp_dir("clean_trace");
    let _ = std::fs::remove_file(&trace_out);
    let shard_config = ShardConfig {
        tracer: chunkpoint_telemetry::Tracer::to_file(&trace_out).expect("trace sink"),
        ..ShardConfig::default()
    };
    let run = run_sharded(&spec, &backends, &shard_config).expect("sharded run");
    assert_eq!(run.shards, 2);
    assert_eq!(run.dispatches, 2, "clean run should not re-dispatch");
    assert_eq!(run.failures, 0);

    let reference = run_campaign(&spec, 1);
    let expected =
        canonical_report_json(spec.campaign_seed, &reference.results, &REPORT_AXES).render();
    assert_eq!(run.report, expected, "sharded bytes diverged");

    // The dispatch trace is structured and complete: one dispatched
    // and one shard_done event per shard, every record well-formed.
    let trace = std::fs::read_to_string(&trace_out).expect("trace file");
    let names: Vec<String> = trace
        .lines()
        .map(|line| {
            let record = chunkpoint_campaign::JsonValue::parse(line).expect("trace line is JSON");
            record
                .get("name")
                .and_then(chunkpoint_campaign::JsonValue::as_str)
                .expect("record has a name")
                .to_owned()
        })
        .collect();
    assert_eq!(names.iter().filter(|n| *n == "dispatched").count(), 2);
    assert_eq!(names.iter().filter(|n| *n == "shard_done").count(), 2);
    let _ = std::fs::remove_file(&trace_out);

    for serve in &serves {
        shutdown(serve);
    }
    for (data, port) in &dirs {
        let _ = std::fs::remove_dir_all(data);
        let _ = std::fs::remove_file(port);
    }
}

/// A grid big enough that the victim shard is reliably mid-run when the
/// kill lands (full-scale scenarios with same-seed Default denominators
/// and golden comparisons).
fn kill_spec() -> CampaignSpec {
    let config = SystemConfig::paper(0);
    CampaignSpec::new(config, 0x5111_C1DE)
        .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .scheme(
            "Proposed",
            SchemeSpec::Fixed(MitigationScheme::Hybrid {
                chunk_words: 16,
                l1_prime_t: 8,
            }),
        )
        .error_rates(&[1e-6, 1e-5])
        .replicates(10)
}

/// The headline: SIGKILL one backend mid-campaign; the coordinator
/// re-dispatches its range to a survivor and the merged report is still
/// byte-identical to the unsharded single-threaded run.
#[test]
fn sigkilled_shard_redispatches_and_matches_unsharded_bytes() {
    let spec = kill_spec();
    let total = spec.scenarios().len();

    let dirs: Vec<(PathBuf, PathBuf)> = (0..3)
        .map(|k| {
            (
                temp_dir(&format!("kill{k}")),
                temp_dir(&format!("kill{k}_port")),
            )
        })
        .collect();
    for (data, _) in &dirs {
        let _ = std::fs::remove_dir_all(data);
    }
    let mut serves: Vec<ServeProcess> = dirs
        .iter()
        .map(|(data, port)| ServeProcess::start(data, port))
        .collect();
    let backends: Vec<String> = serves.iter().map(|s| s.addr.clone()).collect();

    // The coordinator assigns shard k to backend k; shard 2's sub-spec
    // id is a pure function of the spec, so the test can watch the
    // victim's own job directly.
    let ranges = partition(total, backends.len());
    assert_eq!(ranges.len(), 3);
    let victim_range = ranges[2];
    let victim_id = JobStore::job_id(&spec.clone().scenario_range(victim_range.0, victim_range.1));
    let victim_addr = backends[2].clone();

    // Drive the coordinator on its own thread; the test thread plays
    // chaos monkey.
    let coordinator = {
        let spec = spec.clone();
        let backends = backends.clone();
        std::thread::spawn(move || run_sharded(&spec, &backends, &ShardConfig::default()))
    };

    // Wait until the victim has journaled at least one scenario of its
    // range but cannot have finished, then SIGKILL it.
    let deadline = Instant::now() + Duration::from_secs(120);
    let completed_at_kill = loop {
        if let Ok((200, body)) = chunkpoint_shard::exchange(
            &victim_addr,
            "GET",
            &format!("/campaigns/{victim_id}"),
            None,
            Duration::from_secs(5),
        ) {
            let doc = chunkpoint_campaign::JsonValue::parse(&body).expect("status json");
            let completed = doc
                .get("completed")
                .and_then(chunkpoint_campaign::JsonValue::as_u64)
                .expect("completed") as usize;
            let state = doc
                .get("status")
                .and_then(chunkpoint_campaign::JsonValue::as_str)
                .expect("status")
                .to_owned();
            assert_ne!(state, "failed", "{body}");
            assert_ne!(
                state, "done",
                "victim finished its whole range before the kill — grow kill_spec"
            );
            if completed >= 1 && state == "running" {
                break completed;
            }
        }
        assert!(Instant::now() < deadline, "victim shard never got underway");
        std::thread::sleep(Duration::from_millis(1));
    };
    let victim_total = victim_range.1 - victim_range.0;
    serves[2].child.kill().expect("SIGKILL victim");
    let _ = serves[2].child.wait();
    assert!(
        completed_at_kill < victim_total,
        "victim finished its {victim_total}-scenario range ({completed_at_kill}) before \
         the kill — grow kill_spec so the crash lands mid-run"
    );

    // The coordinator must notice, re-dispatch, and converge.
    let run = coordinator
        .join()
        .expect("coordinator thread")
        .expect("sharded run with kill");
    assert_eq!(run.shards, 3);
    assert!(
        run.dispatches > 3,
        "no re-dispatch happened (dispatches = {}) — the kill was not observed",
        run.dispatches
    );
    assert!(run.failures >= 1, "kill left no failure trace");

    // The acceptance bar: byte-identical to the unsharded
    // single-threaded run.
    let reference = run_campaign(&spec, 1);
    let expected =
        canonical_report_json(spec.campaign_seed, &reference.results, &REPORT_AXES).render();
    assert_eq!(
        run.report, expected,
        "sharded-with-kill report diverged from the unsharded run"
    );
    assert_eq!(run.results.len(), total);

    for serve in &serves[..2] {
        shutdown(serve);
    }
    for (data, port) in &dirs {
        let _ = std::fs::remove_dir_all(data);
        let _ = std::fs::remove_file(port);
    }
}
