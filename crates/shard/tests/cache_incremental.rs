//! Cross-process acceptance tests for the coordinator's range-granular
//! result cache and spec-diffed incremental campaigns.
//!
//! Real `serve` processes on ephemeral ports, real coordinator runs
//! against them — the `cross_shard.rs` harness — plus a disk cache in
//! the middle. The invariants: a warm cache re-splices across
//! coordinator restarts and re-partitioned backend sets without a
//! single dispatch; a corrupted cache file degrades to a partial miss,
//! never wrong bytes; and editing one axis value re-executes only the
//! changed cells while producing report bytes identical to a clean
//! full run.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use chunkpoint_campaign::{
    canonical_report_json, diff_specs, run_campaign, translate_rows, CampaignSpec, CancelToken,
    SchemeSpec,
};
use chunkpoint_core::{MitigationScheme, SystemConfig};
use chunkpoint_serve::REPORT_AXES;
use chunkpoint_shard::{run_sharded_ctl, RangeCache, ShardConfig, ShardEvent};
use chunkpoint_workloads::Benchmark;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chunkpoint_cache_it_{}_{tag}", std::process::id()))
}

/// See `cross_shard.rs`: the `serve` binary sits next to this test
/// binary's parent directory and a workspace build always compiles it.
fn serve_bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // <profile>/deps/
    if path.ends_with("deps") {
        path.pop(); // <profile>/
    }
    let bin = path.join(format!("serve{}", std::env::consts::EXE_SUFFIX));
    assert!(
        bin.is_file(),
        "serve binary not found at {} — build the workspace first (`cargo build`)",
        bin.display()
    );
    bin
}

struct ServeProcess {
    child: Child,
    addr: String,
}

impl ServeProcess {
    /// Starts a real `serve` on an ephemeral port and waits until it
    /// answers `/healthz`.
    fn start(data_dir: &PathBuf, port_file: &PathBuf) -> Self {
        let _ = std::fs::remove_file(port_file);
        let child = Command::new(serve_bin())
            .args([
                "--addr",
                "127.0.0.1:0",
                "--data-dir",
                data_dir.to_str().expect("utf8 dir"),
                "--port-file",
                port_file.to_str().expect("utf8 path"),
                "--jobs",
                "1",
                "--threads",
                "1",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn serve");
        let deadline = Instant::now() + Duration::from_secs(60);
        let port: u16 = loop {
            if let Ok(raw) = std::fs::read_to_string(port_file) {
                if let Ok(port) = raw.trim().parse() {
                    break port;
                }
            }
            assert!(Instant::now() < deadline, "serve never wrote its port");
            std::thread::sleep(Duration::from_millis(10));
        };
        let addr = format!("127.0.0.1:{port}");
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Ok((200, _)) =
                chunkpoint_shard::exchange(&addr, "GET", "/healthz", None, Duration::from_secs(5))
            {
                break;
            }
            assert!(Instant::now() < deadline, "serve never became healthy");
            std::thread::sleep(Duration::from_millis(10));
        }
        Self { child, addr }
    }
}

impl Drop for ServeProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn shutdown(serve: &ServeProcess) {
    let _ = chunkpoint_shard::exchange(
        &serve.addr,
        "POST",
        "/shutdown",
        None,
        Duration::from_secs(5),
    );
}

fn spec_with_rates(rates: &[f64]) -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    CampaignSpec::new(config, 0xCAC4E)
        .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .error_rates(rates)
        .replicates(3)
}

fn cached_config(cache_dir: &PathBuf) -> ShardConfig {
    ShardConfig {
        cache_dir: Some(cache_dir.clone()),
        ..ShardConfig::default()
    }
}

/// Warm-cache behavior across coordinator restarts: a second run — a
/// brand-new coordinator invocation, also against a *different* backend
/// count — splices everything from disk and dispatches nothing, with
/// byte-identical reports throughout; a corrupted cache file degrades
/// that to a partial re-execution, still byte-identical.
#[test]
fn warm_cache_splices_across_restart_and_repartition() {
    let spec = spec_with_rates(&[1e-6, 1e-5]);
    let total = spec.scenarios().len();
    let expected = {
        let reference = run_campaign(&spec, 1);
        canonical_report_json(spec.campaign_seed, &reference.results, &REPORT_AXES).render()
    };
    let cache_dir = temp_dir("warm_cache");
    let _ = std::fs::remove_dir_all(&cache_dir);

    let dirs: Vec<(PathBuf, PathBuf)> = (0..2)
        .map(|k| {
            (
                temp_dir(&format!("warm{k}")),
                temp_dir(&format!("warm{k}_port")),
            )
        })
        .collect();
    for (data, _) in &dirs {
        let _ = std::fs::remove_dir_all(data);
    }
    let serves: Vec<ServeProcess> = dirs
        .iter()
        .map(|(data, port)| ServeProcess::start(data, port))
        .collect();
    let backends: Vec<String> = serves.iter().map(|s| s.addr.clone()).collect();
    let config = cached_config(&cache_dir);

    // Cold cache: a normal two-shard run that seals its rows to disk.
    let cold = run_sharded_ctl(&spec, &backends, None, &config, &CancelToken::new(), |_| {})
        .expect("cold run");
    assert_eq!(cold.report, expected);
    assert_eq!(cold.dispatches, 2);
    assert_eq!(cold.spliced, 0, "a cold cache cannot splice");

    // "Coordinator restart": a fresh run over the same cache dir must
    // splice the whole grid without touching a backend.
    let warm = run_sharded_ctl(&spec, &backends, None, &config, &CancelToken::new(), |_| {})
        .expect("warm run");
    assert_eq!(warm.report, expected, "spliced bytes diverged");
    assert_eq!(warm.dispatches, 0, "warm cache still dispatched");
    assert_eq!(warm.spliced, total);

    // Re-partitioned: one backend instead of two. The cache is keyed
    // by range under the campaign, not by the old partitioning, so the
    // splice still covers everything.
    let repartitioned = run_sharded_ctl(
        &spec,
        &backends[..1],
        None,
        &config,
        &CancelToken::new(),
        |_| {},
    )
    .expect("repartitioned run");
    assert_eq!(repartitioned.report, expected);
    assert_eq!(repartitioned.dispatches, 0);
    assert_eq!(repartitioned.spliced, total);

    // Corrupt one cache file (torn tail): its range degrades to a
    // miss and re-executes; the other range still splices; the bytes
    // are still identical.
    let campaign_dir = RangeCache::new(&cache_dir).campaign_dir(&spec);
    let mut files: Vec<PathBuf> = std::fs::read_dir(&campaign_dir)
        .expect("campaign dir")
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|e| e == "jsonl"))
        .collect();
    files.sort();
    assert_eq!(files.len(), 2, "one sealed file per cold-run shard");
    let victim = &files[0];
    let text = std::fs::read_to_string(victim).expect("victim file");
    std::fs::write(victim, &text[..text.len() / 2]).expect("tear victim");
    let after_corruption =
        run_sharded_ctl(&spec, &backends, None, &config, &CancelToken::new(), |_| {})
            .expect("run over torn cache");
    assert_eq!(
        after_corruption.report, expected,
        "corruption leaked into the bytes"
    );
    assert!(
        after_corruption.dispatches >= 1,
        "the torn range was not re-executed"
    );
    assert!(
        after_corruption.spliced > 0 && after_corruption.spliced < total,
        "expected a partial splice, got {} of {total}",
        after_corruption.spliced
    );

    // A different campaign (new seed) shares nothing: its ranged spec
    // hashes differ, so the warm cache is invisible to it.
    let other = {
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        CampaignSpec::new(config, 0xD1FF)
            .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
            .error_rates(&[1e-6, 1e-5])
            .replicates(3)
    };
    assert!(
        RangeCache::new(&cache_dir)
            .load(&other, &other.scenarios())
            .is_empty(),
        "a different campaign loaded stale rows"
    );

    for serve in &serves {
        shutdown(serve);
    }
    for (data, port) in &dirs {
        let _ = std::fs::remove_dir_all(data);
        let _ = std::fs::remove_file(port);
    }
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// The headline acceptance test: complete a campaign, edit one axis
/// value, seed the new spec's cache from the spec diff, and re-run —
/// only the changed cells dispatch, and the report bytes are identical
/// to a clean full run of the edited spec.
#[test]
fn one_axis_edit_executes_only_changed_cells_with_identical_bytes() {
    let old_spec = spec_with_rates(&[1e-6, 1e-5]);
    let new_spec = spec_with_rates(&[1e-6, 2e-5]);
    let cache_dir = temp_dir("incremental_cache");
    let _ = std::fs::remove_dir_all(&cache_dir);

    let dirs: Vec<(PathBuf, PathBuf)> = (0..2)
        .map(|k| {
            (
                temp_dir(&format!("inc{k}")),
                temp_dir(&format!("inc{k}_port")),
            )
        })
        .collect();
    for (data, _) in &dirs {
        let _ = std::fs::remove_dir_all(data);
    }
    let serves: Vec<ServeProcess> = dirs
        .iter()
        .map(|(data, port)| ServeProcess::start(data, port))
        .collect();
    let backends: Vec<String> = serves.iter().map(|s| s.addr.clone()).collect();
    let config = cached_config(&cache_dir);

    // Complete the original campaign with the cache on.
    let baseline = run_sharded_ctl(
        &old_spec,
        &backends,
        None,
        &config,
        &CancelToken::new(),
        |_| {},
    )
    .expect("baseline run");
    assert_eq!(baseline.spliced, 0);

    // The edited spec hashes to its own campaign directory: before
    // seeding, the warm cache is invisible to it (stale rejection).
    let cache = RangeCache::new(&cache_dir);
    let new_grid = new_spec.scenarios();
    assert!(
        cache.load(&new_spec, &new_grid).is_empty(),
        "the edited spec must not see the old campaign's files"
    );

    // Seed: diff the specs, translate the reusable rows, seal them
    // under the edited spec's key — exactly what `shard --baseline`
    // does.
    let old_rows: Vec<_> = cache
        .load(&old_spec, &old_spec.scenarios())
        .into_values()
        .collect();
    assert_eq!(old_rows.len(), old_spec.scenarios().len());
    let translated = translate_rows(&old_spec, &new_spec, &old_rows);
    let diff = diff_specs(&old_spec, &new_spec);
    assert_eq!(
        diff.reused(),
        new_grid.len() / 2,
        "half the grid survives the edit"
    );
    assert_eq!(translated.len(), diff.reused());
    cache
        .store_scattered(&new_spec, &translated)
        .expect("seed the edited spec's cache");

    // Incremental run: collect every dispatched range to prove only
    // the changed cells executed.
    let mut dispatched: Vec<(usize, usize)> = Vec::new();
    let incremental = run_sharded_ctl(
        &new_spec,
        &backends,
        None,
        &config,
        &CancelToken::new(),
        |event| {
            if let ShardEvent::Dispatched { range, .. } = event {
                dispatched.push(*range);
            }
        },
    )
    .expect("incremental run");

    let reference = run_campaign(&new_spec, 1);
    let expected =
        canonical_report_json(new_spec.campaign_seed, &reference.results, &REPORT_AXES).render();
    assert_eq!(
        incremental.report, expected,
        "incremental bytes diverged from the clean run"
    );
    assert_eq!(incremental.spliced, diff.reused());

    let executed: BTreeSet<usize> = dispatched
        .iter()
        .flat_map(|&(start, end)| start..end)
        .collect();
    let reused: BTreeSet<usize> = diff.pairs.iter().map(|&(_, new)| new).collect();
    let changed: BTreeSet<usize> = (0..new_grid.len())
        .filter(|i| !reused.contains(i))
        .collect();
    assert_eq!(
        executed, changed,
        "dispatched ranges must cover exactly the changed cells"
    );

    // The incremental run sealed what it executed: one more pass over
    // the cache completes without any dispatch at all.
    let rerun = run_sharded_ctl(
        &new_spec,
        &backends,
        None,
        &config,
        &CancelToken::new(),
        |_| {},
    )
    .expect("fully cached rerun");
    assert_eq!(rerun.report, expected);
    assert_eq!(rerun.dispatches, 0);
    assert_eq!(rerun.spliced, new_grid.len());

    for serve in &serves {
        shutdown(serve);
    }
    for (data, port) in &dirs {
        let _ = std::fs::remove_dir_all(data);
        let _ = std::fs::remove_file(port);
    }
    let _ = std::fs::remove_dir_all(&cache_dir);
}
