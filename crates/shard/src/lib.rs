//! # chunkpoint-shard
//!
//! A **scenario-range shard coordinator** over multiple
//! [`chunkpoint_serve`] instances: take one
//! [`CampaignSpec`](chunkpoint_campaign::CampaignSpec), split its
//! scenario index space into contiguous ranges (the spec wire format's
//! optional `scenario_range` field), submit one ranged sub-spec per
//! backend, poll to completion — re-dispatching a failed or unreachable
//! shard to a surviving backend — and merge the per-shard journals into
//! one canonical report.
//!
//! The three layers:
//!
//! * [`partition`](mod@partition) — splits `0..n` into at most `k`
//!   contiguous, non-empty, disjoint ranges covering the grid exactly
//!   (evenly, or proportionally to backend weights);
//! * [`client`] — the coordinator's std-only HTTP client with **typed**
//!   errors (connect vs. mid-exchange I/O vs. torn response vs.
//!   oversized body), bounded in time and memory against misbehaving
//!   peers;
//! * [`coordinator`] — the dispatch loop and the journal merge.
//!
//! ## Why the merged report is byte-identical to a single machine
//!
//! Every scenario's fault seed derives from `(campaign_seed,
//! global_index)` and a ranged sub-spec still enumerates the *whole*
//! grid (the range only restricts execution), so a shard computes
//! exactly the rows the unsharded campaign would — on any backend, any
//! number of times. The merge sorts rows by global scenario index, and
//! the report is the timing-free
//! [`chunkpoint_campaign::canonical_report_json`]. The result: sharding,
//! backend failures, and re-dispatches are all invisible in the output,
//! which `crates/shard/tests/cross_shard.rs` proves by `SIGKILL`ing a
//! real backend mid-campaign and comparing bytes.
//!
//! ## Example
//!
//! ```no_run
//! use chunkpoint_campaign::{CampaignSpec, SchemeSpec};
//! use chunkpoint_core::{MitigationScheme, SystemConfig};
//! use chunkpoint_shard::{run_sharded, ShardConfig};
//! use chunkpoint_workloads::Benchmark;
//!
//! let spec = CampaignSpec::new(SystemConfig::paper(0), 7)
//!     .benchmarks(&[Benchmark::AdpcmEncode])
//!     .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
//!     .replicates(8);
//! let backends = vec!["127.0.0.1:8077".to_owned(), "127.0.0.1:8078".to_owned()];
//! let run = run_sharded(&spec, &backends, &ShardConfig::default()).expect("sharded campaign");
//! println!("{} scenarios over {} shards", run.results.len(), run.shards);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod breaker;
pub mod cache;
pub mod client;
pub mod coordinator;
mod metrics;
pub mod partition;

pub use breaker::{Backoff, BreakerState, CircuitBreaker};
pub use cache::{RangeCache, CACHE_VERSION};
pub use client::{
    classify_submit, exchange, healthz, BackendHealth, ClientError, SubmitOutcome,
    MAX_RESPONSE_BYTES,
};
pub use metrics::cache_evictions;

pub use coordinator::{
    fetch_journal_rows, merged_report, run_sharded, run_sharded_ctl, PartialCampaign, ShardConfig,
    ShardError, ShardEvent, ShardRun,
};
pub use partition::{partition, partition_weighted, validate_weights};
