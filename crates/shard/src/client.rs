//! The coordinator's HTTP client: one `std::net` round trip per call,
//! with **typed** failure modes.
//!
//! The coordinator's whole job is deciding what a backend failure means
//! (strike it, re-dispatch its shard, give up), so unlike the service's
//! own convenience client ([`chunkpoint_serve::http::request`], which
//! folds everything into `std::io::Error`) this one distinguishes the
//! cases the dispatch loop reacts to differently — and it is hardened
//! against a misbehaving peer: one deadline bounds the **whole**
//! exchange in time (re-armed before every read, so trickled bytes
//! cannot stretch it), and hard caps on the response head and body
//! bound it in memory. No input a backend can send makes these
//! functions panic or hang.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use chunkpoint_campaign::JsonValue;

/// Hard cap on a response body the coordinator will buffer. Shard
/// journals of big grids are large; anything past this is a misbehaving
/// peer, not a report.
pub const MAX_RESPONSE_BYTES: usize = 64 * 1024 * 1024;

/// Hard cap on a response head (status line + headers). The service's
/// heads are a few hundred bytes; anything near this is garbage.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One HTTP exchange's failure, typed by what the coordinator should do
/// about it.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP connection could not be established (backend down,
    /// unreachable, or the address does not resolve) — a backend strike.
    Connect(std::io::Error),
    /// The socket died or timed out mid-exchange — also a strike, but
    /// the request may have been acted on.
    Io(std::io::Error),
    /// The peer sent bytes that do not form a complete HTTP response
    /// (garbage status line, EOF mid-head, body shorter than its
    /// `Content-Length`, non-UTF-8 body).
    TornResponse(String),
    /// The peer declared or streamed a body past [`MAX_RESPONSE_BYTES`].
    /// Detected from the header when one is sent, so the allocation
    /// never happens.
    OversizedBody {
        /// Bytes the peer declared (or had already streamed when the cap
        /// tripped).
        declared: usize,
        /// The cap that refused them.
        limit: usize,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Io(e) => write!(f, "socket error mid-exchange: {e}"),
            ClientError::TornResponse(why) => write!(f, "torn response: {why}"),
            ClientError::OversizedBody { declared, limit } => {
                write!(
                    f,
                    "response body of {declared} bytes exceeds the {limit}-byte cap"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

fn torn<T>(why: impl Into<String>) -> Result<T, ClientError> {
    Err(ClientError::TornResponse(why.into()))
}

/// How a backend answered a `POST /campaigns` submit, classified by
/// what the caller should do about it — the triage both the shard
/// coordinator and the unified executor API's remote path share.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// The job was accepted (or cache-answered); here is its id.
    Accepted(String),
    /// A 4xx: the spec itself was refused. Every backend would say the
    /// same, so retrying elsewhere cannot help.
    Rejected {
        /// The HTTP status.
        status: u16,
        /// The error body.
        body: String,
    },
    /// Anything else — 5xx store trouble, 503 draining, a 2xx with no
    /// id in it — is this backend's problem, not the spec's: retry or
    /// strike it.
    Retryable {
        /// The HTTP status.
        status: u16,
        /// A rendered description of what was wrong.
        detail: String,
    },
}

/// Classifies one submit response (status + body) into a
/// [`SubmitOutcome`].
#[must_use]
pub fn classify_submit(status: u16, body: String) -> SubmitOutcome {
    match status {
        200 | 202 => match JsonValue::parse(&body)
            .ok()
            .as_ref()
            .and_then(|doc| doc.get("id"))
            .and_then(JsonValue::as_str)
        {
            Some(id) => SubmitOutcome::Accepted(id.to_owned()),
            None => SubmitOutcome::Retryable {
                status,
                detail: format!("submit answered {status} with no id"),
            },
        },
        // 429 (admission control shed the submit) and 408 (the backend
        // timed the request out) are about the backend's load, not the
        // spec: retrying — elsewhere, or here after the breaker's
        // cooldown — is exactly right.
        408 | 429 => SubmitOutcome::Retryable {
            status,
            detail: format!("submit answered {status}: {body}"),
        },
        400..=499 => SubmitOutcome::Rejected { status, body },
        _ => SubmitOutcome::Retryable {
            status,
            detail: format!("submit answered {status}: {body}"),
        },
    }
}

/// A backend's `GET /healthz` answer, parsed: the service's
/// [`JobCounts`](chunkpoint_serve::JobCounts) fields plus the shed
/// counter and uptime. The live-load signal
/// (`queued + running = load()`) is what healthz-driven partition
/// weighting keys on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendHealth {
    /// Jobs waiting for a runner thread.
    pub queued: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Jobs finished with a cached result.
    pub done: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Jobs failed.
    pub failed: u64,
    /// Submits refused by admission control since startup (cumulative).
    pub shed: u64,
    /// Seconds since the backend bound its listener.
    pub uptime_secs: u64,
    /// The liveness verdict (the service always answers `"ok"`).
    pub status: String,
}

impl BackendHealth {
    /// The backend's live load: jobs queued plus jobs running — the
    /// signal [`partition_weighted`](crate::partition_weighted)-based
    /// dispatch weights against.
    #[must_use]
    pub fn load(&self) -> u64 {
        self.queued + self.running
    }
}

/// Fetches and parses `GET /healthz` from `addr`.
///
/// # Errors
///
/// Transport failures surface as their [`ClientError`] variants; a
/// non-200 answer or a document missing any counter field is a
/// [`ClientError::TornResponse`] — either way the caller treats the
/// backend as unreadable, not as idle.
pub fn healthz(addr: &str, timeout: Duration) -> Result<BackendHealth, ClientError> {
    let (status, body) = exchange(addr, "GET", "/healthz", None, timeout)?;
    if status != 200 {
        return torn(format!("healthz answered {status}: {body}"));
    }
    let doc = match JsonValue::parse(&body) {
        Ok(doc) => doc,
        Err(e) => return torn(format!("healthz body is not JSON: {e}")),
    };
    let counter = |key: &str| -> Result<u64, ClientError> {
        match doc.get(key).and_then(JsonValue::as_u64) {
            Some(n) => Ok(n),
            None => torn(format!("healthz document has no {key:?} counter")),
        }
    };
    Ok(BackendHealth {
        queued: counter("queued")?,
        running: counter("running")?,
        done: counter("done")?,
        cancelled: counter("cancelled")?,
        failed: counter("failed")?,
        shed: counter("shed")?,
        uptime_secs: counter("uptime_secs")?,
        status: doc
            .get("status")
            .and_then(JsonValue::as_str)
            .unwrap_or("unknown")
            .to_owned(),
    })
}

/// What is left of the exchange deadline, or a typed timeout error once
/// it is spent. `timeout` bounds the **whole** exchange, not each
/// syscall — a peer trickling or draining one byte per interval cannot
/// stretch a request past the deadline.
fn remaining(deadline: Instant) -> Result<Duration, ClientError> {
    let now = Instant::now();
    if now >= deadline {
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "exchange deadline exhausted",
        )));
    }
    Ok(deadline - now)
}

/// Re-arms the socket's read timeout with what is left of the deadline.
fn arm_read(stream: &TcpStream, deadline: Instant) -> Result<(), ClientError> {
    stream
        .set_read_timeout(Some(remaining(deadline)?))
        .map_err(ClientError::Io)
}

/// Writes `bytes` in chunks, re-arming the write timeout with what is
/// left of the deadline before each chunk.
fn write_deadlined(
    stream: &mut TcpStream,
    bytes: &[u8],
    deadline: Instant,
) -> Result<(), ClientError> {
    for chunk in bytes.chunks(16 * 1024) {
        stream
            .set_write_timeout(Some(remaining(deadline)?))
            .map_err(ClientError::Io)?;
        stream.write_all(chunk).map_err(ClientError::Io)?;
    }
    Ok(())
}

/// Performs one HTTP/1.1 exchange: connect (bounded by `timeout`), send
/// `method path` with an optional body, read the response, return
/// `(status, body)`. HTTP-level errors (4xx/5xx) are `Ok` — the status
/// code is the caller's to interpret; [`ClientError`] is reserved for
/// transport and protocol failures.
///
/// # Errors
///
/// See [`ClientError`] — every variant maps to a distinct misbehavior.
pub fn exchange(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<(u16, String), ClientError> {
    let resolved: Vec<SocketAddr> = addr
        .to_socket_addrs()
        .map_err(ClientError::Connect)?
        .collect();
    let deadline = Instant::now() + timeout;
    // Try every resolved address in turn (std's own connect does the
    // same): a dual-stack hostname whose first entry is unreachable must
    // not make a healthy backend look dead.
    let mut stream = None;
    let mut last_error = std::io::Error::new(
        std::io::ErrorKind::AddrNotAvailable,
        format!("{addr:?} resolves to no address"),
    );
    for candidate in &resolved {
        match TcpStream::connect_timeout(candidate, remaining(deadline)?) {
            Ok(connected) => {
                stream = Some(connected);
                break;
            }
            Err(e) => last_error = e,
        }
    }
    let Some(mut stream) = stream else {
        return Err(ClientError::Connect(last_error));
    };

    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: chunkpoint-shard\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    write_deadlined(&mut stream, head.as_bytes(), deadline)?;
    write_deadlined(&mut stream, body.as_bytes(), deadline)?;
    stream.flush().map_err(ClientError::Io)?;

    // The head reads go through a `Take` so an endless newline-less
    // header line cannot grow memory past MAX_HEAD_BYTES — read_line
    // simply hits the cap and returns what it has.
    let mut reader = BufReader::new(stream.take(MAX_HEAD_BYTES as u64));
    let mut head_bytes = 0usize;
    let mut status_line = String::new();
    arm_read(reader.get_ref().get_ref(), deadline)?;
    match reader.read_line(&mut status_line) {
        Ok(0) => return torn("connection closed before the status line"),
        Ok(read) => head_bytes += read,
        Err(e) => return Err(ClientError::Io(e)),
    }
    let Some(status) = status_line
        .strip_prefix("HTTP/1.")
        .and_then(|_| status_line.split_whitespace().nth(1))
        .and_then(|code| code.parse::<u16>().ok())
    else {
        return torn(format!("malformed status line {status_line:?}"));
    };

    let mut content_length: Option<usize> = None;
    loop {
        if head_bytes >= MAX_HEAD_BYTES {
            return torn(format!("response head exceeds {MAX_HEAD_BYTES} bytes"));
        }
        let mut line = String::new();
        arm_read(reader.get_ref().get_ref(), deadline)?;
        match reader.read_line(&mut line) {
            Ok(0) => return torn("connection closed inside the response head"),
            Ok(read) => head_bytes += read,
            Err(e) => return Err(ClientError::Io(e)),
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                match value.trim().parse::<usize>() {
                    Ok(n) => content_length = Some(n),
                    Err(_) => return torn(format!("unparseable Content-Length {value:?}")),
                }
            }
        }
    }

    let declared = match content_length {
        Some(declared) if declared > MAX_RESPONSE_BYTES => {
            return Err(ClientError::OversizedBody {
                declared,
                limit: MAX_RESPONSE_BYTES,
            });
        }
        // Connection-close framing reads to EOF; one byte past the cap
        // is the tell that the peer blew it.
        Some(declared) => declared,
        None => MAX_RESPONSE_BYTES + 1,
    };
    // Re-arm the limiter for the body (the buffer may already hold a
    // body prefix pulled during the head reads — it was counted against
    // the head allowance) and read incrementally: memory tracks bytes
    // actually received, an early EOF is a torn response, and every
    // chunk re-checks the exchange deadline.
    reader.get_mut().set_limit(declared as u64);
    let mut raw = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    while raw.len() < declared {
        let want = (declared - raw.len()).min(chunk.len());
        arm_read(reader.get_ref().get_ref(), deadline)?;
        match reader.read(&mut chunk[..want]) {
            Ok(0) if content_length.is_none() => break, // EOF ends the body
            Ok(0) => {
                return torn(format!(
                    "body ended at {} of {declared} declared bytes",
                    raw.len()
                ))
            }
            Ok(got) => raw.extend_from_slice(&chunk[..got]),
            Err(e) => return Err(ClientError::Io(e)),
        }
    }
    if content_length.is_none() && raw.len() > MAX_RESPONSE_BYTES {
        return Err(ClientError::OversizedBody {
            declared: raw.len(),
            limit: MAX_RESPONSE_BYTES,
        });
    }
    match String::from_utf8(raw) {
        Ok(body) => Ok((status, body)),
        Err(_) => torn("body is not UTF-8"),
    }
}
