//! Contiguous partitioning of the scenario index space.
//!
//! A campaign grid of `n` scenarios splits across `k` backends as at
//! most `k` contiguous, non-empty, disjoint half-open ranges covering
//! `0..n` exactly. Sizes differ by at most one (the first `n mod k`
//! ranges take the extra scenario), so load is as even as contiguity
//! allows — and contiguity is what keeps every shard's sub-spec a
//! one-field edit of the parent spec.

/// Splits `0..n` into at most `shards` contiguous, non-empty, disjoint
/// ranges that cover `0..n` exactly, in ascending order. Fewer than
/// `shards` ranges come back when `n < shards` (empty ranges are never
/// emitted); an empty grid partitions into no ranges.
///
/// # Panics
///
/// Panics if `shards` is zero.
#[must_use]
pub fn partition(n: usize, shards: usize) -> Vec<(usize, usize)> {
    assert!(shards > 0, "cannot partition across zero shards");
    if n == 0 {
        return Vec::new();
    }
    let shards = shards.min(n);
    let base = n / shards;
    let extra = n % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for k in 0..shards {
        let len = base + usize::from(k < extra);
        ranges.push((start, start + len));
        start += len;
    }
    debug_assert_eq!(start, n);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_and_uneven_splits() {
        assert_eq!(partition(6, 3), vec![(0, 2), (2, 4), (4, 6)]);
        assert_eq!(partition(7, 3), vec![(0, 3), (3, 5), (5, 7)]);
        assert_eq!(partition(8, 3), vec![(0, 3), (3, 6), (6, 8)]);
    }

    #[test]
    fn more_shards_than_scenarios_drops_empties() {
        assert_eq!(partition(2, 5), vec![(0, 1), (1, 2)]);
        assert_eq!(partition(1, 3), vec![(0, 1)]);
    }

    #[test]
    fn degenerate_grids() {
        assert!(partition(0, 4).is_empty());
        assert_eq!(partition(5, 1), vec![(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "zero shards")]
    fn zero_shards_panics() {
        let _ = partition(3, 0);
    }
}
