//! Contiguous partitioning of the scenario index space.
//!
//! A campaign grid of `n` scenarios splits across `k` backends as at
//! most `k` contiguous, non-empty, disjoint half-open ranges covering
//! `0..n` exactly. Sizes differ by at most one (the first `n mod k`
//! ranges take the extra scenario), so load is as even as contiguity
//! allows — and contiguity is what keeps every shard's sub-spec a
//! one-field edit of the parent spec.

/// Splits `0..n` into at most `shards` contiguous, non-empty, disjoint
/// ranges that cover `0..n` exactly, in ascending order. Fewer than
/// `shards` ranges come back when `n < shards` (empty ranges are never
/// emitted); an empty grid partitions into no ranges.
///
/// # Panics
///
/// Panics if `shards` is zero.
#[must_use]
pub fn partition(n: usize, shards: usize) -> Vec<(usize, usize)> {
    assert!(shards > 0, "cannot partition across zero shards");
    if n == 0 {
        return Vec::new();
    }
    let shards = shards.min(n);
    let base = n / shards;
    let extra = n % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for k in 0..shards {
        let len = base + usize::from(k < extra);
        ranges.push((start, start + len));
        start += len;
    }
    debug_assert_eq!(start, n);
    ranges
}

/// Checks a weight vector for [`partition_weighted`]: non-empty, every
/// weight finite and non-negative, and a positive, finite sum.
///
/// The one definition of "valid weights" — [`partition_weighted`]
/// panics with the returned message, while the shard coordinator maps
/// it to a typed `BadWeights` error before ever reaching the panic.
///
/// # Errors
///
/// A human-readable description of the first violated condition.
pub fn validate_weights(weights: &[f64]) -> Result<(), String> {
    if weights.is_empty() {
        return Err("cannot partition across zero shards".to_owned());
    }
    if !weights.iter().all(|w| w.is_finite() && *w >= 0.0) {
        return Err(format!(
            "weights must be finite and non-negative: {weights:?}"
        ));
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Err("weights must not all be zero".to_owned());
    }
    if !total.is_finite() {
        return Err(format!("weights sum overflows: {weights:?}"));
    }
    Ok(())
}

/// Splits `0..n` into exactly `weights.len()` contiguous, disjoint
/// half-open ranges covering `0..n`, sized proportionally to the
/// weights by largest-remainder apportionment (ties go to the lower
/// index). Range `k` is sized for backend `k`, so — unlike
/// [`partition`] — **empty ranges are kept in place** to preserve the
/// range↔backend alignment; callers skip them at dispatch time.
///
/// Uniform weights reproduce [`partition`] exactly: for `n >=
/// weights.len()` the outputs are equal element for element, and for
/// smaller grids dropping the empty ranges yields `partition(n, k)`
/// (the property `tests/partition_prop.rs` pins down). Weighting is
/// monotone: a strictly larger weight never receives a smaller range.
///
/// # Panics
///
/// Panics if [`validate_weights`] refuses the weights (empty, a
/// negative or non-finite weight, or a non-positive or overflowing
/// sum).
#[must_use]
pub fn partition_weighted(n: usize, weights: &[f64]) -> Vec<(usize, usize)> {
    if let Err(why) = validate_weights(weights) {
        panic!("{why}");
    }
    let total: f64 = weights.iter().sum();
    // Largest remainder: every range gets the floor of its proportional
    // quota, then the `n - sum(floors)` leftover scenarios go to the
    // largest fractional remainders, lowest index first on ties — which
    // is exactly how `partition` front-loads its `n mod k` extras, so
    // uniform weights degenerate to it. Dividing before multiplying
    // keeps the share in [0, 1], so even `f64::MAX` weights cannot
    // overflow a quota.
    let quotas: Vec<f64> = weights.iter().map(|w| w / total * n as f64).collect();
    let mut sizes: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
    let assigned: usize = sizes.iter().sum();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let frac = |k: usize| quotas[k] - quotas[k].floor();
        frac(b)
            .partial_cmp(&frac(a))
            .expect("finite quotas")
            .then(a.cmp(&b))
    });
    for &k in order.iter().take(n.saturating_sub(assigned)) {
        sizes[k] += 1;
    }
    let mut ranges = Vec::with_capacity(weights.len());
    let mut start = 0;
    for len in sizes {
        ranges.push((start, start + len));
        start += len;
    }
    debug_assert_eq!(start, n);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_and_uneven_splits() {
        assert_eq!(partition(6, 3), vec![(0, 2), (2, 4), (4, 6)]);
        assert_eq!(partition(7, 3), vec![(0, 3), (3, 5), (5, 7)]);
        assert_eq!(partition(8, 3), vec![(0, 3), (3, 6), (6, 8)]);
    }

    #[test]
    fn more_shards_than_scenarios_drops_empties() {
        assert_eq!(partition(2, 5), vec![(0, 1), (1, 2)]);
        assert_eq!(partition(1, 3), vec![(0, 1)]);
    }

    #[test]
    fn degenerate_grids() {
        assert!(partition(0, 4).is_empty());
        assert_eq!(partition(5, 1), vec![(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "zero shards")]
    fn zero_shards_panics() {
        let _ = partition(3, 0);
    }

    #[test]
    fn uniform_weights_reproduce_partition() {
        for n in [0usize, 1, 2, 5, 7, 8, 100] {
            for k in [1usize, 2, 3, 5] {
                if n >= k {
                    assert_eq!(
                        partition_weighted(n, &vec![1.0; k]),
                        partition(n, k),
                        "n={n} k={k}"
                    );
                } else {
                    let nonempty: Vec<(usize, usize)> = partition_weighted(n, &vec![1.0; k])
                        .into_iter()
                        .filter(|&(s, e)| s < e)
                        .collect();
                    assert_eq!(nonempty, partition(n, k), "n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn weighted_splits_are_proportional() {
        // A 3:1 split of 8 scenarios: 6 and 2.
        assert_eq!(partition_weighted(8, &[3.0, 1.0]), vec![(0, 6), (6, 8)]);
        // Scale invariance: only ratios matter.
        assert_eq!(
            partition_weighted(8, &[0.75, 0.25]),
            partition_weighted(8, &[3.0, 1.0])
        );
        // A zero-weight backend gets an empty range, kept in place.
        assert_eq!(
            partition_weighted(4, &[1.0, 0.0, 1.0]),
            vec![(0, 2), (2, 2), (2, 4)]
        );
    }

    #[test]
    fn weighted_ranges_stay_aligned_with_backends() {
        // Extreme skew: the tiny-weight backend keeps its slot even when
        // its range is empty.
        let ranges = partition_weighted(3, &[1000.0, 0.001, 1000.0]);
        assert_eq!(ranges.len(), 3);
        assert_eq!(ranges[1].0, ranges[1].1, "tiny weight rounds to empty");
        assert_eq!(ranges[0].1 - ranges[0].0 + (ranges[2].1 - ranges[2].0), 3);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_weights_panic() {
        let _ = partition_weighted(3, &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weights_panic() {
        let _ = partition_weighted(3, &[1.0, -1.0]);
    }
}
