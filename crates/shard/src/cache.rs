//! Coordinator-side, content-addressed, **range-granular result
//! cache**.
//!
//! The serve tier already memoizes whole campaigns by `spec_hash`; this
//! module lifts the same content-addressing idiom to the coordinator so
//! *sub-ranges* survive re-partitioning. Sealed journal rows are stored
//! on disk keyed by the ranged spec hash of the exact sub-range they
//! cover, and [`run_sharded_ctl`](crate::run_sharded_ctl) consults the
//! store before every dispatch: ranges already on disk are spliced into
//! the merge instead of re-executed.
//!
//! # Disk layout
//!
//! ```text
//! <cache root>/
//!   <base hash, 16 hex>/            one directory per campaign
//!     <ranged hash, 16 hex>.jsonl   one sealed range per file
//! ```
//!
//! The *base hash* is `spec.without_range().spec_hash()` — every ranged
//! sub-spec of one campaign shares it, so rows sealed under one
//! partitioning are findable by any other partitioning (or backend
//! count) of the same campaign. The *ranged hash* is the hash of the
//! base spec restricted to the file's exact `[start, end)` range — the
//! wire-format keying introduced for sharded dispatch, reused verbatim.
//!
//! Each file is a header line followed by one journal row per line:
//!
//! ```text
//! {"version":1,"campaign_seed":…,"spec_hash":"<base hash>","start":s,"end":e,"rows":n}
//! {"index":s, …}                    n = e - s rows, ascending, dense
//! …
//! ```
//!
//! # Integrity
//!
//! Writes are atomic (tmp + `sync_all` + rename, the `JobStore` idiom),
//! so a crash never leaves a half-visible file under the final name.
//! Reads trust nothing: a file whose name, header, row count, indices
//! or seeds disagree with the spec and grid in hand — torn tail,
//! truncation, bit rot, a journal from a different campaign — is
//! skipped *whole*, degrading to a cache miss, never a panic or wrong
//! bytes. Row validation delegates to [`ScenarioResult::from_json`]
//! against the expected grid scenario, exactly like journal fetches
//! from a live backend.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use chunkpoint_campaign::{CampaignSpec, JsonValue, Scenario, ScenarioResult};

/// On-disk format version of a cache file header.
pub const CACHE_VERSION: u64 = 1;

/// A disk-backed store of sealed journal rows, keyed by ranged
/// `spec_hash`. Cheap to construct — directories are created lazily on
/// first store, and loading from a root that does not exist is simply a
/// miss.
#[derive(Debug, Clone)]
pub struct RangeCache {
    root: PathBuf,
}

/// `spec` with any range restriction stripped, hashed: the campaign
/// directory key.
fn base_hash(spec: &CampaignSpec) -> u64 {
    spec.clone().without_range().spec_hash()
}

/// The hash of `spec` restricted to exactly `[start, end)`: the range
/// file key.
fn ranged_hash(spec: &CampaignSpec, (start, end): (usize, usize)) -> u64 {
    spec.clone()
        .without_range()
        .scenario_range(start, end)
        .spec_hash()
}

impl RangeCache {
    /// Opens (without touching the filesystem) a cache rooted at `root`.
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        RangeCache { root: root.into() }
    }

    /// The cache's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory holding `spec`'s sealed ranges.
    #[must_use]
    pub fn campaign_dir(&self, spec: &CampaignSpec) -> PathBuf {
        self.root.join(format!("{:016x}", base_hash(spec)))
    }

    /// Seals `rows` — which must cover exactly the global range
    /// `[start, end)`, ascending and dense — under `spec`'s key.
    /// Returns the path of the written range file.
    ///
    /// The write is atomic: concurrent writers of the same range race
    /// benignly (identical content, last rename wins).
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidInput`] if `rows` does not cover
    /// the range exactly, and propagates any filesystem error.
    pub fn store(
        &self,
        spec: &CampaignSpec,
        range: (usize, usize),
        rows: &[ScenarioResult],
    ) -> io::Result<PathBuf> {
        let (start, end) = range;
        if start >= end || rows.len() != end - start {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("cache: {} rows cannot seal [{start}, {end})", rows.len()),
            ));
        }
        for (offset, row) in rows.iter().enumerate() {
            if row.scenario.index != start + offset {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "cache: row {} found where index {} was expected in [{start}, {end})",
                        row.scenario.index,
                        start + offset
                    ),
                ));
            }
        }
        let dir = self.campaign_dir(spec);
        std::fs::create_dir_all(&dir)?;
        let header = JsonValue::object()
            .field("version", CACHE_VERSION)
            .field("campaign_seed", spec.campaign_seed)
            .field("spec_hash", format!("{:016x}", base_hash(spec)))
            .field("start", start as u64)
            .field("end", end as u64)
            .field("rows", rows.len() as u64);
        let mut body = header.render();
        body.push('\n');
        for row in rows {
            body.push_str(&row.to_json().render());
            body.push('\n');
        }
        let path = dir.join(format!("{:016x}.jsonl", ranged_hash(spec, range)));
        let tmp = dir.join(format!("{:016x}.tmp", ranged_hash(spec, range)));
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(body.as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Seals a scattered row set (sorted or not) as its maximal
    /// contiguous runs, one range file each — the seeding path for
    /// spec-diffed incremental campaigns, whose reusable rows are
    /// rarely one contiguous block. Duplicate indices keep the first
    /// occurrence. Returns the number of range files written.
    ///
    /// # Errors
    ///
    /// Propagates any filesystem error from [`RangeCache::store`].
    pub fn store_scattered(
        &self,
        spec: &CampaignSpec,
        rows: &[ScenarioResult],
    ) -> io::Result<usize> {
        let mut by_index: BTreeMap<usize, &ScenarioResult> = BTreeMap::new();
        for row in rows {
            by_index.entry(row.scenario.index).or_insert(row);
        }
        let mut written = 0;
        let mut run: Vec<ScenarioResult> = Vec::new();
        for (&index, &row) in &by_index {
            if let Some(last) = run.last() {
                if index != last.scenario.index + 1 {
                    let range = (run[0].scenario.index, last.scenario.index + 1);
                    self.store(spec, range, &run)?;
                    written += 1;
                    run.clear();
                }
            }
            run.push(row.clone());
        }
        if let Some(last) = run.last() {
            let range = (run[0].scenario.index, last.scenario.index + 1);
            self.store(spec, range, &run)?;
            written += 1;
        }
        Ok(written)
    }

    /// Bounds the cache's on-disk footprint: while the total size of
    /// all sealed range files exceeds `max_bytes`, evicts whole files
    /// oldest modification time first (ties break on path, so the
    /// sweep order is deterministic). Campaign directories left empty
    /// are removed. Returns the number of files evicted.
    ///
    /// Best-effort by design, like [`RangeCache::load`]: an entry whose
    /// metadata cannot be read is left alone, a file that vanishes
    /// mid-sweep is simply someone else's eviction, and nothing here
    /// errors or panics — the worst outcome is a cache temporarily
    /// over budget.
    pub fn gc(&self, max_bytes: u64) -> usize {
        let Ok(campaigns) = std::fs::read_dir(&self.root) else {
            return 0;
        };
        let mut files: Vec<(std::time::SystemTime, PathBuf, u64)> = Vec::new();
        for campaign in campaigns.filter_map(|entry| entry.ok()) {
            let Ok(ranges) = std::fs::read_dir(campaign.path()) else {
                continue;
            };
            for entry in ranges.filter_map(|entry| entry.ok()) {
                let path = entry.path();
                if path.extension().is_none_or(|ext| ext != "jsonl") {
                    continue;
                }
                let Ok(meta) = entry.metadata() else {
                    continue;
                };
                let Ok(mtime) = meta.modified() else {
                    continue;
                };
                files.push((mtime, path, meta.len()));
            }
        }
        let mut total: u64 = files.iter().map(|(_, _, len)| len).sum();
        if total <= max_bytes {
            return 0;
        }
        files.sort();
        let mut evicted = 0;
        for (_, path, len) in &files {
            if total <= max_bytes {
                break;
            }
            if std::fs::remove_file(path).is_ok() {
                evicted += 1;
            }
            // A failed removal still counts against the footprint we
            // can free; not retrying keeps the sweep one pass.
            total = total.saturating_sub(*len);
            if let Some(dir) = path.parent() {
                let _ = std::fs::remove_dir(dir); // only succeeds when empty
            }
        }
        evicted
    }

    /// Loads every validated cached row for `spec`, keyed by global
    /// scenario index. `grid` must be the spec's full enumeration —
    /// each row is checked against its expected scenario (index and
    /// derived seed) before admission, and any file failing *any* check
    /// is skipped whole. Files are visited in name order, first
    /// occurrence of an index wins, so the result is deterministic.
    /// Never panics and never errors: everything unreadable is a miss.
    #[must_use]
    pub fn load(&self, spec: &CampaignSpec, grid: &[Scenario]) -> BTreeMap<usize, ScenarioResult> {
        let dir = self.campaign_dir(spec);
        let Ok(entries) = std::fs::read_dir(&dir) else {
            return BTreeMap::new();
        };
        let mut names: Vec<String> = entries
            .filter_map(|entry| entry.ok())
            .filter_map(|entry| entry.file_name().into_string().ok())
            .filter(|name| name.ends_with(".jsonl"))
            .collect();
        names.sort();
        let mut rows = BTreeMap::new();
        for name in names {
            if let Some(file_rows) = read_range_file(&dir.join(&name), &name, spec, grid) {
                for row in file_rows {
                    rows.entry(row.scenario.index).or_insert(row);
                }
            }
        }
        rows
    }
}

/// Parses and fully validates one range file; `None` on *any*
/// irregularity (the whole-file-skip miss semantics).
fn read_range_file(
    path: &Path,
    name: &str,
    spec: &CampaignSpec,
    grid: &[Scenario],
) -> Option<Vec<ScenarioResult>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    let header = JsonValue::parse(lines.next()?).ok()?;
    let version = header.get("version")?.as_u64()?;
    let campaign_seed = header.get("campaign_seed")?.as_u64()?;
    let spec_hash = header.get("spec_hash")?.as_str()?;
    let start = usize::try_from(header.get("start")?.as_u64()?).ok()?;
    let end = usize::try_from(header.get("end")?.as_u64()?).ok()?;
    let declared = usize::try_from(header.get("rows")?.as_u64()?).ok()?;
    if version != CACHE_VERSION
        || campaign_seed != spec.campaign_seed
        || spec_hash != format!("{:016x}", base_hash(spec))
        || start >= end
        || end > grid.len()
        || declared != end - start
        || name != format!("{:016x}.jsonl", ranged_hash(spec, (start, end)))
    {
        return None;
    }
    let mut rows = Vec::with_capacity(declared);
    for (offset, line) in lines.enumerate() {
        let index = start + offset;
        if index >= end {
            return None; // more rows than the header declared
        }
        let value = JsonValue::parse(line).ok()?;
        // Validates the row's index and derived seed against the grid
        // scenario it claims to be — a foreign or shifted journal row
        // cannot masquerade as this campaign's.
        rows.push(ScenarioResult::from_json(&value, grid[index].clone()).ok()?);
    }
    if rows.len() != declared {
        return None; // torn tail: fewer rows than declared
    }
    Some(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chunkpoint_campaign::{run_campaign, SchemeSpec};
    use chunkpoint_core::{MitigationScheme, SystemConfig};
    use chunkpoint_workloads::Benchmark;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chunkpoint_cache_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_spec(seed: u64) -> CampaignSpec {
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        CampaignSpec::new(config, seed)
            .benchmarks(&[Benchmark::AdpcmEncode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
            .replicates(3)
    }

    #[test]
    fn round_trips_a_sealed_range() {
        let cache = RangeCache::new(temp_root("round_trip"));
        let spec = small_spec(0x5A4D);
        let grid = spec.scenarios();
        let rows = run_campaign(&spec, 1).results;
        cache.store(&spec, (0, rows.len()), &rows).expect("store");
        let loaded = cache.load(&spec, &grid);
        assert_eq!(loaded.len(), rows.len());
        for row in &rows {
            assert_eq!(loaded[&row.scenario.index], *row);
        }
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn ranged_sub_specs_share_the_campaign_directory() {
        let cache = RangeCache::new(temp_root("shared_dir"));
        let spec = small_spec(0x5A4D);
        let grid = spec.scenarios();
        let rows = run_campaign(&spec, 1).results;
        // Seal under a ranged sub-spec, load under the parent (and a
        // differently-ranged sibling): all the same campaign.
        let sub = spec.clone().scenario_range(0, 3);
        cache.store(&sub, (0, 3), &rows[..3]).expect("store");
        assert_eq!(cache.load(&spec, &grid).len(), 3);
        let sibling = spec.clone().scenario_range(3, grid.len());
        assert_eq!(cache.load(&sibling, &grid).len(), 3);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn scattered_rows_seal_as_contiguous_runs() {
        let cache = RangeCache::new(temp_root("scattered"));
        let spec = small_spec(0x5A4D);
        let grid = spec.scenarios();
        let rows = run_campaign(&spec, 1).results;
        assert!(grid.len() >= 6, "grid too small for the gap layout");
        let picked: Vec<ScenarioResult> = rows
            .iter()
            .filter(|r| [0, 1, 4, 5].contains(&r.scenario.index))
            .cloned()
            .collect();
        let written = cache.store_scattered(&spec, &picked).expect("store");
        assert_eq!(written, 2, "two gaps, two range files");
        let loaded = cache.load(&spec, &grid);
        assert_eq!(loaded.keys().copied().collect::<Vec<_>>(), vec![0, 1, 4, 5]);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn store_rejects_rows_that_do_not_cover_the_range() {
        let cache = RangeCache::new(temp_root("bad_store"));
        let spec = small_spec(0x5A4D);
        let rows = run_campaign(&spec, 1).results;
        // Wrong count.
        assert!(cache.store(&spec, (0, 3), &rows[..2]).is_err());
        // Right count, wrong indices.
        assert!(cache.store(&spec, (1, 3), &rows[..2]).is_err());
        // Empty range.
        assert!(cache.store(&spec, (2, 2), &[]).is_err());
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn foreign_campaign_rows_never_load() {
        let cache = RangeCache::new(temp_root("foreign"));
        let spec = small_spec(0x5A4D);
        let other = small_spec(0x1111);
        let rows = run_campaign(&spec, 1).results;
        cache.store(&spec, (0, rows.len()), &rows).expect("store");
        // The other campaign hashes to a different directory entirely.
        assert!(cache.load(&other, &other.scenarios()).is_empty());
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn torn_or_corrupt_files_degrade_to_a_miss() {
        let cache = RangeCache::new(temp_root("torn"));
        let spec = small_spec(0x5A4D);
        let grid = spec.scenarios();
        let rows = run_campaign(&spec, 1).results;
        let half = rows.len() / 2;
        let torn = cache.store(&spec, (0, half), &rows[..half]).expect("store");
        cache
            .store(&spec, (half, rows.len()), &rows[half..])
            .expect("store");

        // Tear the first file mid-row: its rows vanish, the intact
        // file's rows survive, nothing panics.
        let text = std::fs::read_to_string(&torn).expect("read back");
        std::fs::write(&torn, &text[..text.len() - 20]).expect("tear");
        let loaded = cache.load(&spec, &grid);
        assert_eq!(
            loaded.keys().copied().collect::<Vec<_>>(),
            (half..rows.len()).collect::<Vec<_>>()
        );

        // Outright garbage under a plausible name is skipped too.
        std::fs::write(&torn, "not json at all\n").expect("garbage");
        assert_eq!(cache.load(&spec, &grid).len(), rows.len() - half);

        // A header whose declared range disagrees with its file name
        // (a stale ranged hash) is rejected whole.
        let dir = cache.campaign_dir(&spec);
        let intact = dir.join(format!(
            "{:016x}.jsonl",
            ranged_hash(&spec, (half, rows.len()))
        ));
        let misnamed = dir.join("0123456789abcdef.jsonl");
        std::fs::copy(&intact, &misnamed).expect("copy");
        let loaded = cache.load(&spec, &grid);
        assert_eq!(loaded.len(), rows.len() - half);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn gc_evicts_oldest_files_first_until_under_budget() {
        let cache = RangeCache::new(temp_root("gc"));
        let spec = small_spec(0x5A4D);
        let grid = spec.scenarios();
        let rows = run_campaign(&spec, 1).results;
        assert!(rows.len() >= 6, "grid too small for three ranges");
        let old = cache.store(&spec, (0, 2), &rows[..2]).expect("store");
        let mid = cache.store(&spec, (2, 4), &rows[2..4]).expect("store");
        let new = cache.store(&spec, (4, 6), &rows[4..6]).expect("store");
        // Stamp distinct, strictly ordered mtimes: filesystem clocks
        // are too coarse to rely on write order.
        let epoch = std::time::SystemTime::now() - std::time::Duration::from_secs(600);
        for (age, path) in [(0u64, &old), (60, &mid), (120, &new)] {
            std::fs::File::options()
                .write(true)
                .open(path)
                .expect("open")
                .set_modified(epoch + std::time::Duration::from_secs(age))
                .expect("set mtime");
        }
        let keep_two: u64 = [&mid, &new]
            .iter()
            .map(|p| std::fs::metadata(p).expect("meta").len())
            .sum();

        // Under budget: a no-op.
        assert_eq!(cache.gc(u64::MAX), 0);
        assert!(old.exists());

        // Over budget by one file: exactly the oldest goes.
        assert_eq!(cache.gc(keep_two), 1);
        assert!(!old.exists());
        assert!(mid.exists() && new.exists());
        let loaded = cache.load(&spec, &grid);
        assert_eq!(loaded.keys().copied().collect::<Vec<_>>(), vec![2, 3, 4, 5]);

        // Budget zero: everything goes, and the emptied campaign
        // directory goes with it.
        assert_eq!(cache.gc(0), 2);
        assert!(!cache.campaign_dir(&spec).exists());
        assert!(cache.load(&spec, &grid).is_empty());
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn missing_root_is_an_empty_load() {
        let cache = RangeCache::new(temp_root("missing"));
        let spec = small_spec(0x5A4D);
        assert!(cache.load(&spec, &spec.scenarios()).is_empty());
    }
}
