//! The shard coordinator: split one campaign across several `serve`
//! backends, survive backend failures, and merge the journals back into
//! the canonical single-machine report.
//!
//! The dispatch loop is deliberately simple because determinism does all
//! the heavy lifting: a shard is a [`CampaignSpec`] with a
//! `scenario_range` restriction, every scenario's seed derives from
//! `(campaign_seed, global_index)`, so *where* and *how many times* a
//! range runs cannot change a single byte of its rows. Re-dispatching a
//! failed shard to any other backend — or the same one — is therefore
//! always safe, and the merged report is byte-identical to an unsharded
//! run no matter which backends did the work or in what order they
//! finished.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use chunkpoint_campaign::{
    canonical_report_json, CampaignSpec, CancelToken, JsonValue, Scenario, ScenarioResult,
};
use chunkpoint_serve::REPORT_AXES;
use chunkpoint_telemetry::{Span, Tracer};

use crate::breaker::{Backoff, CircuitBreaker};
use crate::cache::RangeCache;
use crate::client::{classify_submit, exchange, SubmitOutcome};
use crate::metrics::{backend_telemetry, cache_telemetry, poll_sweeps, BackendTelemetry};
use crate::partition::{partition, partition_weighted};

/// Coordinator knobs. The defaults suit a LAN of `serve` instances.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Base pause between poll sweeps over the outstanding shards. The
    /// actual sleep follows the deterministic [`Backoff`] schedule:
    /// `poll_interval` while the run makes progress, doubling (with
    /// seeded jitter) toward [`ShardConfig::poll_max`] across idle
    /// sweeps.
    pub poll_interval: Duration,
    /// Connect/read/write timeout of every HTTP exchange.
    pub request_timeout: Duration,
    /// Consecutive failed exchanges that open a backend's circuit
    /// breaker (its shards re-dispatch to ready backends; the breaker
    /// half-open-probes it on the cooldown schedule).
    pub backend_strikes: u32,
    /// Submission attempts one shard may burn (first dispatch included)
    /// before the run gives up — the terminator for a range that fails
    /// *deterministically* on every backend (a scenario that panics, a
    /// full disk everywhere), which transport strikes alone would
    /// ping-pong forever.
    pub shard_attempts: u32,
    /// Cap of the idle-sweep poll backoff.
    pub poll_max: Duration,
    /// Base cooldown of a backend's circuit breaker when it opens; each
    /// consecutive re-open doubles it (with seeded jitter).
    pub breaker_cooldown: Duration,
    /// Cap of the breaker cooldown ladder.
    pub breaker_max: Duration,
    /// Seed of the deterministic backoff jitter schedules — same seed,
    /// same poll cadence and same cooldowns, every run.
    pub backoff_seed: u64,
    /// Enables speculative double-dispatch of straggling shards: once
    /// at least half the shards have sealed, a shard that has been
    /// running longer than both [`ShardConfig::speculate_after`] and
    /// `speculate_factor ×` the median completed-shard latency is
    /// duplicated onto a second ready backend; whichever copy seals
    /// first wins and the loser's job is cancelled. Safe because both
    /// copies compute identical rows — the merge cannot tell them
    /// apart, so the report bytes are unchanged whichever side wins.
    pub speculate: bool,
    /// Floor on how long a shard must have been outstanding before it
    /// can be speculated, whatever the median says — protects short
    /// campaigns from pure-noise duplication.
    pub speculate_after: Duration,
    /// Straggler multiplier: a shard lags once its outstanding time
    /// exceeds `speculate_factor ×` the median completed-shard latency.
    pub speculate_factor: u32,
    /// Trace sink of the run's dispatch decisions. The default —
    /// [`Tracer::disabled`] — costs nothing; a live tracer turns every
    /// dispatch, re-dispatch, failure, breaker transition, and
    /// completed shard into a structured span event. Strictly out of
    /// band: the report bytes cannot change with tracing on or off.
    pub tracer: Tracer,
    /// Root of the coordinator's range-granular result cache
    /// ([`RangeCache`]). When set, the planner consults the cache
    /// before dispatching: ranges whose sealed rows are already on disk
    /// are spliced into the merge ([`ShardEvent::CacheHit`]) instead of
    /// re-executed, and every shard that *does* seal writes its rows
    /// back. `None` (the default) disables caching entirely. Safe by
    /// construction: cached rows are validated against the spec's own
    /// grid (index + derived seed) before splicing, so the report bytes
    /// are identical with the cache cold, warm, or corrupted.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            poll_interval: Duration::from_millis(25),
            request_timeout: Duration::from_secs(10),
            backend_strikes: 3,
            shard_attempts: 5,
            poll_max: Duration::from_millis(400),
            breaker_cooldown: Duration::from_millis(100),
            breaker_max: Duration::from_secs(2),
            backoff_seed: 0,
            speculate: false,
            speculate_after: Duration::from_millis(500),
            speculate_factor: 2,
            tracer: Tracer::disabled(),
            cache_dir: None,
        }
    }
}

/// What a sharded run salvaged before giving up: the graceful-degradation
/// payload of [`ShardError::Exhausted`]. Ranges that completed (fetched
/// and row-validated) are reported with their rows and a canonical
/// report over just those rows — so an operator keeps the finished
/// slices of an overnight campaign instead of an opaque error, and a
/// re-run against healthy backends is instant for them (result cache).
#[derive(Debug, Clone)]
pub struct PartialCampaign {
    /// Scenario ranges `[start, end)` whose journals were fetched and
    /// validated, in range order.
    pub completed_ranges: Vec<(usize, usize)>,
    /// The validated rows of those ranges, in global scenario-index
    /// order.
    pub results: Vec<ScenarioResult>,
    /// [`canonical_report_json`] rendered over the salvaged rows only —
    /// byte-deterministic for a given set of completed ranges, but
    /// **not** the full campaign's report.
    pub report_so_far: String,
}

impl PartialCampaign {
    /// Scenarios salvaged.
    #[must_use]
    pub fn scenarios(&self) -> usize {
        self.results.len()
    }
}

/// Why a sharded campaign could not complete.
#[derive(Debug)]
pub enum ShardError {
    /// The backend list was empty.
    NoBackends,
    /// The per-backend weight list does not describe the backend list
    /// (wrong length — weight values themselves are validated by
    /// [`partition_weighted`]).
    BadWeights(String),
    /// A backend answered a submit with a client error — the sub-spec
    /// itself is bad, so no amount of re-dispatching can help.
    Rejected {
        /// The backend that answered.
        backend: String,
        /// Its HTTP status.
        status: u16,
        /// Its error body.
        body: String,
    },
    /// Every backend or dispatch attempt was exhausted with shards
    /// still outstanding. The work that *did* finish is not thrown
    /// away: `partial` carries the completed ranges, their validated
    /// rows, and a canonical report over them.
    Exhausted {
        /// What the coordinator saw last.
        detail: String,
        /// Completed ranges, rows, and the report over them.
        partial: Box<PartialCampaign>,
    },
    /// The merged rows do not cover the grid exactly once each —
    /// overlapping or gapped journals.
    BadMerge(String),
    /// The run was cancelled through its [`CancelToken`]. Outstanding
    /// shard jobs received a best-effort `DELETE` so their backends
    /// stop working; already-completed shards stay cached on theirs.
    Cancelled,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::NoBackends => write!(f, "no backends to shard across"),
            ShardError::BadWeights(why) => write!(f, "bad backend weights: {why}"),
            ShardError::Rejected {
                backend,
                status,
                body,
            } => write!(
                f,
                "backend {backend} rejected the sub-spec ({status}): {body}"
            ),
            ShardError::Exhausted { detail, partial } => {
                write!(
                    f,
                    "every backend struck out: {detail} ({} scenarios salvaged across {} completed ranges)",
                    partial.scenarios(),
                    partial.completed_ranges.len()
                )
            }
            ShardError::BadMerge(why) => write!(f, "journal merge failed: {why}"),
            ShardError::Cancelled => write!(f, "sharded campaign cancelled"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Fetches `GET /campaigns/:id/journal` from `addr` and validates the
/// rows against `grid` for the half-open scenario `range`: every row
/// must carry this campaign's `(index, derived seed)`, land inside the
/// range, and the range must be covered exactly (journals are
/// completion-ordered and — across a resume — may repeat an index;
/// first occurrence wins, same as the service's own loader). Returns
/// the rows in scenario-index order.
///
/// This is the trust boundary both the shard coordinator and the
/// unified executor API's remote path go through: a backend's journal
/// is never merged without checking out row by row.
///
/// # Errors
///
/// A rendered description of the transport failure, non-200 answer, or
/// validation failure — the caller decides whether that means a strike,
/// a re-dispatch, or a typed error.
pub fn fetch_journal_rows(
    addr: &str,
    id: &str,
    grid: &[Scenario],
    range: (usize, usize),
    timeout: Duration,
) -> Result<Vec<ScenarioResult>, String> {
    let (start, end) = range;
    let (status, body) = exchange(
        addr,
        "GET",
        &format!("/campaigns/{id}/journal"),
        None,
        timeout,
    )
    .map_err(|e| e.to_string())?;
    if status != 200 {
        return Err(format!("journal fetch answered {status}: {body}"));
    }
    let doc = JsonValue::parse(&body).map_err(|e| format!("journal is not JSON: {e}"))?;
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_array)
        .ok_or("journal document has no \"rows\" array")?;
    let mut out: Vec<Option<ScenarioResult>> = vec![None; end - start];
    for row in rows {
        let index = row
            .get("index")
            .and_then(JsonValue::as_u64)
            .ok_or("journal row has no index")? as usize;
        if index < start || index >= end {
            return Err(format!(
                "journal row indexes scenario {index} outside shard range [{start}, {end})"
            ));
        }
        let slot = &mut out[index - start];
        if slot.is_some() {
            continue;
        }
        *slot = Some(ScenarioResult::from_json(row, grid[index].clone())?);
    }
    let have = out.iter().filter(|slot| slot.is_some()).count();
    if have != end - start {
        return Err(format!(
            "journal covers {have} of {} scenarios in [{start}, {end})",
            end - start
        ));
    }
    Ok(out.into_iter().map(|slot| slot.expect("counted")).collect())
}

/// One observable step of a sharded run, emitted through the sink of
/// [`run_sharded_ctl`] the moment it happens — the coordinator-level
/// event stream the unified executor API's
/// `ShardDispatched`/`ShardFailed`/`ShardRedispatched` events are cut
/// from. [`ShardRun::events`] keeps the rendered form of every event,
/// so the sink is for *live* observation, not the only record.
#[derive(Debug)]
pub enum ShardEvent {
    /// A shard was assigned (first dispatch) to a backend.
    Dispatched {
        /// Shard index.
        shard: usize,
        /// The shard's scenario range `[start, end)`.
        range: (usize, usize),
        /// Backend address the shard now lives on.
        backend: String,
    },
    /// A shard moved to another backend after a failure.
    Redispatched {
        /// Shard index.
        shard: usize,
        /// The shard's scenario range `[start, end)`.
        range: (usize, usize),
        /// Backend address the shard now lives on.
        backend: String,
    },
    /// A backend exceeded its strike budget and opened its circuit
    /// breaker: its shards re-dispatch to ready backends and the
    /// coordinator half-open-probes it on the cooldown schedule.
    /// Emitted on the first open only, not on every failed probe.
    BackendDead {
        /// The backend's address.
        backend: String,
        /// The failure that pushed it over.
        why: String,
    },
    /// A backend reported a shard's job failed (the shard will be
    /// re-dispatched if attempts remain).
    ShardFailed {
        /// Shard index.
        shard: usize,
        /// Backend that reported the failure.
        backend: String,
        /// The backend's failure report.
        why: String,
    },
    /// A straggling shard's range was speculatively double-dispatched
    /// to a second backend (the primary job keeps running; first sealed
    /// rows win).
    Speculated {
        /// Shard index.
        shard: usize,
        /// The shard's scenario range `[start, end)`.
        range: (usize, usize),
        /// Backend address the speculative duplicate was submitted to.
        backend: String,
    },
    /// A speculative duplicate sealed its rows before the straggling
    /// primary; the primary's job is cancelled. Always followed by the
    /// [`ShardEvent::ShardDone`] carrying the winner's rows.
    SpeculationWon {
        /// Shard index.
        shard: usize,
        /// The backend whose duplicate won.
        backend: String,
    },
    /// A shard's range was served whole from the coordinator's result
    /// cache — sealed rows validated against this campaign's grid were
    /// spliced into the merge and the shard never dispatched. Emitted
    /// in place of [`ShardEvent::Dispatched`] during planning; no
    /// [`ShardEvent::ShardDone`] follows for the shard.
    CacheHit {
        /// Shard index.
        shard: usize,
        /// The shard's scenario range `[start, end)`.
        range: (usize, usize),
        /// The cached rows, validated, in scenario-index order.
        rows: Vec<ScenarioResult>,
    },
    /// A shard's journal was fetched and validated; `rows` are its
    /// scenario results in index order.
    ShardDone {
        /// Shard index.
        shard: usize,
        /// The shard's scenario range `[start, end)`.
        range: (usize, usize),
        /// Backend that completed the shard.
        backend: String,
        /// The shard's validated rows, in scenario-index order.
        rows: Vec<ScenarioResult>,
    },
}

impl std::fmt::Display for ShardEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardEvent::Dispatched {
                shard,
                range: (start, end),
                backend,
            } => write!(f, "shard {shard} [{start}, {end}) → {backend}"),
            ShardEvent::Redispatched {
                shard,
                range: (start, end),
                backend,
            } => write!(
                f,
                "shard {shard} [{start}, {end}) re-dispatched → {backend}"
            ),
            ShardEvent::BackendDead { backend, why } => {
                write!(f, "backend {backend} struck out: {why}")
            }
            ShardEvent::ShardFailed {
                shard,
                backend,
                why,
            } => write!(f, "backend {backend} reported shard {shard} failed: {why}"),
            ShardEvent::Speculated {
                shard,
                range: (start, end),
                backend,
            } => write!(
                f,
                "shard {shard} [{start}, {end}) speculatively duplicated → {backend}"
            ),
            ShardEvent::SpeculationWon { shard, backend } => {
                write!(f, "shard {shard} speculation won on {backend}")
            }
            ShardEvent::CacheHit {
                shard,
                range: (start, end),
                rows,
            } => write!(
                f,
                "shard {shard} [{start}, {end}) spliced {} rows from cache",
                rows.len()
            ),
            ShardEvent::ShardDone {
                shard,
                range: (start, end),
                backend,
                rows,
            } => write!(
                f,
                "shard {shard} [{start}, {end}) done: {} rows from {backend}",
                rows.len()
            ),
        }
    }
}

/// A completed sharded campaign.
#[derive(Debug)]
pub struct ShardRun {
    /// The canonical timing-free report — byte-identical to
    /// `canonical_report_json` of an unsharded single-threaded run.
    pub report: String,
    /// Merged per-scenario rows in global scenario-index order.
    pub results: Vec<ScenarioResult>,
    /// Ranges the grid was split into.
    pub shards: usize,
    /// Sub-spec submissions, including re-dispatches (`> shards` means
    /// at least one shard moved).
    pub dispatches: usize,
    /// Failed exchanges and failed jobs observed along the way.
    pub failures: usize,
    /// Rows served from the result cache instead of being executed
    /// (`0` without a [`ShardConfig::cache_dir`] or on a cold cache).
    pub spliced: usize,
    /// Human-readable dispatch decisions, in order.
    pub events: Vec<String>,
}

/// Merges per-shard journal rows into the canonical campaign report.
///
/// The merge — not shard arrival order — defines the report's ordering:
/// rows sort by **global scenario index**, so any assignment of ranges
/// to backends, any completion order, and any interleaving of journal
/// fetches produce the same bytes. `grid_len` is the full campaign's
/// scenario count; the merged rows must cover `0..grid_len` exactly
/// once each.
///
/// # Errors
///
/// [`ShardError::BadMerge`] on duplicate, missing, or out-of-grid rows.
pub fn merged_report(
    campaign_seed: u64,
    grid_len: usize,
    rows: Vec<ScenarioResult>,
) -> Result<(String, Vec<ScenarioResult>), ShardError> {
    merged_report_over(campaign_seed, 0..grid_len, rows)
}

/// [`merged_report`] generalized to a ranged campaign: the merged rows
/// must cover exactly the half-open `active` scenario range — the
/// execution slice of a spec with a `scenario_range` restriction (the
/// whole grid for an unranged spec).
fn merged_report_over(
    campaign_seed: u64,
    active: std::ops::Range<usize>,
    mut rows: Vec<ScenarioResult>,
) -> Result<(String, Vec<ScenarioResult>), ShardError> {
    rows.sort_by_key(|r| r.scenario.index);
    if rows.len() != active.len() {
        return Err(ShardError::BadMerge(format!(
            "merged {} rows for {} scenarios [{}, {})",
            rows.len(),
            active.len(),
            active.start,
            active.end
        )));
    }
    for (expected, row) in active.clone().zip(rows.iter()) {
        if row.scenario.index != expected {
            return Err(ShardError::BadMerge(format!(
                "scenario {expected} is {}, found index {} in its place",
                if row.scenario.index > expected {
                    "missing"
                } else {
                    "duplicated"
                },
                row.scenario.index
            )));
        }
    }
    let report = canonical_report_json(campaign_seed, &rows, &REPORT_AXES).render();
    Ok((report, rows))
}

/// One backend and its circuit breaker.
struct Backend {
    addr: String,
    breaker: CircuitBreaker,
}

/// One contiguous slice of the grid and where it currently lives.
struct Shard {
    range: (usize, usize),
    backend: usize,
    job_id: Option<String>,
    rows: Option<Vec<ScenarioResult>>,
    /// Submissions burned so far (bounded by `shard_attempts`).
    attempts: u32,
    /// Failed exchanges charged to this shard (bounded by the failure
    /// budget) — the terminator for a fleet whose breakers keep
    /// half-open-probing dead backends forever.
    failures: u32,
    /// When the current primary dispatch was accepted (breaker clock) —
    /// the straggler detector's reference point.
    dispatched_at: Duration,
    /// A live speculative duplicate: `(backend index, job id)`. At most
    /// one per shard; dropped (and its job cancelled) the moment either
    /// copy seals.
    spare: Option<(usize, String)>,
}

/// The coordinator state machine driving [`run_sharded_ctl`].
struct Dispatcher<'a> {
    spec: &'a CampaignSpec,
    /// The full grid, enumerated once — journal validation needs every
    /// row's expected scenario (index + derived seed).
    grid: &'a [Scenario],
    config: &'a ShardConfig,
    /// Epoch of the breaker clock: every breaker transition is stamped
    /// with `epoch.elapsed()`.
    epoch: Instant,
    backends: Vec<Backend>,
    shards: Vec<Shard>,
    dispatches: usize,
    failures: usize,
    events: Vec<String>,
    /// Completion stamps (breaker clock) of sealed shards, in seal
    /// order — the straggler detector's median comes from here.
    done_at: Vec<Duration>,
    /// Live event sink; every event is also rendered into `events`.
    sink: &'a mut dyn FnMut(&ShardEvent),
    /// Per-backend counters, index-aligned with `backends`.
    telemetry: Vec<BackendTelemetry>,
    /// The run's trace span; every emitted [`ShardEvent`] doubles as a
    /// structured span event (no-op under a disabled tracer).
    span: Span,
    /// The result cache, when [`ShardConfig::cache_dir`] is set. Read
    /// during planning; written from [`Dispatcher::emit`] on every
    /// sealed shard — the one place every completion passes through.
    cache: Option<RangeCache>,
}

impl Dispatcher<'_> {
    /// The breaker clock.
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Failed exchanges one shard may absorb before the run gives up.
    /// Derived rather than a knob: enough for every backend to strike
    /// out once per dispatch attempt.
    fn failure_budget(&self) -> u32 {
        self.config.shard_attempts.max(1) * self.config.backend_strikes.max(1)
    }

    /// Records an event: renders it into the run's human-readable log,
    /// mirrors it onto the trace span, and hands it to the live sink.
    /// Sealed shards also stamp the straggler detector's clock here —
    /// the one place every completion (primary or speculative) passes
    /// through.
    fn emit(&mut self, event: &ShardEvent) {
        if let ShardEvent::ShardDone { range, rows, .. } = event {
            let now = self.now();
            self.done_at.push(now);
            // Seal the rows into the result cache. Strictly best
            // effort: a full disk degrades the next run to a miss, it
            // never fails this one.
            if let Some(cache) = &self.cache {
                if let Err(why) = cache.store(self.spec, *range, rows) {
                    if self.span.is_traced() {
                        self.span.event(
                            "cache_write_failed",
                            JsonValue::object()
                                .field("start", range.0)
                                .field("end", range.1)
                                .field("why", why.to_string().as_str()),
                        );
                    }
                }
            }
        }
        self.trace(event);
        self.events.push(event.to_string());
        (self.sink)(event);
    }

    /// The trace-span mirror of one [`ShardEvent`]. Field values are
    /// the event's own data — no timing — so the record *structure* is
    /// deterministic for a deterministic dispatch history.
    fn trace(&self, event: &ShardEvent) {
        if !self.span.is_traced() {
            return;
        }
        let (name, fields) = match event {
            ShardEvent::Dispatched {
                shard,
                range: (start, end),
                backend,
            } => (
                "dispatched",
                JsonValue::object()
                    .field("shard", *shard)
                    .field("start", *start)
                    .field("end", *end)
                    .field("backend", backend.as_str()),
            ),
            ShardEvent::Redispatched {
                shard,
                range: (start, end),
                backend,
            } => (
                "redispatched",
                JsonValue::object()
                    .field("shard", *shard)
                    .field("start", *start)
                    .field("end", *end)
                    .field("backend", backend.as_str()),
            ),
            ShardEvent::BackendDead { backend, why } => (
                "backend_dead",
                JsonValue::object()
                    .field("backend", backend.as_str())
                    .field("why", why.as_str()),
            ),
            ShardEvent::ShardFailed {
                shard,
                backend,
                why,
            } => (
                "shard_failed",
                JsonValue::object()
                    .field("shard", *shard)
                    .field("backend", backend.as_str())
                    .field("why", why.as_str()),
            ),
            ShardEvent::Speculated {
                shard,
                range: (start, end),
                backend,
            } => (
                "speculated",
                JsonValue::object()
                    .field("shard", *shard)
                    .field("start", *start)
                    .field("end", *end)
                    .field("backend", backend.as_str()),
            ),
            ShardEvent::SpeculationWon { shard, backend } => (
                "speculation_won",
                JsonValue::object()
                    .field("shard", *shard)
                    .field("backend", backend.as_str()),
            ),
            ShardEvent::CacheHit {
                shard,
                range: (start, end),
                rows,
            } => (
                "cache_hit",
                JsonValue::object()
                    .field("shard", *shard)
                    .field("start", *start)
                    .field("end", *end)
                    .field("rows", rows.len()),
            ),
            ShardEvent::ShardDone {
                shard,
                range: (start, end),
                backend,
                rows,
            } => (
                "shard_done",
                JsonValue::object()
                    .field("shard", *shard)
                    .field("start", *start)
                    .field("end", *end)
                    .field("backend", backend.as_str())
                    .field("rows", rows.len()),
            ),
        };
        self.span.event(name, fields);
    }

    /// Builds the typed give-up error: what completed so far rides
    /// along as a [`PartialCampaign`] instead of being thrown away.
    fn exhausted(&self, detail: String) -> ShardError {
        let mut completed_ranges: Vec<(usize, usize)> = Vec::new();
        let mut results: Vec<ScenarioResult> = Vec::new();
        for shard in &self.shards {
            if let Some(rows) = &shard.rows {
                completed_ranges.push(shard.range);
                results.extend(rows.iter().cloned());
            }
        }
        completed_ranges.sort_unstable();
        results.sort_by_key(|r| r.scenario.index);
        let report_so_far =
            canonical_report_json(self.spec.campaign_seed, &results, &REPORT_AXES).render();
        ShardError::Exhausted {
            detail,
            partial: Box::new(PartialCampaign {
                completed_ranges,
                results,
                report_so_far,
            }),
        }
    }

    /// Charges a failed exchange against a backend's breaker (emitting
    /// [`ShardEvent::BackendDead`] the first time it opens) without
    /// touching any shard's failure budget — the accounting shared by
    /// primary traffic (which additionally burns budget via
    /// [`Dispatcher::fail`]) and speculative traffic (which must never
    /// be able to kill a run that would have completed without it).
    fn strike(&mut self, backend: usize, why: &str) {
        self.failures += 1;
        self.telemetry[backend].strikes.inc();
        let now = self.now();
        let opened = self.backends[backend].breaker.record_failure(now);
        if opened {
            self.telemetry[backend].breaker_opens.inc();
            if self.span.is_traced() {
                self.span.event(
                    "breaker_open",
                    JsonValue::object()
                        .field("backend", self.backends[backend].addr.as_str())
                        .field("opens", u64::from(self.backends[backend].breaker.opens()))
                        .field("why", why),
                );
            }
        }
        if opened && self.backends[backend].breaker.opens() == 1 {
            let addr = self.backends[backend].addr.clone();
            self.emit(&ShardEvent::BackendDead {
                backend: addr,
                why: why.to_owned(),
            });
        }
    }

    /// Records a failed exchange against a backend on behalf of a
    /// shard: feeds the backend's breaker via [`Dispatcher::strike`]
    /// and charges the shard's failure budget, turning budget
    /// exhaustion into the typed [`ShardError::Exhausted`].
    fn fail(&mut self, shard: usize, backend: usize, why: &str) -> Result<(), ShardError> {
        self.strike(backend, why);
        self.shards[shard].failures += 1;
        if self.shards[shard].failures >= self.failure_budget() {
            let (start, end) = self.shards[shard].range;
            return Err(self.exhausted(format!(
                "shard {shard} [{start}, {end}) burned its budget of {} failed exchanges \
                 (last: {why})",
                self.failure_budget()
            )));
        }
        Ok(())
    }

    /// Whether `backend` may be sent a request right now (breaker
    /// closed, or half-open for a probe).
    fn ready(&self, backend: usize) -> bool {
        self.backends[backend].breaker.ready(self.now())
    }

    /// Picks the next ready backend for a shard, preferring anyone
    /// other than `avoid`; falls back to `avoid` itself if it is the
    /// only one ready (a failed *job* on a live backend resumes from
    /// its own journal there). With every breaker open the shard simply
    /// waits — the next half-open probe re-dispatches it, and the
    /// failure budget bounds how long the waiting can go on.
    fn reassign(&mut self, shard: usize, avoid: usize) -> Result<(), ShardError> {
        let k = self.backends.len();
        let target = (1..k)
            .map(|offset| (avoid + offset) % k)
            .find(|&candidate| self.ready(candidate))
            .or_else(|| self.ready(avoid).then_some(avoid));
        let Some(target) = target else {
            return Ok(()); // everyone cooling down; wait for a probe window
        };
        if target == avoid && self.shards[shard].job_id.is_some() {
            // Nowhere better to go and the job is still live there:
            // keep polling it rather than re-submitting in place.
            return Ok(());
        }
        self.telemetry[target].redispatches.inc();
        self.emit(&ShardEvent::Redispatched {
            shard,
            range: self.shards[shard].range,
            backend: self.backends[target].addr.clone(),
        });
        self.shards[shard].backend = target;
        self.shards[shard].job_id = None;
        Ok(())
    }

    /// Submits a shard's sub-spec to its assigned backend.
    fn submit(&mut self, shard: usize) -> Result<(), ShardError> {
        let (start, end) = self.shards[shard].range;
        if self.shards[shard].attempts >= self.config.shard_attempts {
            return Err(self.exhausted(format!(
                "shard {shard} [{start}, {end}) burned all {} dispatch attempts",
                self.config.shard_attempts
            )));
        }
        self.shards[shard].attempts += 1;
        let backend = self.shards[shard].backend;
        let body = self
            .spec
            .clone()
            .scenario_range(start, end)
            .to_json()
            .render();
        let addr = self.backends[backend].addr.clone();
        self.dispatches += 1;
        self.telemetry[backend].dispatches.inc();
        match exchange(
            &addr,
            "POST",
            "/campaigns",
            Some(&body),
            self.config.request_timeout,
        ) {
            Ok((status, response)) => match classify_submit(status, response) {
                SubmitOutcome::Accepted(id) => {
                    self.backends[backend].breaker.record_success();
                    self.shards[shard].job_id = Some(id);
                    self.shards[shard].dispatched_at = self.now();
                    Ok(())
                }
                // A 4xx is about the sub-spec itself; every backend
                // would say the same, so fail loudly now.
                SubmitOutcome::Rejected { status, body } => Err(ShardError::Rejected {
                    backend: addr,
                    status,
                    body,
                }),
                // Everything else (503 draining, 429 shedding, 500
                // store trouble, a 2xx with no id) is this backend's
                // problem or load, not the spec's.
                SubmitOutcome::Retryable { detail, .. } => {
                    self.fail(shard, backend, &detail)?;
                    self.reassign(shard, backend)
                }
            },
            Err(e) => {
                self.fail(shard, backend, &e.to_string())?;
                self.reassign(shard, backend)
            }
        }
    }

    /// Best-effort cancellation of every outstanding shard: `DELETE`
    /// each submitted, unfinished job on its current backend so the
    /// backends stop burning cycles on a campaign nobody is waiting
    /// for. Errors are ignored — an unreachable backend cannot be
    /// asked to stop, and the coordinator is abandoning the run either
    /// way.
    fn cancel_outstanding(&mut self) {
        for shard in 0..self.shards.len() {
            if let Some((backend, id)) = self.shards[shard].spare.take() {
                let addr = self.backends[backend].addr.clone();
                let _ = exchange(
                    &addr,
                    "DELETE",
                    &format!("/campaigns/{id}"),
                    None,
                    self.config.request_timeout,
                );
            }
            if self.shards[shard].rows.is_some() {
                continue;
            }
            let Some(id) = self.shards[shard].job_id.clone() else {
                continue;
            };
            let addr = self.backends[self.shards[shard].backend].addr.clone();
            let _ = exchange(
                &addr,
                "DELETE",
                &format!("/campaigns/{id}"),
                None,
                self.config.request_timeout,
            );
        }
    }

    /// Fetches and validates a finished shard's journal rows.
    fn fetch_rows(&self, shard: usize) -> Result<Vec<ScenarioResult>, String> {
        let addr = &self.backends[self.shards[shard].backend].addr;
        let id = self.shards[shard].job_id.as_deref().expect("polled a job");
        fetch_journal_rows(
            addr,
            id,
            self.grid,
            self.shards[shard].range,
            self.config.request_timeout,
        )
    }

    /// One poll of one outstanding shard. `Ok(())` means "keep going";
    /// shard completion is recorded in place.
    fn poll(&mut self, shard: usize) -> Result<(), ShardError> {
        let backend = self.shards[shard].backend;
        let addr = self.backends[backend].addr.clone();
        let id = self.shards[shard]
            .job_id
            .clone()
            .expect("poll of an unsubmitted shard");
        match exchange(
            &addr,
            "GET",
            &format!("/campaigns/{id}"),
            None,
            self.config.request_timeout,
        ) {
            Ok((200, body)) => {
                self.backends[backend].breaker.record_success();
                match JsonValue::parse(&body)
                    .ok()
                    .as_ref()
                    .and_then(|doc| doc.get("status"))
                    .and_then(JsonValue::as_str)
                {
                    Some("done") => match self.fetch_rows(shard) {
                        Ok(rows) => {
                            // The event carries the rows to the live sink
                            // (the executor layer streams them on as
                            // per-scenario events), then they come back
                            // out for the merge.
                            let event = ShardEvent::ShardDone {
                                shard,
                                range: self.shards[shard].range,
                                backend: addr,
                                rows,
                            };
                            self.emit(&event);
                            let ShardEvent::ShardDone { rows, .. } = event else {
                                unreachable!("just constructed")
                            };
                            self.shards[shard].rows = Some(rows);
                            Ok(())
                        }
                        Err(why) => {
                            // A "done" job whose journal does not check
                            // out is a misbehaving backend: strike it and
                            // run the range somewhere trustworthy.
                            self.fail(shard, backend, &why)?;
                            self.reassign(shard, backend)
                        }
                    },
                    Some("failed") => {
                        self.failures += 1;
                        self.emit(&ShardEvent::ShardFailed {
                            shard,
                            backend: addr,
                            why: body,
                        });
                        // A failed job never un-fails: drop its id so the
                        // next sweep *resubmits* (elsewhere fresh; on the
                        // same sole surviving backend it re-enqueues and
                        // resumes from the journal) instead of re-polling
                        // the same terminal status forever. Resubmission
                        // is bounded by `shard_attempts`, which is what
                        // terminates a deterministically failing range.
                        self.shards[shard].job_id = None;
                        self.reassign(shard, backend)
                    }
                    // Someone cancelled the shard's job out from under
                    // us (operator DELETE, backend shutdown): clear the
                    // job id so the next sweep resubmits — which
                    // re-enqueues and resumes on the backend, and is
                    // bounded by `shard_attempts` like any dispatch.
                    Some("cancelled") => {
                        self.shards[shard].job_id = None;
                        Ok(())
                    }
                    Some(_) => Ok(()), // queued / running
                    None => {
                        self.fail(shard, backend, "status document has no status")?;
                        self.reassign(shard, backend)
                    }
                }
            }
            // The backend no longer knows the job (restarted over a
            // fresh data dir): submit it again wherever it lives now.
            Ok((404, _)) => {
                self.backends[backend].breaker.record_success();
                self.shards[shard].job_id = None;
                Ok(())
            }
            Ok((status, body)) => {
                self.fail(
                    shard,
                    backend,
                    &format!("status poll answered {status}: {body}"),
                )?;
                self.reassign(shard, backend)
            }
            Err(e) => {
                self.fail(shard, backend, &e.to_string())?;
                // A transient blip on a still-closed breaker keeps the
                // job in place (the next sweep re-polls); an opened
                // breaker moves the shard to whoever is ready.
                if self.ready(backend) {
                    Ok(())
                } else {
                    self.reassign(shard, backend)
                }
            }
        }
    }

    /// One step of one outstanding shard: gate on the backend's
    /// breaker, then submit or poll. A shard on a cooling-down backend
    /// moves to a ready one if there is one, else waits for the
    /// breaker's next probe window.
    fn step(&mut self, shard: usize) -> Result<(), ShardError> {
        let backend = self.shards[shard].backend;
        if !self.ready(backend) {
            self.reassign(shard, backend)?;
            if !self.ready(self.shards[shard].backend) {
                return Ok(()); // still gated: everyone is cooling down
            }
        }
        if self.shards[shard].job_id.is_none() {
            self.submit(shard)
        } else {
            self.poll(shard)
        }
    }

    /// The straggler bar: a shard is a straggler once it has been
    /// outstanding longer than both the `speculate_after` floor and
    /// `speculate_factor ×` the median sealed-shard completion stamp.
    /// `None` until at least half the shards have sealed — the median
    /// is meaningless earlier, and a campaign whose shards all lag
    /// together has no straggler, just a slow fleet.
    fn straggler_bar(&self) -> Option<Duration> {
        if self.shards.len() < 2 || self.done_at.len() * 2 < self.shards.len() {
            return None;
        }
        let mut stamps = self.done_at.clone();
        stamps.sort_unstable();
        let median = stamps[stamps.len() / 2];
        Some(
            self.config
                .speculate_after
                .max(median * self.config.speculate_factor.max(1)),
        )
    }

    /// One speculation step of one outstanding shard: poll a live
    /// spare, or duplicate the shard onto a second ready backend once
    /// it lags the straggler bar. Infallible by design — speculative
    /// traffic strikes breakers but never burns a shard's failure
    /// budget, so switching it on cannot make a completable run fail.
    fn spare_step(&mut self, shard: usize) {
        if !self.config.speculate || self.shards[shard].rows.is_some() {
            return;
        }
        if self.shards[shard].spare.is_some() {
            self.poll_spare(shard);
            return;
        }
        if self.shards[shard].job_id.is_none() {
            return; // nothing accepted yet; nothing to straggle behind
        }
        let Some(bar) = self.straggler_bar() else {
            return;
        };
        let now = self.now();
        if now.saturating_sub(self.shards[shard].dispatched_at) <= bar {
            return;
        }
        let primary = self.shards[shard].backend;
        let k = self.backends.len();
        let Some(target) = (1..k)
            .map(|offset| (primary + offset) % k)
            .find(|&candidate| self.ready(candidate))
        else {
            return; // no second backend ready; keep waiting on the primary
        };
        let (start, end) = self.shards[shard].range;
        let body = self
            .spec
            .clone()
            .scenario_range(start, end)
            .to_json()
            .render();
        let addr = self.backends[target].addr.clone();
        self.dispatches += 1;
        self.telemetry[target].dispatches.inc();
        self.telemetry[target].speculations.inc();
        match exchange(
            &addr,
            "POST",
            "/campaigns",
            Some(&body),
            self.config.request_timeout,
        ) {
            Ok((status, response)) => match classify_submit(status, response) {
                SubmitOutcome::Accepted(id) => {
                    self.backends[target].breaker.record_success();
                    self.shards[shard].spare = Some((target, id));
                    self.emit(&ShardEvent::Speculated {
                        shard,
                        range: (start, end),
                        backend: addr,
                    });
                }
                // The primary backend accepted these exact spec bytes,
                // so a peer refusing them is misbehaving, not right.
                SubmitOutcome::Rejected { status, body } => {
                    self.strike(target, &format!("spare submit refused ({status}): {body}"));
                }
                SubmitOutcome::Retryable { detail, .. } => self.strike(target, &detail),
            },
            Err(e) => self.strike(target, &e.to_string()),
        }
    }

    /// Polls a shard's speculative duplicate. A spare that seals first
    /// wins: its validated rows become the shard's rows and the
    /// straggling primary's job is cancelled. A spare that fails in any
    /// way is simply dropped — the primary path carries on untouched.
    fn poll_spare(&mut self, shard: usize) {
        let Some((backend, id)) = self.shards[shard].spare.clone() else {
            return;
        };
        if !self.ready(backend) {
            self.shards[shard].spare = None;
            return;
        }
        let addr = self.backends[backend].addr.clone();
        match exchange(
            &addr,
            "GET",
            &format!("/campaigns/{id}"),
            None,
            self.config.request_timeout,
        ) {
            Ok((200, body)) => {
                self.backends[backend].breaker.record_success();
                match JsonValue::parse(&body)
                    .ok()
                    .as_ref()
                    .and_then(|doc| doc.get("status"))
                    .and_then(JsonValue::as_str)
                {
                    Some("done") => {
                        let fetched = fetch_journal_rows(
                            &addr,
                            &id,
                            self.grid,
                            self.shards[shard].range,
                            self.config.request_timeout,
                        );
                        match fetched {
                            Ok(rows) => {
                                self.telemetry[backend].speculation_wins.inc();
                                self.emit(&ShardEvent::SpeculationWon {
                                    shard,
                                    backend: addr.clone(),
                                });
                                let event = ShardEvent::ShardDone {
                                    shard,
                                    range: self.shards[shard].range,
                                    backend: addr,
                                    rows,
                                };
                                self.emit(&event);
                                let ShardEvent::ShardDone { rows, .. } = event else {
                                    unreachable!("just constructed")
                                };
                                self.shards[shard].rows = Some(rows);
                                self.shards[shard].spare = None;
                                // Cancel the straggling loser (best
                                // effort — an unreachable primary will
                                // finish into its own journal and cache
                                // harmlessly).
                                if let Some(primary_id) = self.shards[shard].job_id.take() {
                                    let primary_addr =
                                        self.backends[self.shards[shard].backend].addr.clone();
                                    let _ = exchange(
                                        &primary_addr,
                                        "DELETE",
                                        &format!("/campaigns/{primary_id}"),
                                        None,
                                        self.config.request_timeout,
                                    );
                                }
                            }
                            Err(why) => {
                                self.strike(backend, &why);
                                self.shards[shard].spare = None;
                            }
                        }
                    }
                    // A failed/cancelled/unknown spare is dropped, not
                    // retried: speculation is opportunistic.
                    Some("failed") | Some("cancelled") => self.shards[shard].spare = None,
                    Some(_) => {} // queued / running
                    None => {
                        self.strike(backend, "spare status document has no status");
                        self.shards[shard].spare = None;
                    }
                }
            }
            Ok((404, _)) => {
                self.backends[backend].breaker.record_success();
                self.shards[shard].spare = None;
            }
            Ok((status, body)) => {
                self.strike(
                    backend,
                    &format!("spare status poll answered {status}: {body}"),
                );
                self.shards[shard].spare = None;
            }
            Err(e) => {
                self.strike(backend, &e.to_string());
                self.shards[shard].spare = None;
            }
        }
    }

    /// Cancels the losing half of a resolved speculation: once a shard
    /// has sealed rows, whichever duplicate job is still outstanding is
    /// best-effort `DELETE`d so no backend keeps burning cycles on it.
    fn reap_spare(&mut self, shard: usize) {
        if self.shards[shard].rows.is_none() {
            return;
        }
        let Some((backend, id)) = self.shards[shard].spare.take() else {
            return;
        };
        let addr = self.backends[backend].addr.clone();
        let _ = exchange(
            &addr,
            "DELETE",
            &format!("/campaigns/{id}"),
            None,
            self.config.request_timeout,
        );
    }
}

/// Runs `spec` sharded across `backends` (each a `HOST:PORT` of a
/// running `serve` instance): partition the grid into contiguous
/// scenario ranges, submit one ranged sub-spec per backend, poll to
/// completion re-dispatching failed or unreachable shards to the
/// survivors, and merge the journals into the canonical report.
///
/// The returned report is **byte-identical** to
/// [`canonical_report_json`] of an unsharded single-threaded run of
/// `spec` — the invariant `crates/shard/tests/cross_shard.rs` enforces
/// against real killed processes.
///
/// This is the convenience form of [`run_sharded_ctl`]: uniform
/// partitioning, no cancellation, no live event sink (events still end
/// up rendered in [`ShardRun::events`]).
///
/// # Errors
///
/// See [`ShardError`]. Backend failures are survived as long as one
/// backend lives; spec rejections and exhausted backends are fatal.
///
/// # Panics
///
/// Panics if the spec enumerates no feasible grid (same contract as
/// [`CampaignSpec::scenarios`]).
pub fn run_sharded(
    spec: &CampaignSpec,
    backends: &[String],
    config: &ShardConfig,
) -> Result<ShardRun, ShardError> {
    run_sharded_ctl(spec, backends, None, config, &CancelToken::new(), |_| {})
}

/// The controllable core of [`run_sharded`]: the same dispatch loop
/// with three extra seams the unified executor API drives.
///
/// * `weights` — optional per-backend capacity weights (one per
///   backend); the grid partitions proportionally via
///   [`partition_weighted`] instead of evenly. Backends whose share
///   rounds to zero scenarios simply receive no initial shard.
/// * `cancel` — checked between poll sweeps; on cancellation every
///   outstanding shard's job receives a best-effort `DELETE` (so its
///   backend stops working) and the run returns
///   [`ShardError::Cancelled`].
/// * `on_event` — called with every [`ShardEvent`] the moment it
///   happens: dispatches, re-dispatches, backend deaths, shard
///   failures, cache splices, and completed shards (with their
///   validated rows).
///
/// With [`ShardConfig::cache_dir`] set, planning consults the
/// range-granular result cache first: sealed ranges on disk become
/// pre-sealed shards ([`ShardEvent::CacheHit`]) and only the uncovered
/// gaps partition across the backends; every shard that seals writes
/// its rows back. The report bytes are identical either way.
///
/// A parent spec carrying its own `scenario_range` shards only that
/// slice (the scenarios the local and remote execution paths would
/// run), and the merged report covers exactly the slice.
///
/// # Errors
///
/// See [`ShardError`].
///
/// # Panics
///
/// Panics if the spec enumerates no feasible grid (same contract as
/// [`CampaignSpec::scenarios`]) or if `weights` is present but invalid
/// for [`partition_weighted`].
pub fn run_sharded_ctl(
    spec: &CampaignSpec,
    backends: &[String],
    weights: Option<&[f64]>,
    config: &ShardConfig,
    cancel: &CancelToken,
    mut on_event: impl FnMut(&ShardEvent),
) -> Result<ShardRun, ShardError> {
    if backends.is_empty() {
        return Err(ShardError::NoBackends);
    }
    if let Some(weights) = weights {
        if weights.len() != backends.len() {
            return Err(ShardError::BadWeights(format!(
                "{} weights for {} backends",
                weights.len(),
                backends.len()
            )));
        }
        // Value validation here, typed — so a caller's bad weights
        // surface as BadWeights, not as partition_weighted's panic.
        crate::partition::validate_weights(weights).map_err(ShardError::BadWeights)?;
    }
    let grid = spec.scenarios();
    // A ranged parent spec shards only its own execution slice — the
    // indices the local and remote paths would run — so the merged
    // report stays byte-identical across executors for ranged specs
    // too. (Unranged specs: the whole grid, as before.)
    let active = spec.active_range(grid.len());
    // The result cache, when configured: every sealed range already on
    // disk (validated row by row against this spec's grid) is spliced
    // instead of dispatched.
    let cache = config.cache_dir.as_ref().map(RangeCache::new);
    let cache_stats = cache.as_ref().map(|_| cache_telemetry());
    let mut cached_rows = match &cache {
        Some(cache) => {
            let mut rows = cache.load(spec, &grid);
            rows.retain(|index, _| active.contains(index));
            rows
        }
        None => std::collections::BTreeMap::new(),
    };
    // The dispatch plan: per shard its backend, global range, and —
    // for ranges served from the cache — the pre-sealed rows.
    let offset = |(start, end): (usize, usize)| (active.start + start, active.start + end);
    let mut plan: Vec<(usize, (usize, usize), Option<Vec<ScenarioResult>>)> = Vec::new();
    if cached_rows.is_empty() {
        // Cold (or no) cache: exactly the classic partitioning.
        // Weighted ranges stay index-aligned with their backends (empty
        // ranges are skipped); uniform ranges round-robin, which for
        // the common `shards == backends` case is the same alignment.
        match weights {
            Some(weights) => {
                for (k, range) in partition_weighted(active.len(), weights)
                    .into_iter()
                    .enumerate()
                {
                    if range.0 < range.1 {
                        plan.push((k, offset(range), None));
                    }
                }
            }
            None => {
                for (k, range) in partition(active.len(), backends.len())
                    .into_iter()
                    .enumerate()
                {
                    plan.push((k % backends.len(), offset(range), None));
                }
            }
        }
    } else {
        // Split the active range at cache-coverage boundaries: each
        // maximal cached run becomes one pre-sealed shard, and each gap
        // partitions across the backends on its own — so scattered
        // coverage (an incremental campaign's translated rows) still
        // narrows execution to exactly the uncovered cells.
        let mut pos = active.start;
        while pos < active.end {
            let covered = cached_rows.contains_key(&pos);
            let mut end = pos + 1;
            while end < active.end && cached_rows.contains_key(&end) == covered {
                end += 1;
            }
            if covered {
                let rows: Vec<ScenarioResult> = (pos..end)
                    .map(|index| cached_rows.remove(&index).expect("segment is covered"))
                    .collect();
                plan.push((0, (pos, end), Some(rows)));
            } else {
                match weights {
                    Some(weights) => {
                        for (k, (a, b)) in partition_weighted(end - pos, weights)
                            .into_iter()
                            .enumerate()
                        {
                            if a < b {
                                plan.push((k, (pos + a, pos + b), None));
                            }
                        }
                    }
                    None => {
                        for (k, (a, b)) in
                            partition(end - pos, backends.len()).into_iter().enumerate()
                        {
                            plan.push((k % backends.len(), (pos + a, pos + b), None));
                        }
                    }
                }
            }
            pos = end;
        }
    }
    let shard_count = plan.len();
    let spliced: usize = plan
        .iter()
        .map(|(_, _, sealed)| sealed.as_ref().map_or(0, Vec::len))
        .sum();
    let breaker_backoff = |index: u64| {
        Backoff::new(
            config.breaker_cooldown,
            config.breaker_max,
            // Per-backend jitter lane: breakers with the same run seed
            // still de-synchronize their probes against each other.
            config.backoff_seed ^ index.wrapping_mul(chunkpoint_campaign::seed::GOLDEN_GAMMA),
        )
    };
    let mut dispatcher = Dispatcher {
        spec,
        grid: &grid,
        config,
        epoch: Instant::now(),
        backends: backends
            .iter()
            .enumerate()
            .map(|(index, addr)| Backend {
                addr: addr.clone(),
                breaker: CircuitBreaker::new(
                    config.backend_strikes,
                    breaker_backoff(index as u64 + 1),
                ),
            })
            .collect(),
        shards: plan
            .iter()
            .map(|&(backend, range, _)| Shard {
                range,
                backend,
                job_id: None,
                rows: None,
                attempts: 0,
                failures: 0,
                dispatched_at: Duration::ZERO,
                spare: None,
            })
            .collect(),
        dispatches: 0,
        failures: 0,
        events: Vec::new(),
        done_at: Vec::new(),
        sink: &mut on_event,
        telemetry: backends
            .iter()
            .map(|addr| backend_telemetry(addr))
            .collect(),
        span: config.tracer.root("shard_run"),
        cache,
    };
    for (shard, (backend, range, sealed)) in plan.into_iter().enumerate() {
        match sealed {
            Some(rows) => {
                if let Some(stats) = &cache_stats {
                    stats.hits.inc();
                    stats.rows_spliced.add(rows.len() as u64);
                }
                let event = ShardEvent::CacheHit { shard, range, rows };
                dispatcher.emit(&event);
                let ShardEvent::CacheHit { rows, .. } = event else {
                    unreachable!("just constructed")
                };
                dispatcher.shards[shard].rows = Some(rows);
            }
            None => {
                if let Some(stats) = &cache_stats {
                    stats.misses.inc();
                }
                dispatcher.emit(&ShardEvent::Dispatched {
                    shard,
                    range,
                    backend: backends[backend].clone(),
                });
            }
        }
    }
    // Sweep pacing: `poll_interval` while the run makes progress,
    // backing off deterministically toward `poll_max` across idle
    // sweeps — a long-running shard is not hammered at submit cadence.
    let poll_backoff = Backoff::new(config.poll_interval, config.poll_max, config.backoff_seed);
    let sweeps = poll_sweeps();
    let mut idle_sweeps = 0u32;
    loop {
        if cancel.is_cancelled() {
            dispatcher.cancel_outstanding();
            return Err(ShardError::Cancelled);
        }
        let mut outstanding = false;
        let before = (
            dispatcher.dispatches,
            dispatcher.failures,
            dispatcher
                .shards
                .iter()
                .filter(|s| s.rows.is_some())
                .count(),
        );
        for shard in 0..dispatcher.shards.len() {
            if dispatcher.shards[shard].rows.is_some() {
                dispatcher.reap_spare(shard);
                continue;
            }
            outstanding = true;
            dispatcher.step(shard)?;
            dispatcher.spare_step(shard);
            dispatcher.reap_spare(shard);
        }
        if !outstanding {
            break;
        }
        let after = (
            dispatcher.dispatches,
            dispatcher.failures,
            dispatcher
                .shards
                .iter()
                .filter(|s| s.rows.is_some())
                .count(),
        );
        // Anything observable — a dispatch, a failure, a finished shard
        // — resets the backoff; only truly idle sweeps stretch it.
        if after == before {
            idle_sweeps = idle_sweeps.saturating_add(1);
        } else {
            idle_sweeps = 0;
        }
        sweeps.inc();
        std::thread::sleep(poll_backoff.delay(idle_sweeps));
    }
    let rows: Vec<ScenarioResult> = dispatcher
        .shards
        .into_iter()
        .flat_map(|shard| {
            shard
                .rows
                .expect("loop exits only when every shard has rows")
        })
        .collect();
    let (report, results) = merged_report_over(spec.campaign_seed, active, rows)?;
    Ok(ShardRun {
        report,
        results,
        shards: shard_count,
        dispatches: dispatcher.dispatches,
        failures: dispatcher.failures,
        spliced,
        events: dispatcher.events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chunkpoint_campaign::{run_campaign, SchemeSpec};
    use chunkpoint_core::{MitigationScheme, SystemConfig};
    use chunkpoint_workloads::Benchmark;

    fn small_spec() -> CampaignSpec {
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        CampaignSpec::new(config, 0x5A4D)
            .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
            .replicates(3)
    }

    /// Satellite: the merge sorts by global scenario index, so shard
    /// arrival order — whichever backend finishes first — cannot change
    /// the report bytes.
    #[test]
    fn merge_is_deterministic_regardless_of_arrival_order() {
        let spec = small_spec();
        let full = run_campaign(&spec, 1);
        let n = full.results.len();
        let expected =
            canonical_report_json(spec.campaign_seed, &full.results, &REPORT_AXES).render();
        // Three shards arriving in every permutation, each shard's rows
        // additionally reversed (journals are completion-ordered, not
        // index-ordered).
        let ranges = partition(n, 3);
        let shards: Vec<Vec<ScenarioResult>> = ranges
            .iter()
            .map(|&(start, end)| {
                let mut rows = full.results[start..end].to_vec();
                rows.reverse();
                rows
            })
            .collect();
        for order in [
            [0usize, 1, 2],
            [2, 1, 0],
            [1, 2, 0],
            [0, 2, 1],
            [2, 0, 1],
            [1, 0, 2],
        ] {
            let arrival: Vec<ScenarioResult> =
                order.iter().flat_map(|&k| shards[k].clone()).collect();
            let (report, merged) = merged_report(spec.campaign_seed, n, arrival).expect("merge");
            assert_eq!(
                report, expected,
                "arrival order {order:?} changed the bytes"
            );
            assert!(merged
                .windows(2)
                .all(|w| w[0].scenario.index < w[1].scenario.index));
        }
    }

    #[test]
    fn merge_rejects_gaps_and_duplicates() {
        let spec = small_spec();
        let full = run_campaign(&spec, 1);
        let n = full.results.len();
        // Gap: drop one row.
        let mut gapped = full.results.clone();
        gapped.remove(2);
        let err = merged_report(spec.campaign_seed, n, gapped).expect_err("gap");
        assert!(matches!(err, ShardError::BadMerge(_)), "{err}");
        // Duplicate: repeat one row (length back to n).
        let mut duplicated = full.results.clone();
        duplicated.remove(2);
        duplicated.push(full.results[5].clone());
        let err = merged_report(spec.campaign_seed, n, duplicated).expect_err("duplicate");
        let message = err.to_string();
        assert!(
            message.contains("duplicated") || message.contains("missing"),
            "{message}"
        );
    }

    #[test]
    fn no_backends_is_a_typed_error() {
        let err = run_sharded(&small_spec(), &[], &ShardConfig::default()).expect_err("empty");
        assert!(matches!(err, ShardError::NoBackends));
    }
}
