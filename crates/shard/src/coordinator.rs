//! The shard coordinator: split one campaign across several `serve`
//! backends, survive backend failures, and merge the journals back into
//! the canonical single-machine report.
//!
//! The dispatch loop is deliberately simple because determinism does all
//! the heavy lifting: a shard is a [`CampaignSpec`] with a
//! `scenario_range` restriction, every scenario's seed derives from
//! `(campaign_seed, global_index)`, so *where* and *how many times* a
//! range runs cannot change a single byte of its rows. Re-dispatching a
//! failed shard to any other backend — or the same one — is therefore
//! always safe, and the merged report is byte-identical to an unsharded
//! run no matter which backends did the work or in what order they
//! finished.

use std::time::Duration;

use chunkpoint_campaign::{
    canonical_report_json, CampaignSpec, JsonValue, Scenario, ScenarioResult,
};
use chunkpoint_serve::REPORT_AXES;

use crate::client::exchange;
use crate::partition::partition;

/// Coordinator knobs. The defaults suit a LAN of `serve` instances.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Pause between poll sweeps over the outstanding shards.
    pub poll_interval: Duration,
    /// Connect/read/write timeout of every HTTP exchange.
    pub request_timeout: Duration,
    /// Consecutive failed exchanges before a backend is declared dead
    /// and its shards re-dispatch to the survivors.
    pub backend_strikes: u32,
    /// Submission attempts one shard may burn (first dispatch included)
    /// before the run gives up — the terminator for a range that fails
    /// *deterministically* on every backend (a scenario that panics, a
    /// full disk everywhere), which transport strikes alone would
    /// ping-pong forever.
    pub shard_attempts: u32,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            poll_interval: Duration::from_millis(25),
            request_timeout: Duration::from_secs(10),
            backend_strikes: 3,
            shard_attempts: 5,
        }
    }
}

/// Why a sharded campaign could not complete.
#[derive(Debug)]
pub enum ShardError {
    /// The backend list was empty.
    NoBackends,
    /// A backend answered a submit with a client error — the sub-spec
    /// itself is bad, so no amount of re-dispatching can help.
    Rejected {
        /// The backend that answered.
        backend: String,
        /// Its HTTP status.
        status: u16,
        /// Its error body.
        body: String,
    },
    /// Every backend struck out with shards still outstanding.
    Exhausted {
        /// What the coordinator saw last.
        detail: String,
    },
    /// The merged rows do not cover the grid exactly once each —
    /// overlapping or gapped journals.
    BadMerge(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::NoBackends => write!(f, "no backends to shard across"),
            ShardError::Rejected {
                backend,
                status,
                body,
            } => write!(
                f,
                "backend {backend} rejected the sub-spec ({status}): {body}"
            ),
            ShardError::Exhausted { detail } => {
                write!(f, "every backend struck out: {detail}")
            }
            ShardError::BadMerge(why) => write!(f, "journal merge failed: {why}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// A completed sharded campaign.
#[derive(Debug)]
pub struct ShardRun {
    /// The canonical timing-free report — byte-identical to
    /// `canonical_report_json` of an unsharded single-threaded run.
    pub report: String,
    /// Merged per-scenario rows in global scenario-index order.
    pub results: Vec<ScenarioResult>,
    /// Ranges the grid was split into.
    pub shards: usize,
    /// Sub-spec submissions, including re-dispatches (`> shards` means
    /// at least one shard moved).
    pub dispatches: usize,
    /// Failed exchanges and failed jobs observed along the way.
    pub failures: usize,
    /// Human-readable dispatch decisions, in order.
    pub events: Vec<String>,
}

/// Merges per-shard journal rows into the canonical campaign report.
///
/// The merge — not shard arrival order — defines the report's ordering:
/// rows sort by **global scenario index**, so any assignment of ranges
/// to backends, any completion order, and any interleaving of journal
/// fetches produce the same bytes. `grid_len` is the full campaign's
/// scenario count; the merged rows must cover `0..grid_len` exactly
/// once each.
///
/// # Errors
///
/// [`ShardError::BadMerge`] on duplicate, missing, or out-of-grid rows.
pub fn merged_report(
    campaign_seed: u64,
    grid_len: usize,
    mut rows: Vec<ScenarioResult>,
) -> Result<(String, Vec<ScenarioResult>), ShardError> {
    rows.sort_by_key(|r| r.scenario.index);
    if rows.len() != grid_len {
        return Err(ShardError::BadMerge(format!(
            "merged {} rows for a {grid_len}-scenario grid",
            rows.len()
        )));
    }
    for (expected, row) in rows.iter().enumerate() {
        if row.scenario.index != expected {
            return Err(ShardError::BadMerge(format!(
                "scenario {expected} is {}, found index {} in its place",
                if row.scenario.index > expected {
                    "missing"
                } else {
                    "duplicated"
                },
                row.scenario.index
            )));
        }
    }
    let report = canonical_report_json(campaign_seed, &rows, &REPORT_AXES).render();
    Ok((report, rows))
}

/// One backend's liveness bookkeeping.
struct Backend {
    addr: String,
    strikes: u32,
    dead: bool,
}

/// One contiguous slice of the grid and where it currently lives.
struct Shard {
    range: (usize, usize),
    backend: usize,
    job_id: Option<String>,
    rows: Option<Vec<ScenarioResult>>,
    /// Submissions burned so far (bounded by `shard_attempts`).
    attempts: u32,
}

/// The coordinator state machine driving [`run_sharded`].
struct Dispatcher<'a> {
    spec: &'a CampaignSpec,
    /// The full grid, enumerated once — journal validation needs every
    /// row's expected scenario (index + derived seed).
    grid: &'a [Scenario],
    config: &'a ShardConfig,
    backends: Vec<Backend>,
    shards: Vec<Shard>,
    dispatches: usize,
    failures: usize,
    events: Vec<String>,
}

impl Dispatcher<'_> {
    /// Records a failed exchange against a backend; marks it dead after
    /// `backend_strikes` consecutive failures.
    fn strike(&mut self, backend: usize, why: &str) {
        self.failures += 1;
        let b = &mut self.backends[backend];
        b.strikes += 1;
        if !b.dead && b.strikes >= self.config.backend_strikes {
            b.dead = true;
            self.events
                .push(format!("backend {} struck out: {why}", b.addr));
        }
    }

    /// Picks the next live backend for a shard, preferring anyone other
    /// than `avoid`. Falls back to `avoid` itself if it is the only
    /// survivor (a failed *job* on a live backend resumes from its own
    /// journal there).
    fn reassign(&mut self, shard: usize, avoid: usize) -> Result<(), ShardError> {
        let k = self.backends.len();
        let target = (1..k)
            .map(|offset| (avoid + offset) % k)
            .find(|&candidate| !self.backends[candidate].dead)
            .or_else(|| (!self.backends[avoid].dead).then_some(avoid));
        let Some(target) = target else {
            return Err(ShardError::Exhausted {
                detail: format!(
                    "no live backend left for shard {shard} [{}, {})",
                    self.shards[shard].range.0, self.shards[shard].range.1
                ),
            });
        };
        let (start, end) = self.shards[shard].range;
        self.events.push(format!(
            "shard {shard} [{start}, {end}) → {}",
            self.backends[target].addr
        ));
        self.shards[shard].backend = target;
        self.shards[shard].job_id = None;
        Ok(())
    }

    /// Submits a shard's sub-spec to its assigned backend.
    fn submit(&mut self, shard: usize) -> Result<(), ShardError> {
        let (start, end) = self.shards[shard].range;
        if self.shards[shard].attempts >= self.config.shard_attempts {
            return Err(ShardError::Exhausted {
                detail: format!(
                    "shard {shard} [{start}, {end}) burned all {} dispatch attempts",
                    self.config.shard_attempts
                ),
            });
        }
        self.shards[shard].attempts += 1;
        let backend = self.shards[shard].backend;
        let body = self
            .spec
            .clone()
            .scenario_range(start, end)
            .to_json()
            .render();
        let addr = self.backends[backend].addr.clone();
        self.dispatches += 1;
        match exchange(
            &addr,
            "POST",
            "/campaigns",
            Some(&body),
            self.config.request_timeout,
        ) {
            Ok((status @ (200 | 202), response)) => {
                match JsonValue::parse(&response)
                    .ok()
                    .as_ref()
                    .and_then(|doc| doc.get("id"))
                    .and_then(JsonValue::as_str)
                {
                    Some(id) => {
                        self.backends[backend].strikes = 0;
                        self.shards[shard].job_id = Some(id.to_owned());
                        Ok(())
                    }
                    None => {
                        self.strike(backend, &format!("submit answered {status} with no id"));
                        self.reassign(shard, backend)
                    }
                }
            }
            // A 4xx is about the sub-spec itself; every backend would
            // say the same, so fail loudly now.
            Ok((status @ 400..=499, response)) => Err(ShardError::Rejected {
                backend: addr,
                status,
                body: response,
            }),
            // Everything else (503 draining, 500 store trouble, weird
            // codes) is this backend's problem, not the spec's.
            Ok((status, response)) => {
                self.strike(backend, &format!("submit answered {status}: {response}"));
                self.reassign(shard, backend)
            }
            Err(e) => {
                self.strike(backend, &e.to_string());
                self.reassign(shard, backend)
            }
        }
    }

    /// Fetches and validates a finished shard's journal rows.
    fn fetch_rows(&self, shard: usize) -> Result<Vec<ScenarioResult>, String> {
        let (start, end) = self.shards[shard].range;
        let addr = &self.backends[self.shards[shard].backend].addr;
        let id = self.shards[shard].job_id.as_deref().expect("polled a job");
        let (status, body) = exchange(
            addr,
            "GET",
            &format!("/campaigns/{id}/journal"),
            None,
            self.config.request_timeout,
        )
        .map_err(|e| e.to_string())?;
        if status != 200 {
            return Err(format!("journal fetch answered {status}: {body}"));
        }
        let doc = JsonValue::parse(&body).map_err(|e| format!("journal is not JSON: {e}"))?;
        let rows = doc
            .get("rows")
            .and_then(JsonValue::as_array)
            .ok_or("journal document has no \"rows\" array")?;
        // Journals are completion-ordered and — across a resume — may
        // repeat an index; first occurrence wins, same as the service's
        // own loader. Validation is the strict row check: every row must
        // be this campaign's (index + derived seed) and in this shard's
        // range.
        let mut out: Vec<Option<ScenarioResult>> = vec![None; end - start];
        for row in rows {
            let index = row
                .get("index")
                .and_then(JsonValue::as_u64)
                .ok_or("journal row has no index")? as usize;
            if index < start || index >= end {
                return Err(format!(
                    "journal row indexes scenario {index} outside shard range [{start}, {end})"
                ));
            }
            let slot = &mut out[index - start];
            if slot.is_some() {
                continue;
            }
            *slot = Some(ScenarioResult::from_json(row, self.grid[index].clone())?);
        }
        let have = out.iter().filter(|slot| slot.is_some()).count();
        if have != end - start {
            return Err(format!(
                "journal covers {have} of {} scenarios in [{start}, {end})",
                end - start
            ));
        }
        Ok(out.into_iter().map(|slot| slot.expect("counted")).collect())
    }

    /// One poll of one outstanding shard. `Ok(())` means "keep going";
    /// shard completion is recorded in place.
    fn poll(&mut self, shard: usize) -> Result<(), ShardError> {
        let backend = self.shards[shard].backend;
        let addr = self.backends[backend].addr.clone();
        let id = self.shards[shard]
            .job_id
            .clone()
            .expect("poll of an unsubmitted shard");
        match exchange(
            &addr,
            "GET",
            &format!("/campaigns/{id}"),
            None,
            self.config.request_timeout,
        ) {
            Ok((200, body)) => {
                self.backends[backend].strikes = 0;
                match JsonValue::parse(&body)
                    .ok()
                    .as_ref()
                    .and_then(|doc| doc.get("status"))
                    .and_then(JsonValue::as_str)
                {
                    Some("done") => match self.fetch_rows(shard) {
                        Ok(rows) => {
                            self.shards[shard].rows = Some(rows);
                            Ok(())
                        }
                        Err(why) => {
                            // A "done" job whose journal does not check
                            // out is a misbehaving backend: strike it and
                            // run the range somewhere trustworthy.
                            self.strike(backend, &why);
                            self.reassign(shard, backend)
                        }
                    },
                    Some("failed") => {
                        self.failures += 1;
                        let why = format!("backend {addr} reported the shard failed: {body}");
                        self.events.push(why);
                        // Resubmission elsewhere runs the range fresh; on
                        // the same (sole surviving) backend it re-enqueues
                        // and resumes from the journal.
                        self.reassign(shard, backend)
                    }
                    Some(_) => Ok(()), // queued / running / cancelled-being-resumed
                    None => {
                        self.strike(backend, "status document has no status");
                        self.reassign(shard, backend)
                    }
                }
            }
            // The backend no longer knows the job (restarted over a
            // fresh data dir): submit it again wherever it lives now.
            Ok((404, _)) => {
                self.shards[shard].job_id = None;
                Ok(())
            }
            Ok((status, body)) => {
                self.strike(backend, &format!("status poll answered {status}: {body}"));
                self.reassign(shard, backend)
            }
            Err(e) => {
                self.strike(backend, &e.to_string());
                if self.backends[backend].dead {
                    self.reassign(shard, backend)
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// Runs `spec` sharded across `backends` (each a `HOST:PORT` of a
/// running `serve` instance): partition the grid into contiguous
/// scenario ranges, submit one ranged sub-spec per backend, poll to
/// completion re-dispatching failed or unreachable shards to the
/// survivors, and merge the journals into the canonical report.
///
/// The returned report is **byte-identical** to
/// [`canonical_report_json`] of an unsharded single-threaded run of
/// `spec` — the invariant `crates/shard/tests/cross_shard.rs` enforces
/// against real killed processes.
///
/// # Errors
///
/// See [`ShardError`]. Backend failures are survived as long as one
/// backend lives; spec rejections and exhausted backends are fatal.
///
/// # Panics
///
/// Panics if the spec enumerates no feasible grid (same contract as
/// [`CampaignSpec::scenarios`]).
pub fn run_sharded(
    spec: &CampaignSpec,
    backends: &[String],
    config: &ShardConfig,
) -> Result<ShardRun, ShardError> {
    if backends.is_empty() {
        return Err(ShardError::NoBackends);
    }
    let grid = spec.scenarios();
    let grid_len = grid.len();
    let ranges = partition(grid_len, backends.len());
    let mut dispatcher = Dispatcher {
        spec,
        grid: &grid,
        config,
        backends: backends
            .iter()
            .map(|addr| Backend {
                addr: addr.clone(),
                strikes: 0,
                dead: false,
            })
            .collect(),
        shards: ranges
            .iter()
            .enumerate()
            .map(|(k, &range)| Shard {
                range,
                backend: k % backends.len(),
                job_id: None,
                rows: None,
                attempts: 0,
            })
            .collect(),
        dispatches: 0,
        failures: 0,
        events: Vec::new(),
    };
    for (k, &(start, end)) in ranges.iter().enumerate() {
        dispatcher.events.push(format!(
            "shard {k} [{start}, {end}) → {}",
            backends[k % backends.len()]
        ));
    }
    loop {
        let mut outstanding = false;
        for shard in 0..dispatcher.shards.len() {
            if dispatcher.shards[shard].rows.is_some() {
                continue;
            }
            outstanding = true;
            if dispatcher.shards[shard].job_id.is_none() {
                dispatcher.submit(shard)?;
            } else {
                dispatcher.poll(shard)?;
            }
        }
        if !outstanding {
            break;
        }
        std::thread::sleep(config.poll_interval);
    }
    let rows: Vec<ScenarioResult> = dispatcher
        .shards
        .into_iter()
        .flat_map(|shard| {
            shard
                .rows
                .expect("loop exits only when every shard has rows")
        })
        .collect();
    let (report, results) = merged_report(spec.campaign_seed, grid_len, rows)?;
    Ok(ShardRun {
        report,
        results,
        shards: ranges.len(),
        dispatches: dispatcher.dispatches,
        failures: dispatcher.failures,
        events: dispatcher.events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chunkpoint_campaign::{run_campaign, SchemeSpec};
    use chunkpoint_core::{MitigationScheme, SystemConfig};
    use chunkpoint_workloads::Benchmark;

    fn small_spec() -> CampaignSpec {
        let mut config = SystemConfig::paper(0);
        config.scale = 0.25;
        CampaignSpec::new(config, 0x5A4D)
            .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
            .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
            .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
            .replicates(3)
    }

    /// Satellite: the merge sorts by global scenario index, so shard
    /// arrival order — whichever backend finishes first — cannot change
    /// the report bytes.
    #[test]
    fn merge_is_deterministic_regardless_of_arrival_order() {
        let spec = small_spec();
        let full = run_campaign(&spec, 1);
        let n = full.results.len();
        let expected =
            canonical_report_json(spec.campaign_seed, &full.results, &REPORT_AXES).render();
        // Three shards arriving in every permutation, each shard's rows
        // additionally reversed (journals are completion-ordered, not
        // index-ordered).
        let ranges = partition(n, 3);
        let shards: Vec<Vec<ScenarioResult>> = ranges
            .iter()
            .map(|&(start, end)| {
                let mut rows = full.results[start..end].to_vec();
                rows.reverse();
                rows
            })
            .collect();
        for order in [
            [0usize, 1, 2],
            [2, 1, 0],
            [1, 2, 0],
            [0, 2, 1],
            [2, 0, 1],
            [1, 0, 2],
        ] {
            let arrival: Vec<ScenarioResult> =
                order.iter().flat_map(|&k| shards[k].clone()).collect();
            let (report, merged) = merged_report(spec.campaign_seed, n, arrival).expect("merge");
            assert_eq!(
                report, expected,
                "arrival order {order:?} changed the bytes"
            );
            assert!(merged
                .windows(2)
                .all(|w| w[0].scenario.index < w[1].scenario.index));
        }
    }

    #[test]
    fn merge_rejects_gaps_and_duplicates() {
        let spec = small_spec();
        let full = run_campaign(&spec, 1);
        let n = full.results.len();
        // Gap: drop one row.
        let mut gapped = full.results.clone();
        gapped.remove(2);
        let err = merged_report(spec.campaign_seed, n, gapped).expect_err("gap");
        assert!(matches!(err, ShardError::BadMerge(_)), "{err}");
        // Duplicate: repeat one row (length back to n).
        let mut duplicated = full.results.clone();
        duplicated.remove(2);
        duplicated.push(full.results[5].clone());
        let err = merged_report(spec.campaign_seed, n, duplicated).expect_err("duplicate");
        let message = err.to_string();
        assert!(
            message.contains("duplicated") || message.contains("missing"),
            "{message}"
        );
    }

    #[test]
    fn no_backends_is_a_typed_error() {
        let err = run_sharded(&small_spec(), &[], &ShardConfig::default()).expect_err("empty");
        assert!(matches!(err, ShardError::NoBackends));
    }
}
