//! The `shard` binary: run one campaign spec across several running
//! `serve` instances and write the merged canonical report.
//!
//! ```text
//! shard --backends HOST:PORT[,HOST:PORT...] --spec PATH [--json PATH]
//!       [--weights W[,W...]] [--poll-ms N] [--timeout-secs N]
//!       [--strikes N] [--attempts N] [--cache-dir PATH]
//!       [--cache-max-bytes N] [--baseline PATH] [--metrics-out PATH]
//!       [--quiet]
//! ```
//!
//! The report written by `--json` (stdout without it) is byte-identical
//! to what a single `serve` instance — or an in-process single-threaded
//! run — would produce for the same spec. Dispatch decisions stream to
//! stderr as structured JSON trace events (`--quiet` silences them;
//! errors always reach stderr); `--weights` partitions the grid
//! proportionally to per-backend capacity instead of evenly.
//!
//! `--cache-dir` enables the coordinator's range-granular result cache:
//! sealed sub-ranges on disk are spliced into the merge instead of
//! re-executed, and every completed shard writes its rows back.
//! `--cache-max-bytes` bounds that cache's footprint: after the run's
//! write-back, range files are evicted oldest-modification-time first
//! until the cache fits the budget (evictions land on the
//! `shard_cache_evictions_total` counter).
//! `--baseline OLD_SPEC` additionally runs the spec diff against a
//! previously cached campaign and seeds the current spec's cache with
//! every translated row whose `(seed, parameters)` survived the edit —
//! the incremental-campaign path, where only changed cells execute.

use std::time::{Duration, Instant};

use chunkpoint_campaign::{diff_specs, translate_rows, CampaignSpec, CancelToken, JsonValue};
use chunkpoint_shard::{run_sharded_ctl, RangeCache, ShardConfig};
use chunkpoint_telemetry::Tracer;

const USAGE: &str = "chunkpoint shard coordinator:
  --backends LIST    comma-separated serve addresses (HOST:PORT), required
  --spec PATH        campaign spec JSON (canonical wire form), required
  --json PATH        write the merged canonical report here (default: stdout)
  --weights LIST     comma-separated per-backend weights (default: even split)
  --poll-ms N        base poll sweep interval in milliseconds (default 25);
                     idle sweeps back off exponentially with jitter
  --timeout-secs N   per-request timeout in seconds (default 10)
  --strikes N        consecutive failures opening a backend's breaker (default 3)
  --attempts N       dispatch attempts per shard before giving up (default 5)
  --cache-dir PATH   range-granular result cache root: sealed sub-ranges are
                     spliced instead of re-executed, completed shards write back
  --cache-max-bytes N after the run, evict cached range files oldest-mtime
                     first until the cache root fits N bytes
                     (requires --cache-dir)
  --baseline PATH    old spec JSON of a cached campaign: spec-diff it against
                     --spec and seed the cache with unchanged cells' rows
                     (requires --cache-dir)
  --metrics-out PATH write the process's Prometheus text exposition here at exit
                     (shard_cache_hits_total and friends)
  --quiet            suppress the stderr trace-event stream (errors still print)
  --help             this text";

struct Args {
    backends: Vec<String>,
    weights: Option<Vec<f64>>,
    spec_path: String,
    json: Option<String>,
    cache_dir: Option<String>,
    cache_max_bytes: Option<u64>,
    baseline: Option<String>,
    metrics_out: Option<String>,
    quiet: bool,
    config: ShardConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut backends = Vec::new();
    let mut weights = None;
    let mut spec_path = None;
    let mut json = None;
    let mut cache_dir = None;
    let mut cache_max_bytes = None;
    let mut baseline = None;
    let mut metrics_out = None;
    let mut quiet = false;
    let mut config = ShardConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value\n\n{USAGE}"))
        };
        match flag.as_str() {
            "--backends" => {
                backends = value_of("--backends")?
                    .split(',')
                    .map(str::trim)
                    .filter(|part| !part.is_empty())
                    .map(str::to_owned)
                    .collect();
            }
            "--weights" => {
                weights = Some(
                    value_of("--weights")?
                        .split(',')
                        .map(|w| {
                            w.trim()
                                .parse::<f64>()
                                .map_err(|e| format!("--weights {w:?}: {e}\n\n{USAGE}"))
                        })
                        .collect::<Result<Vec<f64>, String>>()?,
                );
            }
            "--spec" => spec_path = Some(value_of("--spec")?),
            "--json" => json = Some(value_of("--json")?),
            "--cache-dir" => cache_dir = Some(value_of("--cache-dir")?),
            "--cache-max-bytes" => {
                cache_max_bytes = Some(
                    value_of("--cache-max-bytes")?
                        .parse::<u64>()
                        .map_err(|e| format!("--cache-max-bytes: {e}\n\n{USAGE}"))?,
                );
            }
            "--baseline" => baseline = Some(value_of("--baseline")?),
            "--metrics-out" => metrics_out = Some(value_of("--metrics-out")?),
            "--poll-ms" => {
                let ms: u64 = value_of("--poll-ms")?
                    .parse()
                    .map_err(|e| format!("--poll-ms: {e}\n\n{USAGE}"))?;
                config.poll_interval = Duration::from_millis(ms);
            }
            "--timeout-secs" => {
                let secs: u64 = value_of("--timeout-secs")?
                    .parse()
                    .map_err(|e| format!("--timeout-secs: {e}\n\n{USAGE}"))?;
                if secs == 0 {
                    return Err(format!("--timeout-secs must be at least 1\n\n{USAGE}"));
                }
                config.request_timeout = Duration::from_secs(secs);
            }
            "--strikes" => {
                config.backend_strikes = value_of("--strikes")?
                    .parse()
                    .map_err(|e| format!("--strikes: {e}\n\n{USAGE}"))?;
                if config.backend_strikes == 0 {
                    return Err(format!("--strikes must be at least 1\n\n{USAGE}"));
                }
            }
            "--attempts" => {
                config.shard_attempts = value_of("--attempts")?
                    .parse()
                    .map_err(|e| format!("--attempts: {e}\n\n{USAGE}"))?;
                if config.shard_attempts == 0 {
                    return Err(format!("--attempts must be at least 1\n\n{USAGE}"));
                }
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if backends.is_empty() {
        return Err(format!("--backends is required\n\n{USAGE}"));
    }
    if let Some(weights) = &weights {
        if weights.len() != backends.len() {
            return Err(format!(
                "--weights needs one weight per backend ({} weights, {} backends)\n\n{USAGE}",
                weights.len(),
                backends.len()
            ));
        }
    }
    let spec_path = spec_path.ok_or_else(|| format!("--spec is required\n\n{USAGE}"))?;
    if baseline.is_some() && cache_dir.is_none() {
        return Err(format!("--baseline requires --cache-dir\n\n{USAGE}"));
    }
    if cache_max_bytes.is_some() && cache_dir.is_none() {
        return Err(format!("--cache-max-bytes requires --cache-dir\n\n{USAGE}"));
    }
    config.cache_dir = cache_dir.clone().map(std::path::PathBuf::from);
    Ok(Args {
        backends,
        weights,
        spec_path,
        json,
        cache_dir,
        cache_max_bytes,
        baseline,
        metrics_out,
        quiet,
        config,
    })
}

fn main() {
    let mut args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(if message == USAGE { 0 } else { 2 });
        }
    };
    let raw = match std::fs::read_to_string(&args.spec_path) {
        Ok(raw) => raw,
        Err(e) => {
            eprintln!("shard: reading {}: {e}", args.spec_path);
            std::process::exit(1);
        }
    };
    let spec = match JsonValue::parse(&raw)
        .map_err(|e| e.to_string())
        .and_then(|value| CampaignSpec::from_json(&value))
    {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("shard: {}: {e}", args.spec_path);
            std::process::exit(1);
        }
    };
    // Progress narration: structured JSON trace events on stderr — the
    // coordinator traces every dispatch decision through the tracer in
    // its config, and the binary frames the run with its own span.
    // `--quiet` silences all of it in one place; errors still print.
    // The merged report alone goes to stdout/--json.
    let tracer = if args.quiet {
        Tracer::disabled()
    } else {
        Tracer::to_stderr()
    };
    args.config.tracer = tracer.clone();
    let span = tracer.root("shard_bin");
    // Incremental campaigns: diff the baseline spec against the new
    // one and seed the new campaign's cache with every translated row
    // — the subsequent run then dispatches only the changed cells.
    if let (Some(baseline_path), Some(cache_dir)) = (&args.baseline, &args.cache_dir) {
        let old_spec = match std::fs::read_to_string(baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|raw| JsonValue::parse(&raw).map_err(|e| e.to_string()))
            .and_then(|value| CampaignSpec::from_json(&value))
        {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("shard: --baseline {baseline_path}: {e}");
                std::process::exit(1);
            }
        };
        let cache = RangeCache::new(cache_dir);
        let old_rows: Vec<_> = cache
            .load(&old_spec, &old_spec.scenarios())
            .into_values()
            .collect();
        let translated = translate_rows(&old_spec, &spec, &old_rows);
        if let Err(e) = cache.store_scattered(&spec, &translated) {
            eprintln!("shard: seeding cache from baseline: {e}");
            std::process::exit(1);
        }
        let diff = diff_specs(&old_spec, &spec);
        span.event(
            "baseline",
            JsonValue::object()
                .field("cached_rows", old_rows.len())
                .field("translated", translated.len())
                .field("reusable", diff.reused())
                .field("changed", diff.changed),
        );
    }
    span.event(
        "dispatching",
        JsonValue::object()
            .field("backends", args.backends.len())
            .field("addrs", args.backends.join(",")),
    );
    let start = Instant::now();
    let run = match run_sharded_ctl(
        &spec,
        &args.backends,
        args.weights.as_deref(),
        &args.config,
        &CancelToken::new(),
        |_| {},
    ) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("shard: {e}");
            std::process::exit(1);
        }
    };
    span.event(
        "summary",
        JsonValue::object()
            .field("scenarios", run.results.len())
            .field("shards", run.shards)
            .field("dispatches", run.dispatches)
            .field("failures", run.failures)
            .field("spliced", run.spliced)
            .field("secs", start.elapsed().as_secs_f64()),
    );
    // Budget sweep after write-back, before the metrics snapshot, so
    // this run's evictions are visible in --metrics-out.
    if let (Some(max_bytes), Some(cache_dir)) = (args.cache_max_bytes, &args.cache_dir) {
        let evicted = RangeCache::new(cache_dir).gc(max_bytes);
        chunkpoint_shard::cache_evictions().add(evicted as u64);
        span.event(
            "cache_gc",
            JsonValue::object()
                .field("max_bytes", max_bytes)
                .field("evicted", evicted),
        );
    }
    if let Some(path) = &args.metrics_out {
        let text = chunkpoint_telemetry::render_text(chunkpoint_telemetry::global());
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("shard: writing {path}: {e}");
            std::process::exit(1);
        }
    }
    let mut report = run.report;
    match &args.json {
        Some(path) => {
            report.push('\n');
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("shard: writing {path}: {e}");
                std::process::exit(1);
            }
            span.event("wrote", JsonValue::object().field("path", path.as_str()));
        }
        None => println!("{report}"),
    }
}
