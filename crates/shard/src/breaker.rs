//! Deterministic retry pacing: a seeded exponential [`Backoff`]
//! schedule and a per-backend [`CircuitBreaker`] built on it.
//!
//! Both types follow the repo's seed discipline: every delay derives
//! from `(seed, step)` through SplitMix64's finalizer, so two breakers
//! (or two whole runs) configured with the same seed produce the same
//! schedule down to the nanosecond — a failure run is replayable the
//! same way a campaign is. The jitter exists to de-synchronize *
//! different* seeds (a fleet of coordinators hammering a recovering
//! backend), not to add entropy to any one of them.
//!
//! The breaker itself is a pure state machine over a **caller-owned
//! clock**: every transition takes `now` as a [`Duration`] since an
//! epoch the caller picks (run start for the coordinator, a synthetic
//! counter in property tests). No `Instant::now()` hides inside, which
//! is what makes `tests/breaker_prop.rs` able to drive years of
//! schedule in microseconds.

use std::time::Duration;

use chunkpoint_campaign::seed::{mix64, GOLDEN_GAMMA};

/// A deterministic truncated-exponential backoff schedule with seeded
/// jitter: `delay(step) = min(base · 2^step · (1 + j/4), max)` where
/// `j ∈ [0, 1)` derives from `mix64(seed, step)`.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    max: Duration,
    seed: u64,
}

impl Backoff {
    /// A schedule starting at `base` and doubling per step up to `max`,
    /// jittered by `seed`. A zero `base` is clamped to one millisecond
    /// so the schedule still grows.
    #[must_use]
    pub fn new(base: Duration, max: Duration, seed: u64) -> Self {
        let base = base.max(Duration::from_millis(1));
        Self {
            base,
            max: max.max(base),
            seed,
        }
    }

    /// The jitter unit in `[0, 1)` for `step` — the top 53 bits of the
    /// mixed seed, so the float is exact and identical on every
    /// platform (IEEE-754 double arithmetic only).
    fn jitter_unit(&self, step: u32) -> f64 {
        let word = mix64(
            self.seed
                .wrapping_add(u64::from(step).wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)),
        );
        (word >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The delay for retry `step` (0 = first retry). Monotone in `step`
    /// up to the cap; never exceeds the configured max.
    #[must_use]
    pub fn delay(&self, step: u32) -> Duration {
        let exp = self.base.as_secs_f64() * 2f64.powi(step.min(32) as i32);
        let jittered = exp * (1.0 + self.jitter_unit(step) / 4.0);
        Duration::from_secs_f64(jittered.min(self.max.as_secs_f64()))
    }

    /// The configured base delay (step 0 before jitter).
    #[must_use]
    pub fn base(&self) -> Duration {
        self.base
    }

    /// The configured cap.
    #[must_use]
    pub fn max(&self) -> Duration {
        self.max
    }
}

/// The breaker's observable state at a given instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; failures are being counted.
    Closed,
    /// Cooling down after too many consecutive failures — no request
    /// may be sent until the cooldown elapses.
    Open,
    /// The cooldown elapsed: exactly the next request is a probe. A
    /// probe success closes the breaker; a probe failure re-opens it
    /// with a longer cooldown.
    HalfOpen,
}

/// A per-backend circuit breaker: `threshold` consecutive failures open
/// it, the [`Backoff`] schedule decides each cooldown (doubling per
/// consecutive open, so a backend that keeps failing its probes is
/// bothered less and less often), and one success closes it entirely.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    backoff: Backoff,
    consecutive_failures: u32,
    /// Consecutive opens without an intervening success — the backoff
    /// step of the current cooldown.
    opens: u32,
    open_until: Option<Duration>,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive
    /// failures (clamped to at least 1) and cools down on `backoff`'s
    /// schedule.
    #[must_use]
    pub fn new(threshold: u32, backoff: Backoff) -> Self {
        Self {
            threshold: threshold.max(1),
            backoff,
            consecutive_failures: 0,
            opens: 0,
            open_until: None,
        }
    }

    /// The state at `now` (a duration since the caller's epoch).
    #[must_use]
    pub fn state(&self, now: Duration) -> BreakerState {
        match self.open_until {
            None => BreakerState::Closed,
            Some(until) if now < until => BreakerState::Open,
            Some(_) => BreakerState::HalfOpen,
        }
    }

    /// Whether a request may be sent at `now` — closed, or half-open
    /// (the probe). Never true while open: that is the breaker's whole
    /// contract, and `tests/breaker_prop.rs` holds it over arbitrary
    /// failure/success sequences.
    #[must_use]
    pub fn ready(&self, now: Duration) -> bool {
        self.state(now) != BreakerState::Open
    }

    /// When the current cooldown ends (the earliest `now` at which
    /// [`CircuitBreaker::ready`] turns true again), if open.
    #[must_use]
    pub fn retry_at(&self) -> Option<Duration> {
        self.open_until
    }

    /// Records a failed exchange at `now`. Returns `true` when this
    /// failure opened (or re-opened) the breaker — the caller's cue to
    /// emit a backend-down event and re-dispatch work. While open or
    /// half-open, *any* failure re-opens with the next longer cooldown
    /// (a failed probe must not be retried at the old cadence).
    pub fn record_failure(&mut self, now: Duration) -> bool {
        if self.open_until.is_some() {
            self.open_until = Some(now + self.backoff.delay(self.opens));
            self.opens += 1;
            return true;
        }
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.threshold {
            self.open_until = Some(now + self.backoff.delay(self.opens));
            self.opens += 1;
            return true;
        }
        false
    }

    /// Records a successful exchange: closes the breaker and resets the
    /// failure count and the cooldown ladder.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.opens = 0;
        self.open_until = None;
    }

    /// Consecutive opens without an intervening success.
    #[must_use]
    pub fn opens(&self) -> u32 {
        self.opens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backoff() -> Backoff {
        Backoff::new(
            Duration::from_millis(100),
            Duration::from_secs(2),
            0xB0FF_5EED,
        )
    }

    #[test]
    fn schedule_is_monotone_and_capped() {
        let b = backoff();
        let mut last = Duration::ZERO;
        for step in 0..12 {
            let d = b.delay(step);
            assert!(d >= last, "step {step}: {d:?} < {last:?}");
            assert!(d <= b.max(), "step {step}: {d:?} over the cap");
            last = d;
        }
        assert_eq!(b.delay(11), b.max(), "deep steps must sit at the cap");
    }

    #[test]
    fn same_seed_same_schedule() {
        let (a, b) = (backoff(), backoff());
        for step in 0..16 {
            assert_eq!(a.delay(step), b.delay(step));
        }
        let other = Backoff::new(Duration::from_millis(100), Duration::from_secs(2), 7);
        assert!(
            (0..16).any(|step| other.delay(step) != a.delay(step)),
            "different seeds should jitter differently"
        );
    }

    #[test]
    fn breaker_walks_closed_open_halfopen() {
        let mut breaker = CircuitBreaker::new(2, backoff());
        let t0 = Duration::ZERO;
        assert_eq!(breaker.state(t0), BreakerState::Closed);
        assert!(!breaker.record_failure(t0), "below threshold");
        assert!(breaker.record_failure(t0), "threshold opens");
        assert_eq!(breaker.state(t0), BreakerState::Open);
        assert!(!breaker.ready(t0));
        let until = breaker.retry_at().expect("open has a deadline");
        assert_eq!(breaker.state(until), BreakerState::HalfOpen);
        assert!(breaker.ready(until), "cooldown elapsed: probe allowed");
        // Failed probe re-opens with a longer cooldown.
        assert!(breaker.record_failure(until));
        let reopened = breaker.retry_at().expect("re-opened");
        assert!(reopened - until > until - t0, "cooldown must grow");
        // Success closes and resets the ladder.
        breaker.record_success();
        assert_eq!(breaker.state(reopened), BreakerState::Closed);
        assert_eq!(breaker.opens(), 0);
    }
}
