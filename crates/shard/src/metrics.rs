//! Coordinator-side telemetry handles: per-backend dispatch and
//! breaker counters plus the poll-sweep counter, registered against
//! the process-wide [`chunkpoint_telemetry::global`] registry.
//!
//! All of it is strictly out of band — the counters observe the
//! dispatch loop, they never steer it, so a sharded run's merged
//! report stays byte-identical with telemetry scraped or ignored.

use std::sync::Arc;

use chunkpoint_telemetry::Counter;

/// The per-backend counter family of one sharded run. The registry
/// dedupes by `(name, labels)`, so successive runs against the same
/// backend accumulate into the same series — scrape deltas, not
/// absolutes, across runs.
pub(crate) struct BackendTelemetry {
    /// Sub-spec submissions sent to this backend (re-dispatches
    /// included).
    pub dispatches: Arc<Counter>,
    /// Shards moved *to* this backend after a failure elsewhere (or a
    /// breaker opening here sent them away and a probe brought one
    /// back).
    pub redispatches: Arc<Counter>,
    /// Failed exchanges charged against this backend's breaker.
    pub strikes: Arc<Counter>,
    /// Times this backend's circuit breaker opened (first open and
    /// every re-open after a failed half-open probe).
    pub breaker_opens: Arc<Counter>,
    /// Speculative duplicate dispatches sent *to* this backend for a
    /// straggling shard running elsewhere.
    pub speculations: Arc<Counter>,
    /// Speculative dispatches on this backend that sealed their rows
    /// before the straggling primary did.
    pub speculation_wins: Arc<Counter>,
}

/// Registers (or re-resolves) the counter family for one backend
/// address.
pub(crate) fn backend_telemetry(addr: &str) -> BackendTelemetry {
    let registry = chunkpoint_telemetry::global();
    let labels = &[("backend", addr)];
    BackendTelemetry {
        dispatches: registry.counter_with(
            "shard_dispatches_total",
            labels,
            "Sub-spec submissions per backend, re-dispatches included",
        ),
        redispatches: registry.counter_with(
            "shard_redispatches_total",
            labels,
            "Shards re-dispatched to this backend after a failure",
        ),
        strikes: registry.counter_with(
            "shard_backend_strikes_total",
            labels,
            "Failed exchanges charged against this backend's circuit breaker",
        ),
        breaker_opens: registry.counter_with(
            "shard_breaker_opens_total",
            labels,
            "Circuit-breaker open transitions per backend",
        ),
        speculations: registry.counter_with(
            "shard_speculations_total",
            labels,
            "Speculative duplicate dispatches of straggling shards to this backend",
        ),
        speculation_wins: registry.counter_with(
            "shard_speculation_wins_total",
            labels,
            "Speculative dispatches on this backend that sealed before the primary",
        ),
    }
}

/// The coordinator's poll-sweep counter — one increment per pass over
/// the outstanding shards, so idle-backoff stretching is visible as a
/// falling sweep rate.
pub(crate) fn poll_sweeps() -> Arc<Counter> {
    chunkpoint_telemetry::global().counter(
        "shard_poll_sweeps_total",
        "Coordinator poll sweeps over the outstanding shards",
    )
}

/// The result-cache counter family of a cache-configured run: one hit
/// per range spliced from disk, one miss per shard that had to be
/// dispatched, and the row count the splices saved from re-execution.
pub(crate) struct CacheTelemetry {
    /// Shard ranges served whole from the result cache.
    pub hits: Arc<Counter>,
    /// Shards dispatched because the cache had no sealed range for
    /// them (only counted when a cache is configured).
    pub misses: Arc<Counter>,
    /// Journal rows spliced into merges from the cache.
    pub rows_spliced: Arc<Counter>,
}

/// Registers (or re-resolves) the cache-eviction counter: range files
/// removed by [`RangeCache::gc`](crate::RangeCache::gc) budget sweeps
/// (the `--cache-max-bytes` path).
#[must_use]
pub fn cache_evictions() -> Arc<Counter> {
    chunkpoint_telemetry::global().counter(
        "shard_cache_evictions_total",
        "Result-cache range files evicted by gc budget sweeps",
    )
}

/// Registers (or re-resolves) the result-cache counters.
pub(crate) fn cache_telemetry() -> CacheTelemetry {
    let registry = chunkpoint_telemetry::global();
    CacheTelemetry {
        hits: registry.counter(
            "shard_cache_hits_total",
            "Shard ranges spliced whole from the coordinator result cache",
        ),
        misses: registry.counter(
            "shard_cache_misses_total",
            "Shards dispatched for lack of a sealed cache range",
        ),
        rows_spliced: registry.counter(
            "shard_cache_rows_spliced_total",
            "Journal rows served from the coordinator result cache",
        ),
    }
}
