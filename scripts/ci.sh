#!/usr/bin/env bash
# CI gate: formatting, build, tests, and a smoke campaign that exercises
# the parallel execution path (work-stealing pool + determinism check)
# on every run. Keep it fast — the smoke grid is ~2 seconds.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== smoke campaign (parallel path + determinism) =="
cargo run --release -p chunkpoint_bench --bin bench_campaign -- --smoke --seeds 2 --threads 2

echo "== exec smoke (one executor API: local + remote parity on a 1-second grid) =="
cargo run --release --example exec_parity

echo "== scenario smoke (named timeline scenario through a real serve backend) =="
SCN_DIR="$(mktemp -d)"
trap 'rm -rf "$SCN_DIR"' EXIT
# The example submits a 3-scenario timeline axis (burst, quiet shift
# with expect blocks, scrub schedule) to a real serve over TCP, asserts
# every expect verdict, and writes both reports for the byte check.
cargo run --release --example scenario_campaign "$SCN_DIR"
cmp "$SCN_DIR/local.json" "$SCN_DIR/remote.json" \
    || { echo "scenario remote report diverged from the local oracle"; exit 1; }
echo "scenario smoke OK (expect verdicts typed, local and remote bytes identical)"
# Later stages install their own EXIT traps, so clean up eagerly here.
rm -rf "$SCN_DIR"

echo "== service smoke (submit, poll, cached resubmit, clean shutdown) =="
SERVE_DIR="$(mktemp -d)"
# Failure paths exit mid-test: take the background server down with us
# (no-op after the success path's wait) before removing its data dir.
trap 'kill "${SERVE_PID:-0}" 2>/dev/null || true; rm -rf "$SERVE_DIR"' EXIT
target/release/serve --addr 127.0.0.1:0 --data-dir "$SERVE_DIR/data" \
    --port-file "$SERVE_DIR/port" --jobs 1 &
SERVE_PID=$!
for _ in $(seq 1 200); do [ -s "$SERVE_DIR/port" ] && break; sleep 0.05; done
[ -s "$SERVE_DIR/port" ] || { echo "serve never wrote its port"; exit 1; }
BASE="http://127.0.0.1:$(cat "$SERVE_DIR/port")"
# Scrape /metrics before the submit/cache-hit sequence; the counters
# must advance by exactly the work done below.
METRICS_BEFORE="$(curl -sf "$BASE/metrics")"
# Value of the sample line whose series name (with labels) is $2 —
# comment lines skipped so unlabelled names don't match their own HELP.
mval() { printf '%s\n' "$1" | grep -v '^#' | grep -F "$2 " | head -1 | awk '{print $2}'; }
SPEC='{"version":1,"campaign_seed":7,"benchmarks":["ADPCM encode"],
  "schemes":[{"label":"Default","spec":{"kind":"fixed","scheme":{"kind":"default"}}}],
  "error_rates":[0.000001],"replicates":2,"normalize":false,"golden_check":false}'
SUBMIT="$(curl -sf -X POST --data "$SPEC" "$BASE/campaigns")"
ID="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id":"\([0-9a-f]\{16\}\)".*/\1/p')"
[ -n "$ID" ] || { echo "submit failed: $SUBMIT"; exit 1; }
STATUS=""
for _ in $(seq 1 200); do
    STATUS="$(curl -sf "$BASE/campaigns/$ID")"
    case "$STATUS" in
        *'"status":"done"'*) break ;;
        *'"status":"failed"'*) echo "job failed: $STATUS"; exit 1 ;;
    esac
    sleep 0.05
done
case "$STATUS" in *'"status":"done"'*) ;; *) echo "job never finished: $STATUS"; exit 1 ;; esac
curl -sf "$BASE/campaigns/$ID/result" | grep -q '"campaign_seed":7' \
    || { echo "result endpoint returned no report"; exit 1; }
# The cached resubmit must answer instantly (content-addressed hit).
T0="$(date +%s%N)"
RESUBMIT="$(curl -sf -X POST --data "$SPEC" "$BASE/campaigns")"
T1="$(date +%s%N)"
case "$RESUBMIT" in
    *'"cached":true'*) ;;
    *) echo "resubmit was not a cache hit: $RESUBMIT"; exit 1 ;;
esac
ELAPSED_MS=$(( (T1 - T0) / 1000000 ))
[ "$ELAPSED_MS" -lt 1000 ] || { echo "cache hit took ${ELAPSED_MS}ms"; exit 1; }
# Metrics smoke: the same counters, after. Two submits (one fresh, one
# cached), one new job, one cache hit — and the latency histogram's
# _count must track the request counter on the submit endpoint.
METRICS_AFTER="$(curl -sf "$BASE/metrics")"
SUB0="$(mval "$METRICS_BEFORE" 'serve_requests_total{endpoint="submit"}')"
SUB1="$(mval "$METRICS_AFTER" 'serve_requests_total{endpoint="submit"}')"
[ "$((SUB1 - SUB0))" -eq 2 ] \
    || { echo "submit request counter moved $SUB0 -> $SUB1, wanted +2"; exit 1; }
JOBS0="$(mval "$METRICS_BEFORE" 'serve_jobs_submitted_total')"
JOBS1="$(mval "$METRICS_AFTER" 'serve_jobs_submitted_total')"
[ "$((JOBS1 - JOBS0))" -eq 1 ] \
    || { echo "job counter moved $JOBS0 -> $JOBS1, wanted +1"; exit 1; }
CACHED1="$(mval "$METRICS_AFTER" 'serve_jobs_cached_total')"
[ "$CACHED1" -ge 1 ] || { echo "cached-job counter never advanced"; exit 1; }
HITS1="$(mval "$METRICS_AFTER" 'serve_result_cache_hits_total')"
[ "$HITS1" -ge 1 ] || { echo "result-cache-hit counter never advanced"; exit 1; }
SUBCOUNT1="$(mval "$METRICS_AFTER" 'serve_request_seconds_count{endpoint="submit"}')"
[ "$SUBCOUNT1" = "$SUB1" ] \
    || { echo "submit latency count $SUBCOUNT1 != request counter $SUB1"; exit 1; }
curl -sf -X POST "$BASE/shutdown" >/dev/null
wait "$SERVE_PID"
echo "service smoke OK (job $ID, cached resubmit in ${ELAPSED_MS}ms, metrics counters advanced)"

echo "== shard smoke (two serves + coordinator on a 1-second grid) =="
SHARD_DIR="$(mktemp -d)"
trap 'kill "${SERVE_PID:-0}" "${SHARD_A_PID:-0}" "${SHARD_B_PID:-0}" 2>/dev/null || true; rm -rf "$SERVE_DIR" "$SHARD_DIR"' EXIT
target/release/serve --addr 127.0.0.1:0 --data-dir "$SHARD_DIR/a" \
    --port-file "$SHARD_DIR/port_a" --jobs 1 --threads 1 &
SHARD_A_PID=$!
target/release/serve --addr 127.0.0.1:0 --data-dir "$SHARD_DIR/b" \
    --port-file "$SHARD_DIR/port_b" --jobs 1 --threads 1 &
SHARD_B_PID=$!
for _ in $(seq 1 200); do [ -s "$SHARD_DIR/port_a" ] && [ -s "$SHARD_DIR/port_b" ] && break; sleep 0.05; done
[ -s "$SHARD_DIR/port_a" ] && [ -s "$SHARD_DIR/port_b" ] \
    || { echo "shard-smoke serves never wrote their ports"; exit 1; }
# 2 benchmarks x 1 scheme x 2 replicates = 4 scenarios, ~1 s of work.
cat > "$SHARD_DIR/spec.json" <<'SPEC'
{"version":1,"campaign_seed":11,"benchmarks":["ADPCM encode","ADPCM decode"],
 "schemes":[{"label":"Default","spec":{"kind":"fixed","scheme":{"kind":"default"}}}],
 "error_rates":[0.000001],"replicates":2,"normalize":false,"golden_check":false}
SPEC
target/release/shard \
    --backends "127.0.0.1:$(cat "$SHARD_DIR/port_a"),127.0.0.1:$(cat "$SHARD_DIR/port_b")" \
    --spec "$SHARD_DIR/spec.json" --json "$SHARD_DIR/report.json" --poll-ms 10
grep -q '"campaign_seed":11' "$SHARD_DIR/report.json" \
    || { echo "merged shard report did not parse"; exit 1; }
grep -q '"scenarios":4' "$SHARD_DIR/report.json" \
    || { echo "merged shard report has the wrong scenario count"; exit 1; }
curl -sf -X POST "http://127.0.0.1:$(cat "$SHARD_DIR/port_a")/shutdown" >/dev/null
curl -sf -X POST "http://127.0.0.1:$(cat "$SHARD_DIR/port_b")/shutdown" >/dev/null
wait "$SHARD_A_PID" "$SHARD_B_PID"
echo "shard smoke OK (merged report covers 4 scenarios)"

echo "== chaos smoke (faulted proxy vs clean backend, byte-identical report) =="
CHAOS_DIR="$(mktemp -d)"
trap 'kill "${SERVE_PID:-0}" "${SHARD_A_PID:-0}" "${SHARD_B_PID:-0}" \
         "${CHAOS_A_PID:-0}" "${CHAOS_B_PID:-0}" "${CHAOS_PROXY_PID:-0}" 2>/dev/null || true; \
      rm -rf "$SERVE_DIR" "$SHARD_DIR" "$CHAOS_DIR"' EXIT
target/release/serve --addr 127.0.0.1:0 --data-dir "$CHAOS_DIR/faulted" \
    --port-file "$CHAOS_DIR/port_a" --jobs 1 --threads 1 &
CHAOS_A_PID=$!
target/release/serve --addr 127.0.0.1:0 --data-dir "$CHAOS_DIR/clean" \
    --port-file "$CHAOS_DIR/port_b" --jobs 1 --threads 1 &
CHAOS_B_PID=$!
for _ in $(seq 1 200); do [ -s "$CHAOS_DIR/port_a" ] && [ -s "$CHAOS_DIR/port_b" ] && break; sleep 0.05; done
[ -s "$CHAOS_DIR/port_a" ] && [ -s "$CHAOS_DIR/port_b" ] \
    || { echo "chaos-smoke serves never wrote their ports"; exit 1; }
# A seeded truncate+stall fault plan in front of backend A: the fault
# sequence is a pure function of (seed, connection index), so this smoke
# either always passes or always fails — no flaky middle ground.
target/release/chaos --upstream "127.0.0.1:$(cat "$CHAOS_DIR/port_a")" \
    --seed 3 --rate 0.3 --kinds truncate-head,truncate-body,stall,inject-500 \
    --stall-ms 20 --port-file "$CHAOS_DIR/port_chaos" &
CHAOS_PROXY_PID=$!
for _ in $(seq 1 200); do [ -s "$CHAOS_DIR/port_chaos" ] && break; sleep 0.05; done
[ -s "$CHAOS_DIR/port_chaos" ] || { echo "chaos proxy never wrote its port"; exit 1; }
cat > "$CHAOS_DIR/spec.json" <<'SPEC'
{"version":1,"campaign_seed":13,"benchmarks":["ADPCM encode","ADPCM decode"],
 "schemes":[{"label":"Default","spec":{"kind":"fixed","scheme":{"kind":"default"}}}],
 "error_rates":[0.000001],"replicates":2,"normalize":false,"golden_check":false}
SPEC
# Through the faulted proxy with a raised strike budget, then directly
# against the clean backend; the reports must be byte-identical.
timeout 120 target/release/shard \
    --backends "127.0.0.1:$(cat "$CHAOS_DIR/port_chaos")" \
    --spec "$CHAOS_DIR/spec.json" --json "$CHAOS_DIR/faulted.json" \
    --poll-ms 10 --strikes 12 \
    || { echo "faulted run did not survive the chaos proxy"; exit 1; }
timeout 120 target/release/shard \
    --backends "127.0.0.1:$(cat "$CHAOS_DIR/port_b")" \
    --spec "$CHAOS_DIR/spec.json" --json "$CHAOS_DIR/clean.json" --poll-ms 10
cmp "$CHAOS_DIR/faulted.json" "$CHAOS_DIR/clean.json" \
    || { echo "faulted report diverged from the clean report"; exit 1; }
kill "$CHAOS_PROXY_PID" 2>/dev/null || true
curl -sf -X POST "http://127.0.0.1:$(cat "$CHAOS_DIR/port_a")/shutdown" >/dev/null
curl -sf -X POST "http://127.0.0.1:$(cat "$CHAOS_DIR/port_b")/shutdown" >/dev/null
wait "$CHAOS_A_PID" "$CHAOS_B_PID"
echo "chaos smoke OK (faulted and clean reports byte-identical)"

echo "== incremental smoke (result cache + spec-diffed re-run, byte-identical) =="
CACHE_DIR="$(mktemp -d)"
trap 'kill "${SERVE_PID:-0}" "${SHARD_A_PID:-0}" "${SHARD_B_PID:-0}" \
         "${CHAOS_A_PID:-0}" "${CHAOS_B_PID:-0}" "${CHAOS_PROXY_PID:-0}" \
         "${CACHE_A_PID:-0}" "${CACHE_B_PID:-0}" 2>/dev/null || true; \
      rm -rf "$SERVE_DIR" "$SHARD_DIR" "$CHAOS_DIR" "$CACHE_DIR"' EXIT
target/release/serve --addr 127.0.0.1:0 --data-dir "$CACHE_DIR/a" \
    --port-file "$CACHE_DIR/port_a" --jobs 1 --threads 1 &
CACHE_A_PID=$!
target/release/serve --addr 127.0.0.1:0 --data-dir "$CACHE_DIR/b" \
    --port-file "$CACHE_DIR/port_b" --jobs 1 --threads 1 &
CACHE_B_PID=$!
for _ in $(seq 1 200); do [ -s "$CACHE_DIR/port_a" ] && [ -s "$CACHE_DIR/port_b" ] && break; sleep 0.05; done
[ -s "$CACHE_DIR/port_a" ] && [ -s "$CACHE_DIR/port_b" ] \
    || { echo "cache-smoke serves never wrote their ports"; exit 1; }
CACHE_BACKENDS="127.0.0.1:$(cat "$CACHE_DIR/port_a"),127.0.0.1:$(cat "$CACHE_DIR/port_b")"
# The baseline grid, run once with the cache sealing every shard.
cat > "$CACHE_DIR/spec_v1.json" <<'SPEC'
{"version":1,"campaign_seed":17,"benchmarks":["ADPCM encode","ADPCM decode"],
 "schemes":[{"label":"Default","spec":{"kind":"fixed","scheme":{"kind":"default"}}}],
 "error_rates":[0.000001,0.00001],"replicates":2,"normalize":false,"golden_check":false}
SPEC
# One axis value edited: 1e-5 -> 2e-5. Half the grid is unchanged.
sed 's/0\.00001\]/0.00002]/' "$CACHE_DIR/spec_v1.json" > "$CACHE_DIR/spec_v2.json"
grep -q '0.00002' "$CACHE_DIR/spec_v2.json" || { echo "axis edit did not apply"; exit 1; }
timeout 120 target/release/shard --backends "$CACHE_BACKENDS" \
    --spec "$CACHE_DIR/spec_v1.json" --cache-dir "$CACHE_DIR/cache" \
    --json "$CACHE_DIR/v1.json" --poll-ms 10 --quiet
# Clean oracle for the edited spec: a run without any cache.
timeout 120 target/release/shard --backends "$CACHE_BACKENDS" \
    --spec "$CACHE_DIR/spec_v2.json" --json "$CACHE_DIR/v2_clean.json" \
    --poll-ms 10 --quiet
# Incremental: diff against the baseline, splice the unchanged half,
# execute only the edited cells — and expose the cache counters.
timeout 120 target/release/shard --backends "$CACHE_BACKENDS" \
    --spec "$CACHE_DIR/spec_v2.json" --baseline "$CACHE_DIR/spec_v1.json" \
    --cache-dir "$CACHE_DIR/cache" --json "$CACHE_DIR/v2_incremental.json" \
    --metrics-out "$CACHE_DIR/metrics.txt" --poll-ms 10 --quiet
cmp "$CACHE_DIR/v2_incremental.json" "$CACHE_DIR/v2_clean.json" \
    || { echo "incremental report diverged from the clean run"; exit 1; }
CACHE_METRICS="$(cat "$CACHE_DIR/metrics.txt")"
CACHE_HITS="$(mval "$CACHE_METRICS" 'shard_cache_hits_total')"
[ "${CACHE_HITS:-0}" -ge 1 ] \
    || { echo "shard_cache_hits_total never advanced: ${CACHE_HITS:-absent}"; exit 1; }
SPLICED="$(mval "$CACHE_METRICS" 'shard_cache_rows_spliced_total')"
[ "${SPLICED:-0}" -ge 1 ] \
    || { echo "shard_cache_rows_spliced_total never advanced"; exit 1; }
# A verbatim warm re-run of the edited spec is a pure splice and still
# byte-identical.
timeout 120 target/release/shard --backends "$CACHE_BACKENDS" \
    --spec "$CACHE_DIR/spec_v2.json" --cache-dir "$CACHE_DIR/cache" \
    --json "$CACHE_DIR/v2_warm.json" --poll-ms 10 --quiet
cmp "$CACHE_DIR/v2_warm.json" "$CACHE_DIR/v2_clean.json" \
    || { echo "warm-splice report diverged"; exit 1; }
curl -sf -X POST "http://127.0.0.1:$(cat "$CACHE_DIR/port_a")/shutdown" >/dev/null
curl -sf -X POST "http://127.0.0.1:$(cat "$CACHE_DIR/port_b")/shutdown" >/dev/null
wait "$CACHE_A_PID" "$CACHE_B_PID"
echo "incremental smoke OK (${CACHE_HITS} cache hits, ${SPLICED} rows spliced, bytes identical)"

echo "== cache bench smoke (cold seal vs warm splice vs incremental) =="
cargo run --release -p chunkpoint_bench --bin bench_cache -- --smoke

echo "== scenario bench smoke (timeline axis vs plain grid) =="
cargo run --release -p chunkpoint_bench --bin bench_scenario -- --smoke

echo "== chaos bench smoke (submission throughput at 0/10/30% fault rates) =="
cargo run --release -p chunkpoint_bench --bin bench_chaos -- --smoke

echo "== adaptive smoke (early-stopping controller over two health-weighted shards) =="
cargo run --release --example adaptive_campaign

echo "== adaptive bench smoke (fixed grid vs adaptive replicates-to-CI) =="
cargo run --release -p chunkpoint_bench --bin bench_adaptive -- --smoke

echo "CI OK"
