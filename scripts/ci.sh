#!/usr/bin/env bash
# CI gate: formatting, build, tests, and a smoke campaign that exercises
# the parallel execution path (work-stealing pool + determinism check)
# on every run. Keep it fast — the smoke grid is ~2 seconds.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== smoke campaign (parallel path + determinism) =="
cargo run --release -p chunkpoint_bench --bin bench_campaign -- --smoke --seeds 2 --threads 2

echo "CI OK"
