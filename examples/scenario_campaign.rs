//! The scenario smoke: a named timeline scenario — fault burst, quiet
//! shift, scrub schedule, `expect` blocks — submitted to a **real
//! `serve` backend** over TCP, asserting every expect verdict came back
//! as a typed per-row outcome and the remote report **byte-matches a
//! local oracle**. CI runs this as the scenario smoke (`scripts/ci.sh`);
//! it finishes in about a second. Pass an output directory as the first
//! argument to also write `local.json` / `remote.json` for a shell-level
//! `cmp`.
//!
//! ```text
//! cargo run --release --example scenario_campaign [OUT_DIR]
//! ```

use chunkpoint::campaign::{canonical_report_json, run_campaign, CampaignSpec, SchemeSpec};
use chunkpoint::core::{MitigationScheme, SystemConfig};
use chunkpoint::exec::{CampaignExecutor, RemoteExecutor};
use chunkpoint::scenario::{
    ExpectField, ExpectOp, ExpectValue, Expectation, ScenarioDef, TimelineEvent,
};
use chunkpoint::serve::server::{ServeConfig, Server};
use chunkpoint::serve::REPORT_AXES;
use chunkpoint::workloads::Benchmark;

/// Three regimes the static grid cannot express: a saturating burst in
/// the decode task's output-drain exposure window, a quiet shift to a
/// zero error rate with an expect block every row must satisfy, and a
/// periodic scrub schedule.
fn scenario_axis() -> Vec<ScenarioDef> {
    let mut storm = ScenarioDef::named("storm");
    storm.tags = vec!["burst".to_owned()];
    storm.timeline = vec![TimelineEvent::FaultBurst {
        cycle: 2_000,
        words: 64,
        rate: 1.0,
    }];
    let mut calm = ScenarioDef::named("calm");
    calm.timeline = vec![TimelineEvent::ErrorRateShift {
        cycle: 0,
        rate: 0.0,
    }];
    calm.expect = vec![
        Expectation {
            field: ExpectField::Completed,
            op: ExpectOp::Eq,
            value: ExpectValue::Bool(true),
        },
        Expectation {
            field: ExpectField::DetectedErrors,
            op: ExpectOp::Eq,
            value: ExpectValue::Uint(0),
        },
    ];
    let mut scrubbed = ScenarioDef::named("scrubbed");
    scrubbed.timeline = vec![TimelineEvent::Scrub { period: 4_096 }];
    vec![storm, calm, scrubbed]
}

fn main() {
    let out_dir = std::env::args().nth(1);
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    let spec = CampaignSpec::new(config, 0x5CE7_A10)
        .benchmarks(&[Benchmark::AdpcmDecode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .error_rates(&[1e-6])
        .replicates(2)
        .timeline_scenarios(&scenario_axis());
    let total = spec.scenarios().len();

    // The local oracle: a plain single-threaded engine run, canonically
    // rendered.
    let oracle = run_campaign(&spec, 1);
    let expected =
        canonical_report_json(spec.campaign_seed, &oracle.results, &REPORT_AXES).render();

    // The real backend: a serve instance on an ephemeral TCP port; the
    // scenario axis crosses the wire as spec JSON and the verdicts come
    // back as journal rows.
    let data_dir =
        std::env::temp_dir().join(format!("chunkpoint_scenario_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: data_dir.clone(),
        max_jobs: 1,
        campaign_threads: 0,
        max_queued: 0,
        trace_out: None,
    })
    .expect("bind in-process service");
    let addr = server.local_addr().expect("addr").to_string();
    std::thread::spawn(move || server.run());

    let remote = RemoteExecutor::new(addr.clone())
        .submit(&spec)
        .wait()
        .expect("remote run");
    println!("remote: {total} scenario rows via {addr}");

    // Expect verdicts are typed outcomes on exactly the calm rows.
    let mut verdicts = 0usize;
    for row in &remote.results {
        match row.scenario.scenario.as_deref() {
            Some("calm") => {
                assert_eq!(row.expect_passed, Some(true), "calm row failed its expect");
                assert!(row.expect_failures.is_empty());
                verdicts += 1;
            }
            _ => assert_eq!(row.expect_passed, None, "unexpected verdict"),
        }
    }
    assert!(verdicts > 0, "no expect block was evaluated");
    assert_eq!(
        remote.report, expected,
        "remote report diverged from the local oracle"
    );
    println!("byte-identical remote vs local-oracle reports ✓ ({verdicts} expect verdicts passed)");

    if let Some(dir) = out_dir {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create out dir");
        std::fs::write(dir.join("local.json"), expected.as_bytes()).expect("write local.json");
        std::fs::write(dir.join("remote.json"), remote.report.as_bytes())
            .expect("write remote.json");
        println!("wrote {}/local.json and remote.json", dir.display());
    }

    let _ = chunkpoint::shard::exchange(
        &addr,
        "POST",
        "/shutdown",
        None,
        std::time::Duration::from_secs(5),
    );
    let _ = std::fs::remove_dir_all(data_dir);
}
