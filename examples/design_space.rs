//! Design-space exploration walkthrough: the Fig. 4 feasibility staircase,
//! the per-benchmark cost curves J(K), and where the Table I optima sit.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use chunkpoint::core::{feasible_region, optimize, sweep, SystemConfig, MAX_CHUNK_WORDS};
use chunkpoint::workloads::Benchmark;

fn main() {
    let config = SystemConfig::paper(0);

    // --- Fig. 4: area-feasible (buffer size, code strength) pairs ---
    println!("Fig. 4 staircase (5% area budget): buffer words -> max correctable bits");
    let region = feasible_region(&config);
    let mut last_t = u8::MAX;
    let mut line = String::new();
    for &(words, t) in &region {
        if t != last_t {
            line.push_str(&format!("{words}w:t{t}  "));
            last_t = t;
        }
    }
    println!("  {line}");
    println!();

    // --- J(K) curves, coarse ASCII plot per benchmark ---
    for benchmark in Benchmark::ALL {
        let best = optimize(benchmark, &config).expect("feasible design");
        let points = sweep(benchmark, best.l1_prime_t, &config);
        let feasible: Vec<_> = points.iter().filter(|p| p.is_feasible(&config)).collect();
        let j_max = feasible
            .iter()
            .map(|p| p.cost.objective_pj())
            .fold(f64::MIN, f64::max);
        let j_min = best.cost.objective_pj();
        println!(
            "{benchmark}: optimum K = {} (J = {:.1} uJ), feasible K range = {}..{}",
            best.chunk_words,
            j_min / 1e6,
            feasible.first().map_or(0, |p| p.chunk_words),
            feasible.last().map_or(0, |p| p.chunk_words),
        );
        // ASCII profile of J over the feasible K range (log-ish bar).
        let samples = 16usize;
        let lo = feasible.first().map_or(1, |p| p.chunk_words);
        let hi = feasible.last().map_or(MAX_CHUNK_WORDS, |p| p.chunk_words);
        for s in 0..samples {
            let k = lo + (hi - lo) * s as u32 / (samples as u32 - 1).max(1);
            let point = &points[(k - 1) as usize];
            if !point.is_feasible(&config) {
                continue;
            }
            let j = point.cost.objective_pj();
            let bar_len = if j_max > j_min {
                (40.0 * (j - j_min) / (j_max - j_min)) as usize
            } else {
                0
            };
            let marker = if k == best.chunk_words {
                " <-- optimum"
            } else {
                ""
            };
            println!("  K={k:>4} | {}{marker}", "#".repeat(bar_len + 1));
        }
        println!();
    }
}
