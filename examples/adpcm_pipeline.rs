//! A realistic voice pipeline: PCM speech → G.721 encode → G.721 decode,
//! both stages running on the fault-prone simulated SoC, comparing output
//! quality (SNR) and energy across all four mitigation schemes.
//!
//! This is the workload class the paper's introduction motivates: a
//! periodic telecom codec whose QoS must survive intermittent SRAM errors.
//!
//! ```sh
//! cargo run --release --example adpcm_pipeline
//! ```

use chunkpoint::core::{golden, optimize, run, MitigationScheme, SystemConfig};
use chunkpoint::workloads::{adpcm::snr_db, unpack_i16, Benchmark};

fn main() {
    let config = SystemConfig::paper(0xADBC);
    let benchmark = Benchmark::G721Decode;
    let reference = golden(benchmark, &config);
    let reference_pcm = unpack_i16(&reference.output, reference.output.len() * 2);

    let best = optimize(benchmark, &config).expect("feasible design");
    let schemes = [
        ("Default (no mitigation)", MitigationScheme::Default),
        ("SW restart", MitigationScheme::SwRestart),
        ("HW full ECC", MitigationScheme::hw_baseline()),
        (
            "Hybrid (proposed)",
            MitigationScheme::Hybrid {
                chunk_words: best.chunk_words,
                l1_prime_t: best.l1_prime_t,
            },
        ),
    ];

    println!("G.721 decode of one 24 ms voice frame under SMU faults (lambda = 1e-6)");
    println!();
    println!(
        "{:<26} | {:>10} | {:>12} | {:>10} | {:>8}",
        "scheme", "energy x", "time x", "SNR vs ref", "correct"
    );
    println!("{}", "-".repeat(78));
    for (label, scheme) in schemes {
        // Average over a few fault seeds.
        let seeds = 6u64;
        let mut energy = 0.0;
        let mut time = 0.0;
        let mut worst_snr = f64::INFINITY;
        let mut all_correct = true;
        for s in 0..seeds {
            let mut c = config.clone();
            c.faults.seed = config.faults.seed ^ (s * 7919);
            let denominator = run(benchmark, MitigationScheme::Default, &c);
            let report = run(benchmark, scheme, &c);
            energy += report.energy_ratio(&denominator);
            time += report.cycle_ratio(&denominator);
            let pcm = unpack_i16(&report.output, report.output.len() * 2);
            if pcm.len() == reference_pcm.len() && !reference_pcm.is_empty() {
                worst_snr = worst_snr.min(snr_db(&reference_pcm, &pcm));
            } else {
                worst_snr = f64::NEG_INFINITY;
            }
            all_correct &= report.output_matches(&reference);
        }
        let snr = if worst_snr.is_infinite() && worst_snr > 0.0 {
            "inf dB".to_owned()
        } else {
            format!("{worst_snr:.1} dB")
        };
        println!(
            "{:<26} | {:>10.3} | {:>12.3} | {:>10} | {:>8}",
            label,
            energy / seeds as f64,
            time / seeds as f64,
            snr,
            if all_correct { "yes" } else { "NO" },
        );
    }
    println!();
    println!("Default silently degrades SNR; the proposed scheme keeps the output");
    println!("bit-exact at a fraction of the HW/SW baselines' energy overhead.");
}
