//! Incremental-campaign walkthrough: run a λ-sweep grid once with the
//! coordinator's **range-granular result cache** enabled, edit one
//! axis value, and re-run — the spec diff maps every unchanged
//! `(seed, parameters)` cell onto the new grid, their sealed journal
//! rows are spliced from disk, and only the changed cells execute.
//! The final report is byte-identical to a clean full run of the
//! edited spec.
//!
//! ```text
//! cargo run --release --example incremental_campaign
//! ```
//!
//! Two campaign services start in-process on ephemeral ports; the
//! cache lives in a temp directory printed at startup (the same layout
//! `shard --cache-dir` uses).

use chunkpoint::campaign::{
    canonical_report_json, diff_specs, run_campaign, translate_rows, CampaignSpec, SchemeSpec,
};
use chunkpoint::core::{MitigationScheme, SystemConfig};
use chunkpoint::shard::{run_sharded, RangeCache, ShardConfig};
use chunkpoint::workloads::Benchmark;
use chunkpoint_serve::server::{ServeConfig, Server};
use chunkpoint_serve::REPORT_AXES;

fn sweep_spec(rates: &[f64]) -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25; // short frames keep the example snappy
    CampaignSpec::new(config, 0x17C4)
        .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .scheme(
            "Proposed",
            SchemeSpec::Fixed(MitigationScheme::Hybrid {
                chunk_words: 16,
                l1_prime_t: 8,
            }),
        )
        .error_rates(rates)
        .replicates(4)
}

fn main() {
    // Two in-process services, exactly like the shard_campaign example.
    let mut backends = Vec::new();
    let mut data_dirs = Vec::new();
    for k in 0..2 {
        let data_dir = std::env::temp_dir().join(format!(
            "chunkpoint_incremental_example_{}_{k}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&data_dir);
        let server = Server::bind(&ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            data_dir: data_dir.clone(),
            max_jobs: 1,
            campaign_threads: 1,
            max_queued: 0,
            trace_out: None,
        })
        .expect("bind in-process service");
        let addr = server.local_addr().expect("addr").to_string();
        std::thread::spawn(move || server.run());
        println!("started in-process service on {addr}");
        backends.push(addr);
        data_dirs.push(data_dir);
    }

    let cache_root = std::env::temp_dir().join(format!(
        "chunkpoint_incremental_example_cache_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&cache_root);
    println!("result cache at {}", cache_root.display());
    let config = ShardConfig {
        cache_dir: Some(cache_root.clone()),
        ..ShardConfig::default()
    };

    // Pass 1: the original sweep. Every shard that completes seals its
    // rows into the cache under the campaign's content hash.
    let old_spec = sweep_spec(&[1e-7, 1e-6, 1e-5]);
    println!(
        "\npass 1: {} scenarios, cold cache…",
        old_spec.scenarios().len()
    );
    let first = run_sharded(&old_spec, &backends, &config).expect("first run");
    println!(
        "  {} dispatches, {} rows spliced (cold)",
        first.dispatches, first.spliced
    );

    // The edit: one sweep point moves (1e-5 → 2e-5). Two thirds of the
    // grid — every cell whose (seed, parameters) survived — is
    // unchanged.
    let new_spec = sweep_spec(&[1e-7, 1e-6, 2e-5]);
    let diff = diff_specs(&old_spec, &new_spec);
    println!(
        "\nedit: 1e-5 → 2e-5; spec diff: {} of {} cells reusable, {} changed",
        diff.reused(),
        diff.new_total,
        diff.changed
    );

    // Seed the edited campaign's cache from the old one — exactly what
    // `shard --baseline old_spec.json --cache-dir …` does.
    let cache = RangeCache::new(&cache_root);
    let old_rows: Vec<_> = cache
        .load(&old_spec, &old_spec.scenarios())
        .into_values()
        .collect();
    let translated = translate_rows(&old_spec, &new_spec, &old_rows);
    cache
        .store_scattered(&new_spec, &translated)
        .expect("seed the edited campaign's cache");

    // Pass 2: only the changed cells execute; the rest splice.
    println!("\npass 2: incremental re-run…");
    let second = run_sharded(&new_spec, &backends, &config).expect("incremental run");
    println!(
        "  {} dispatches, {} rows spliced from cache",
        second.dispatches, second.spliced
    );

    // Byte identity against a clean in-process run of the edited spec.
    let reference = run_campaign(&new_spec, 1);
    let expected =
        canonical_report_json(new_spec.campaign_seed, &reference.results, &REPORT_AXES).render();
    assert_eq!(second.report, expected, "incremental bytes diverged");
    println!("\nincremental report is byte-identical to a clean full run ✓");

    for addr in &backends {
        let _ = chunkpoint::shard::exchange(
            addr,
            "POST",
            "/shutdown",
            None,
            std::time::Duration::from_secs(5),
        );
    }
    for dir in &data_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    let _ = std::fs::remove_dir_all(&cache_root);
}
