//! The executor-parity smoke: one tiny grid, two execution paths —
//! in-process [`LocalExecutor`] and [`RemoteExecutor`] against a
//! self-hosted `serve` — asserting the two canonical reports are
//! **byte-identical** and both event streams completed. CI runs this
//! as the exec smoke (`scripts/ci.sh`); it finishes in about a second.
//!
//! ```text
//! cargo run --release --example exec_parity
//! ```

use chunkpoint::campaign::{CampaignSpec, SchemeSpec};
use chunkpoint::core::{MitigationScheme, SystemConfig};
use chunkpoint::exec::{CampaignEvent, CampaignExecutor, LocalExecutor, RemoteExecutor};
use chunkpoint::workloads::Benchmark;
use chunkpoint_serve::server::{ServeConfig, Server};

fn main() {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    let spec = CampaignSpec::new(config, 0xE4EC_57)
        .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .replicates(2);
    let total = spec.scenarios().len();

    // Path one: in-process, two worker threads.
    let local_handle = LocalExecutor::new(2).submit(&spec);
    let local_events = local_handle.events().count();
    let local = local_handle.wait().expect("local run");
    println!("local:  {total} scenarios, {local_events} events");

    // Path two: a self-hosted serve on an ephemeral port.
    let data_dir =
        std::env::temp_dir().join(format!("chunkpoint_exec_parity_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: data_dir.clone(),
        max_jobs: 1,
        campaign_threads: 0,
        max_queued: 0,
        trace_out: None,
    })
    .expect("bind in-process service");
    let addr = server.local_addr().expect("addr").to_string();
    std::thread::spawn(move || server.run());

    let remote_handle = RemoteExecutor::new(addr.clone()).submit(&spec);
    let mut remote_events = 0usize;
    let mut completed = false;
    for event in remote_handle.events() {
        remote_events += 1;
        completed |= matches!(event, CampaignEvent::Complete);
    }
    let remote = remote_handle.wait().expect("remote run");
    println!("remote: {total} scenarios, {remote_events} events via {addr}");

    assert!(completed, "remote stream never emitted Complete");
    assert_eq!(local.scenarios, total);
    assert_eq!(remote.scenarios, total);
    assert_eq!(
        local.report, remote.report,
        "local and remote reports diverged"
    );
    println!("byte-identical local vs remote reports ✓ ({total} scenarios)");

    let _ = chunkpoint::shard::exchange(
        &addr,
        "POST",
        "/shutdown",
        None,
        std::time::Duration::from_secs(5),
    );
    let _ = std::fs::remove_dir_all(data_dir);
}
