//! The adaptive-controller smoke: a small campaign grid driven as
//! sequential-sampling control rounds over two self-hosted `serve`
//! shards — cells stop early once their CI95 half-width is inside the
//! policy threshold, the freed replicate budget flows to the noisiest
//! open cells, and the shard split is weighted by live `/healthz` job
//! counts ([`AutoWeightedSharded`]). The resulting report must be
//! **byte-identical** to the single-threaded in-process oracle. CI runs
//! this as the adaptive smoke (`scripts/ci.sh`); it finishes in about a
//! second.
//!
//! ```text
//! cargo run --release --example adaptive_campaign
//! ```

use chunkpoint::adaptive::{AdaptiveController, AdaptivePolicy, AutoWeightedSharded};
use chunkpoint::campaign::{CampaignSpec, SchemeSpec};
use chunkpoint::core::{MitigationScheme, SystemConfig};
use chunkpoint::exec::LocalExecutor;
use chunkpoint::workloads::Benchmark;
use chunkpoint_serve::server::{ServeConfig, Server};

/// Boots an in-process `serve` on an ephemeral port; returns its addr.
fn spawn_shard(tag: &str) -> String {
    let data_dir = std::env::temp_dir().join(format!(
        "chunkpoint_adaptive_example_{}_{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&data_dir);
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir,
        max_jobs: 1,
        campaign_threads: 1,
        max_queued: 0,
        trace_out: None,
    })
    .expect("bind in-process shard");
    let addr = server.local_addr().expect("addr").to_string();
    std::thread::spawn(move || server.run());
    addr
}

fn main() {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25;
    let spec = CampaignSpec::new(config, 0xADA_E6)
        .benchmarks(&[Benchmark::AdpcmEncode, Benchmark::AdpcmDecode])
        .scheme("Default", SchemeSpec::Fixed(MitigationScheme::Default))
        .error_rates(&[1e-6, 1e-5])
        .replicates(6);

    // Stop a cell once its CI95 half-width is within 90% of its mean —
    // loose on purpose, so the smoke demonstrably saves replicates —
    // but never below 2 replicates, in rounds of 2.
    let policy = AdaptivePolicy::new()
        .min_replicates(2)
        .round_replicates(2)
        .rel_ci(0.9);

    // The oracle every executor must match byte for byte.
    let oracle = AdaptiveController::new(LocalExecutor::new(1), policy.clone())
        .run(&spec)
        .expect("local adaptive oracle");

    // The same (spec, policy) over two health-weighted serve shards.
    let shard_a = spawn_shard("a");
    let shard_b = spawn_shard("b");
    let executor = AutoWeightedSharded::new(vec![shard_a, shard_b]);
    let run = AdaptiveController::new(executor, policy)
        .run(&spec)
        .expect("sharded adaptive run");

    println!(
        "adaptive: {} of {} scenarios over {} rounds ({} saved) in {:.2?}",
        run.executed,
        run.budget,
        run.rounds,
        run.budget - run.executed,
        run.elapsed
    );
    for outcome in &run.cells {
        println!(
            "  cell {} [{}]: {} replicates, round {}, ci95 {:.3e}{}",
            outcome.cell,
            outcome.key,
            outcome.stop.replicates,
            outcome.stop.round,
            outcome.stop.ci95,
            if outcome.stop.converged {
                " (converged)"
            } else {
                ""
            }
        );
    }

    assert!(
        run.executed < run.budget,
        "loose threshold must stop early: executed {} of {}",
        run.executed,
        run.budget
    );
    assert!(
        run.cells.iter().any(|c| c.stop.converged),
        "no cell converged"
    );
    assert!(run.report.contains("\"adaptive\""));
    assert_eq!(
        run.report, oracle.report,
        "sharded adaptive bytes diverged from the local oracle"
    );
    println!("adaptive parity OK (sharded report byte-identical to the local oracle)");
}
