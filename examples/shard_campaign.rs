//! Sharded-campaign walkthrough: split one λ-sweep grid across **two**
//! campaign services and merge their journals into the canonical report
//! — the cross-machine scaling path, self-contained in one file.
//!
//! By default the example starts two services in-process on ephemeral
//! ports; point it at running services instead with repeated `--backend`
//! flags:
//!
//! ```text
//! cargo run --release --example shard_campaign \
//!     [-- --backend HOST:PORT --backend HOST:PORT]
//! ```
//!
//! The merged report is byte-identical to what a single service — or an
//! in-process single-threaded run — would produce for the same spec,
//! which the example verifies before printing the table.

use chunkpoint::campaign::{canonical_report_json, run_campaign, Axis, CampaignSpec, SchemeSpec};
use chunkpoint::core::{MitigationScheme, SystemConfig};
use chunkpoint::shard::{run_sharded, ShardConfig};
use chunkpoint::workloads::Benchmark;
use chunkpoint_bench::report::Table;
use chunkpoint_serve::server::{ServeConfig, Server};
use chunkpoint_serve::REPORT_AXES;

/// The λ sweep: three decades around the paper's worst case.
const RATES: [f64; 3] = [1e-7, 1e-6, 1e-5];

fn sweep_spec() -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25; // short frames keep the example snappy
    CampaignSpec::new(config, 0x5A4DED)
        .benchmarks(&[Benchmark::AdpcmDecode])
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .scheme(
            "Proposed",
            SchemeSpec::Fixed(MitigationScheme::Hybrid {
                chunk_words: 16,
                l1_prime_t: 8,
            }),
        )
        .error_rates(&RATES)
        .replicates(6)
}

fn main() {
    let mut backends: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--backend" => backends.push(args.next().expect("--backend requires HOST:PORT")),
            other => {
                eprintln!("unknown flag {other}; usage: shard_campaign [--backend HOST:PORT ...]");
                std::process::exit(2);
            }
        }
    }
    let mut data_dirs = Vec::new();
    if backends.is_empty() {
        for k in 0..2 {
            let data_dir = std::env::temp_dir().join(format!(
                "chunkpoint_shard_example_{}_{k}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&data_dir);
            let server = Server::bind(&ServeConfig {
                addr: "127.0.0.1:0".to_owned(),
                data_dir: data_dir.clone(),
                max_jobs: 1,
                campaign_threads: 1,
            })
            .expect("bind in-process service");
            let addr = server.local_addr().expect("addr").to_string();
            std::thread::spawn(move || server.run());
            println!("started in-process service on {addr}");
            backends.push(addr);
            data_dirs.push(data_dir);
        }
    }

    let spec = sweep_spec();
    println!(
        "dispatching a {}-scenario grid across {} backends…",
        spec.scenarios().len(),
        backends.len()
    );
    let run = run_sharded(&spec, &backends, &ShardConfig::default()).expect("sharded campaign");
    for event in &run.events {
        println!("  {event}");
    }
    println!(
        "merged {} scenarios from {} shard(s) in {} dispatch(es)",
        run.results.len(),
        run.shards,
        run.dispatches
    );

    // The whole point: the merged report is byte-identical to a
    // single-machine run.
    let reference = run_campaign(&spec, 1);
    let expected =
        canonical_report_json(spec.campaign_seed, &reference.results, &REPORT_AXES).render();
    assert_eq!(run.report, expected, "sharded bytes diverged");
    println!("byte-identical to the unsharded single-threaded run ✓");

    // Aggregate the merged rows by scheme × λ and print the sweep.
    let mut aggregator = chunkpoint::campaign::Aggregator::new(&[Axis::Scheme, Axis::ErrorRate]);
    for row in &run.results {
        aggregator.push(row);
    }
    let table = Table::new(10, 14);
    println!();
    table.header(
        "scheme",
        &[
            "lambda".to_owned(),
            "energy ratio".to_owned(),
            "±95% CI".to_owned(),
            "n".to_owned(),
        ],
    );
    for (key, stats) in aggregator.groups() {
        table.row(
            &key[0],
            &[
                key[1].clone(),
                format!("{:.3}", stats.energy_ratio.mean()),
                format!("{:.3}", stats.energy_ratio.ci95_half_width()),
                stats.n.to_string(),
            ],
        );
    }

    for dir in &data_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}
