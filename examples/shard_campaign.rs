//! Sharded-campaign walkthrough through the **unified executor API**:
//! split one λ-sweep grid across **two** campaign services with
//! [`chunkpoint::exec::ShardedExecutor`], watch the typed dispatch and
//! completion events stream by, and verify the merged report is
//! byte-identical to a single-machine run.
//!
//! By default the example starts two services in-process on ephemeral
//! ports; point it at running services instead with repeated `--backend`
//! flags, optionally weighting the split with `--weights W,W`:
//!
//! ```text
//! cargo run --release --example shard_campaign \
//!     [-- --backend HOST:PORT --backend HOST:PORT [--weights 3,1]]
//! ```

use chunkpoint::campaign::{canonical_report_json, run_campaign, Axis, CampaignSpec, SchemeSpec};
use chunkpoint::core::{MitigationScheme, SystemConfig};
use chunkpoint::exec::{CampaignEvent, CampaignExecutor, LiveAggregates, ShardedExecutor};
use chunkpoint::workloads::Benchmark;
use chunkpoint_bench::report::Table;
use chunkpoint_serve::server::{ServeConfig, Server};
use chunkpoint_serve::REPORT_AXES;

/// The λ sweep: three decades around the paper's worst case.
const RATES: [f64; 3] = [1e-7, 1e-6, 1e-5];

fn sweep_spec() -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.25; // short frames keep the example snappy
    CampaignSpec::new(config, 0x5A4DED)
        .benchmarks(&[Benchmark::AdpcmDecode])
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .scheme(
            "Proposed",
            SchemeSpec::Fixed(MitigationScheme::Hybrid {
                chunk_words: 16,
                l1_prime_t: 8,
            }),
        )
        .error_rates(&RATES)
        .replicates(6)
}

fn main() {
    let mut backends: Vec<String> = Vec::new();
    let mut weights: Option<Vec<f64>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--backend" => backends.push(args.next().expect("--backend requires HOST:PORT")),
            "--weights" => {
                weights = Some(
                    args.next()
                        .expect("--weights requires W,W,...")
                        .split(',')
                        .map(|w| w.trim().parse().expect("numeric weight"))
                        .collect(),
                );
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: shard_campaign \
                     [--backend HOST:PORT ...] [--weights W,W,...]"
                );
                std::process::exit(2);
            }
        }
    }
    let mut data_dirs = Vec::new();
    if backends.is_empty() {
        for k in 0..2 {
            let data_dir = std::env::temp_dir().join(format!(
                "chunkpoint_shard_example_{}_{k}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&data_dir);
            let server = Server::bind(&ServeConfig {
                addr: "127.0.0.1:0".to_owned(),
                data_dir: data_dir.clone(),
                max_jobs: 1,
                campaign_threads: 1,
                max_queued: 0,
                trace_out: None,
            })
            .expect("bind in-process service");
            let addr = server.local_addr().expect("addr").to_string();
            std::thread::spawn(move || server.run());
            println!("started in-process service on {addr}");
            backends.push(addr);
            data_dirs.push(data_dir);
        }
    }

    let spec = sweep_spec();
    println!(
        "dispatching a {}-scenario grid across {} backends…",
        spec.scenarios().len(),
        backends.len()
    );
    let mut executor = ShardedExecutor::new(backends);
    if let Some(weights) = weights {
        executor = executor.with_weights(weights);
    }
    let handle = executor.submit(&spec);
    let mut live = LiveAggregates::new(&[Axis::Scheme, Axis::ErrorRate]);
    for event in handle.events() {
        // Narrate the coordinator's decisions; fold scenario rows into
        // the live aggregates quietly (a shard bursts its whole range
        // at once — per-row lines would just scroll).
        match &event {
            CampaignEvent::ScenarioDone(_) => {
                live.observe(&event);
            }
            CampaignEvent::Progress { .. } => {
                live.observe(&event);
                println!("  {}", live.line());
            }
            other => println!("  {other}"),
        }
    }
    let run = handle.wait().expect("sharded campaign");
    println!(
        "merged {} scenarios in {} dispatch(es), {} failure(s)",
        run.scenarios, run.dispatches, run.failures
    );

    // The whole point: the merged report is byte-identical to a
    // single-machine run.
    let reference = run_campaign(&spec, 1);
    let expected =
        canonical_report_json(spec.campaign_seed, &reference.results, &REPORT_AXES).render();
    assert_eq!(run.report, expected, "sharded bytes diverged");
    println!("byte-identical to the unsharded single-threaded run ✓");

    // The live aggregator's cells are the final report's cells: print
    // the scheme × λ sweep.
    let table = Table::new(10, 14);
    println!();
    table.header(
        "scheme",
        &[
            "lambda".to_owned(),
            "energy ratio".to_owned(),
            "±95% CI".to_owned(),
            "n".to_owned(),
        ],
    );
    for (key, stats) in live.groups().groups() {
        table.row(
            &key[0],
            &[
                key[1].clone(),
                format!("{:.3}", stats.energy_ratio.mean()),
                format!("{:.3}", stats.energy_ratio.ci95_half_width()),
                stats.n.to_string(),
            ],
        );
    }

    for dir in &data_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}
