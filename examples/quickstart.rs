//! Quickstart: size the protected buffer optimally, run a streaming
//! benchmark under injected SMU faults with the hybrid scheme, and verify
//! *full error mitigation* — then print the Fig. 1-style execution
//! timeline showing checkpoints, the read-error interrupt, and the
//! demand-driven rollback.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use chunkpoint::core::{golden, optimize, run, MitigationScheme, SystemConfig};
use chunkpoint::workloads::Benchmark;

fn main() {
    // The paper's system configuration: ARM9 @ 200 MHz, 64 KB L1,
    // OV1 = 5 %, OV2 = 10 %, lambda = 1e-6 word/cycle.
    let config = SystemConfig::paper(2012);
    let benchmark = Benchmark::AdpcmDecode;

    // 1. Solve the chunk-size optimization (Eqs. 3-7).
    let best = optimize(benchmark, &config).expect("paper constraints are feasible");
    println!("benchmark        : {benchmark}");
    println!("optimal chunk    : {} words", best.chunk_words);
    println!(
        "L1' buffer       : {} words, BCH t = {}",
        best.cost.buffer_words, best.l1_prime_t
    );
    println!("checkpoints      : {}", best.cost.n_checkpoints);
    println!(
        "area / cycle use : {:.2}% of L1 (budget {:.0}%), {:.2}% cycles (budget {:.0}%)",
        100.0 * best.area_fraction,
        100.0 * config.constraints.area_overhead,
        100.0 * best.cost.cycle_fraction(),
        100.0 * config.constraints.cycle_overhead,
    );

    // 2. Run under injected faults with the hybrid scheme. At the paper's
    //    1e-6 rate the hybrid's small live set is rarely struck within a
    //    single frame (its overhead is almost pure checkpointing), so use
    //    a harsher burst-of-activity rate to showcase a recovery.
    let scheme = MitigationScheme::Hybrid {
        chunk_words: best.chunk_words,
        l1_prime_t: best.l1_prime_t,
    };
    let reference = golden(benchmark, &config);
    let report = (0..200)
        .map(|s| {
            let mut c = config.clone();
            c.faults.error_rate = 5e-5;
            c.faults.seed = 2012 + s;
            run(benchmark, scheme, &c)
        })
        .find(|r| r.errors_detected > 0)
        .expect("a strike within 200 frames at lambda = 5e-5");

    println!();
    println!("errors detected  : {}", report.errors_detected);
    println!("rollbacks        : {}", report.rollbacks);
    println!("checkpoints done : {}", report.checkpoints);
    println!(
        "energy overhead  : {:.1}% vs fault-free default",
        100.0 * (report.energy_ratio(&reference) - 1.0)
    );
    println!(
        "output           : {} words, {}",
        report.output.len(),
        if report.output_matches(&reference) {
            "bit-identical to the fault-free run (full error mitigation)"
        } else {
            "MISMATCH (should not happen!)"
        }
    );

    // 3. Fig. 1-style timeline (first events around the first rollback).
    println!();
    println!("execution timeline (excerpt):");
    let events = report.trace.events();
    let first_err = events
        .iter()
        .position(|e| matches!(e, chunkpoint::sim::TraceEvent::ReadError { .. }))
        .unwrap_or(0);
    let lo = first_err.saturating_sub(4);
    let hi = (first_err + 6).min(events.len());
    for event in &events[lo..hi] {
        let mut one = chunkpoint::sim::Trace::new(1);
        one.push(event.clone());
        print!("{}", one.render());
    }
}
