//! Campaign-engine walkthrough: sweep the strike rate λ across three
//! decades and watch each mitigation scheme's energy overhead and
//! correctness respond — in parallel, reproducibly.
//!
//! The grid is benchmark × scheme × λ × replicate. Scenario seeds derive
//! from `(campaign_seed, scenario_index)`, so the numbers below are
//! bit-identical no matter how many worker threads run the grid (try
//! `run_campaign(&spec, 1)` vs `run_campaign(&spec, 8)`).
//!
//! Run with `cargo run --release --example campaign_sweep`.

use chunkpoint::campaign::{run_campaign, Axis, CampaignSpec, SchemeSpec};
use chunkpoint::core::{MitigationScheme, SystemConfig};
use chunkpoint::workloads::Benchmark;

fn main() {
    // λ across three decades: benign, the paper's worst case, extreme.
    let rates = [1e-7, 1e-6, 1e-5];

    let mut config = SystemConfig::paper(0);
    config.scale = 0.5; // half-length frames keep the example snappy
    let spec = CampaignSpec::new(config, 0x5EED)
        .benchmarks(&[Benchmark::AdpcmDecode, Benchmark::G721Decode])
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .scheme("Proposed", SchemeSpec::Optimal)
        .error_rates(&rates)
        .replicates(5);

    let result = run_campaign(&spec, 0); // 0 = all cores
    println!(
        "{} scenarios in {:.2}s ({:.0} scenarios/s) on {} threads",
        result.results.len(),
        result.elapsed.as_secs_f64(),
        result.scenarios_per_sec(),
        result.threads,
    );
    println!();

    // Aggregate over benchmarks: scheme x rate, mean +/- 95% CI.
    let cells = result.aggregate(&[Axis::Scheme, Axis::ErrorRate]);
    println!(
        "{:<10} | {:>7} | {:>22} | {:>8}",
        "scheme", "lambda", "energy ratio (95% CI)", "correct"
    );
    println!("{}", "-".repeat(58));
    for scheme in ["SW-based", "Proposed"] {
        for rate in rates {
            let stats = cells
                .get(&[scheme, &format!("{rate:e}")])
                .expect("cell simulated");
            println!(
                "{:<10} | {:>7.0e} | {:>14.3} ± {:>5.3} | {:>3} / {:>2}",
                scheme,
                rate,
                stats.energy_ratio.mean(),
                stats.energy_ratio.ci95_half_width(),
                stats.correct,
                stats.n,
            );
        }
    }
    println!();
    println!("the hybrid's overhead stays flat while the SW baseline's restart cost");
    println!("grows with λ — and every scheme except Default stays bit-correct.");
}
