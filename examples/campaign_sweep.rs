//! Campaign-engine walkthrough: sweep the strike rate λ across three
//! decades and watch each mitigation scheme's energy overhead and
//! correctness respond — in parallel, reproducibly, **live**.
//!
//! The grid is benchmark × scheme × λ × replicate, submitted through
//! the unified executor API ([`chunkpoint::exec`]): the same
//! submit/observe/wait calls would run this grid on a remote service
//! (`RemoteExecutor`) or a fleet of them (`ShardedExecutor`) with
//! byte-identical results. Scenario seeds derive from
//! `(campaign_seed, scenario_index)`, so the numbers below are
//! bit-identical no matter how many worker threads run the grid.
//!
//! Run with `cargo run --release --example campaign_sweep`.

use chunkpoint::campaign::{Axis, CampaignSpec, SchemeSpec};
use chunkpoint::core::{MitigationScheme, SystemConfig};
use chunkpoint::exec::{CampaignExecutor, LiveAggregates, LocalExecutor};
use chunkpoint::workloads::Benchmark;

fn main() {
    // λ across three decades: benign, the paper's worst case, extreme.
    let rates = [1e-7, 1e-6, 1e-5];

    let mut config = SystemConfig::paper(0);
    config.scale = 0.5; // half-length frames keep the example snappy
    let spec = CampaignSpec::new(config, 0x5EED)
        .benchmarks(&[Benchmark::AdpcmDecode, Benchmark::G721Decode])
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .scheme("Proposed", SchemeSpec::Optimal)
        .error_rates(&rates)
        .replicates(5);

    // Submit to the in-process executor (0 = all cores) and watch the
    // partial aggregates tighten as scenario results stream in.
    let handle = LocalExecutor::new(0).submit(&spec);
    let mut live = LiveAggregates::new(&[Axis::Scheme, Axis::ErrorRate]);
    for event in handle.events() {
        if let Some(line) = live.observe(&event) {
            println!("  {line}");
        }
    }
    let run = handle.wait().expect("campaign");
    println!();
    println!(
        "{} scenarios in {:.2}s ({:.0} scenarios/s)",
        run.scenarios,
        run.elapsed.as_secs_f64(),
        run.scenarios as f64 / run.elapsed.as_secs_f64().max(1e-9),
    );
    println!();

    // The live aggregator has folded every row; its cells are the final
    // report's cells. Print scheme × rate, mean ± 95% CI.
    let cells = live.groups();
    println!(
        "{:<10} | {:>7} | {:>22} | {:>8}",
        "scheme", "lambda", "energy ratio (95% CI)", "correct"
    );
    println!("{}", "-".repeat(58));
    for scheme in ["SW-based", "Proposed"] {
        for rate in rates {
            let stats = cells
                .get(&[scheme, &format!("{rate:e}")])
                .expect("cell simulated");
            println!(
                "{:<10} | {:>7.0e} | {:>14.3} ± {:>5.3} | {:>3} / {:>2}",
                scheme,
                rate,
                stats.energy_ratio.mean(),
                stats.energy_ratio.ci95_half_width(),
                stats.correct,
                stats.n,
            );
        }
    }
    println!();
    println!("the hybrid's overhead stays flat while the SW baseline's restart cost");
    println!("grows with λ — and every scheme except Default stays bit-correct.");
}
