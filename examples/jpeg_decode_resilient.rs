//! Resilient JPEG decoding: decode a thumbnail on the fault-prone SoC and
//! compare image quality (PSNR) across mitigation schemes, at the paper's
//! rate and at a 10x harsher one.
//!
//! ```sh
//! cargo run --release --example jpeg_decode_resilient
//! ```

use chunkpoint::core::{golden, optimize, run, MitigationScheme, SystemConfig};
use chunkpoint::workloads::{jpeg::psnr_db, unpack_bytes, Benchmark};

fn pixels_of(report_output: &[u32], n: usize) -> Vec<u8> {
    unpack_bytes(report_output, n)
}

fn main() {
    let benchmark = Benchmark::JpegDecode;
    for (label, rate) in [("paper rate 1e-6", 1e-6), ("harsh rate 1e-5", 1e-5)] {
        let mut config = SystemConfig::paper(0x1199);
        config.faults.error_rate = rate;
        let reference = golden(benchmark, &config);
        let n_pixels = reference.output.len() * 4;
        let reference_pixels = pixels_of(&reference.output, n_pixels);

        // Design-time sizing happens at the nominal rate; the runtime
        // rate is then whatever the environment delivers.
        let best = optimize(benchmark, &SystemConfig::paper(0x1199)).expect("feasible design");
        println!("== {label} ==");
        println!(
            "{:<26} | {:>10} | {:>12} | {:>10}",
            "scheme", "energy x", "PSNR", "bit-exact"
        );
        println!("{}", "-".repeat(68));
        for (label, scheme) in [
            ("Default (no mitigation)", MitigationScheme::Default),
            ("SW restart", MitigationScheme::SwRestart),
            ("HW full ECC", MitigationScheme::hw_baseline()),
            (
                "Hybrid (proposed)",
                MitigationScheme::Hybrid {
                    chunk_words: best.chunk_words,
                    l1_prime_t: best.l1_prime_t,
                },
            ),
        ] {
            let denominator = run(benchmark, MitigationScheme::Default, &config);
            let report = run(benchmark, scheme, &config);
            let pixels = pixels_of(&report.output, n_pixels);
            let psnr = if pixels.len() == reference_pixels.len() {
                let v = psnr_db(&reference_pixels, &pixels);
                if v.is_infinite() {
                    "inf dB".to_owned()
                } else {
                    format!("{v:.1} dB")
                }
            } else {
                format!(
                    "truncated ({} of {} px)",
                    pixels.len(),
                    reference_pixels.len()
                )
            };
            println!(
                "{:<26} | {:>10.3} | {:>12} | {:>10}",
                label,
                report.energy_ratio(&denominator),
                psnr,
                if report.output_matches(&reference) {
                    "yes"
                } else {
                    "NO"
                },
            );
        }
        println!();
    }
}
