//! Campaign-service walkthrough through the **unified executor API**:
//! submit a λ-sweep spec to a `serve` instance with
//! [`chunkpoint::exec::RemoteExecutor`], stream its typed progress
//! events, and print the aggregate table — no hand-rolled HTTP loop;
//! the executor drives the typed shard client underneath.
//!
//! By default the example starts its own service in-process on an
//! ephemeral port (so it is self-contained); point it at a running
//! service instead with `--addr HOST:PORT`:
//!
//! ```text
//! cargo run --release --example serve_client [-- --addr 127.0.0.1:8077]
//! ```
//!
//! Submitting the same spec twice demonstrates the content-addressed
//! result cache: the second run answers from the backend's cache
//! without simulating anything — through the very same executor calls.

use std::time::{Duration, Instant};

use chunkpoint::campaign::{Axis, CampaignSpec, SchemeSpec};
use chunkpoint::core::{MitigationScheme, SystemConfig};
use chunkpoint::exec::{CampaignEvent, CampaignExecutor, LiveAggregates, RemoteExecutor};
use chunkpoint::workloads::Benchmark;
use chunkpoint_bench::report::Table;
use chunkpoint_serve::server::{ServeConfig, Server};

/// The λ sweep: three decades around the paper's worst case.
const RATES: [f64; 3] = [1e-7, 1e-6, 1e-5];

fn sweep_spec() -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.5; // half-length frames keep the example snappy
    CampaignSpec::new(config, 0x5E44E)
        .benchmarks(&[Benchmark::AdpcmDecode])
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .scheme(
            "Proposed",
            SchemeSpec::Fixed(MitigationScheme::Hybrid {
                chunk_words: 16,
                l1_prime_t: 8,
            }),
        )
        .error_rates(&RATES)
        .replicates(5)
}

fn main() {
    // --addr HOST:PORT targets an external service; otherwise start one
    // in-process on an ephemeral port.
    let mut args = std::env::args().skip(1);
    let mut external: Option<String> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => external = Some(args.next().expect("--addr requires HOST:PORT")),
            other => {
                eprintln!("unknown flag {other}; usage: serve_client [--addr HOST:PORT]");
                std::process::exit(2);
            }
        }
    }
    let (addr, local_data_dir) = match external {
        Some(addr) => (addr, None),
        None => {
            let data_dir =
                std::env::temp_dir().join(format!("chunkpoint_client_{}", std::process::id()));
            let server = Server::bind(&ServeConfig {
                addr: "127.0.0.1:0".to_owned(),
                data_dir: data_dir.clone(),
                max_jobs: 1,
                campaign_threads: 0,
                max_queued: 0,
                trace_out: None,
            })
            .expect("bind in-process service");
            let addr = server.local_addr().expect("addr").to_string();
            std::thread::spawn(move || server.run());
            println!("started in-process service on {addr}");
            (addr, Some(data_dir))
        }
    };

    // Submit the sweep through the executor API and observe it live.
    let spec = sweep_spec();
    let executor = RemoteExecutor::new(addr.clone());
    let started = Instant::now();
    let handle = executor.submit(&spec);
    let mut live = LiveAggregates::new(&[Axis::Scheme, Axis::ErrorRate]);
    for event in handle.events() {
        match &event {
            CampaignEvent::Progress { done, total } => {
                println!("  progress: {done}/{total} scenarios");
            }
            CampaignEvent::Complete => println!("  complete"),
            _ => {}
        }
        live.observe(&event);
    }
    let run = handle.wait().expect("remote campaign");
    println!(
        "done: {} scenarios in {:.2?} ({} dispatch(es))",
        run.scenarios,
        started.elapsed(),
        run.dispatches
    );

    // The executor already validated and ordered the rows; aggregate
    // them into the scheme × λ table.
    let cells = live.groups();
    let table = Table::new(10, 14);
    println!();
    table.header(
        "scheme",
        &[
            "lambda".to_owned(),
            "energy ratio".to_owned(),
            "±95% CI".to_owned(),
            "correct".to_owned(),
        ],
    );
    for scheme in ["SW-based", "Proposed"] {
        for rate in RATES {
            let stats = cells
                .get(&[scheme, &format!("{rate:e}")])
                .expect("aggregate cell");
            table.row(
                scheme,
                &[
                    format!("{rate:>.0e}"),
                    format!("{:.3}", stats.energy_ratio.mean()),
                    format!("{:.3}", stats.energy_ratio.ci95_half_width()),
                    format!("{}/{}", stats.correct, stats.n),
                ],
            );
        }
    }

    // Same spec again: the backend's content-addressed cache answers
    // without re-simulating — same API, same bytes, a fraction of the
    // time.
    let resubmit = Instant::now();
    let cached = executor.submit(&spec).wait().expect("cached campaign");
    println!();
    println!(
        "resubmit of the identical spec: byte-identical: {}, {:.2?}",
        cached.report == run.report,
        resubmit.elapsed()
    );

    if let Some(data_dir) = local_data_dir {
        let _ =
            chunkpoint::shard::exchange(&addr, "POST", "/shutdown", None, Duration::from_secs(5));
        let _ = std::fs::remove_dir_all(data_dir);
    }
}
