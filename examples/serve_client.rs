//! Campaign-service walkthrough: a **std-only HTTP client** that submits
//! a λ-sweep campaign spec, polls job status, fetches the cached report,
//! and prints the aggregate table — the full service loop in one file.
//!
//! By default the example starts its own service in-process on an
//! ephemeral port (so it is self-contained); point it at a running
//! service instead with `--addr HOST:PORT`:
//!
//! ```text
//! cargo run --release --example serve_client [-- --addr 127.0.0.1:8077]
//! ```
//!
//! Submitting the same spec twice demonstrates the content-addressed
//! result cache: the second submission answers `cached: true` without
//! simulating anything.

use std::time::{Duration, Instant};

use chunkpoint::campaign::{CampaignSpec, JsonValue, SchemeSpec};
use chunkpoint::core::{MitigationScheme, SystemConfig};
use chunkpoint::workloads::Benchmark;
use chunkpoint_bench::report::Table;
use chunkpoint_serve::http::request;
use chunkpoint_serve::server::{ServeConfig, Server};

/// The λ sweep: three decades around the paper's worst case.
const RATES: [f64; 3] = [1e-7, 1e-6, 1e-5];

fn sweep_spec() -> CampaignSpec {
    let mut config = SystemConfig::paper(0);
    config.scale = 0.5; // half-length frames keep the example snappy
    CampaignSpec::new(config, 0x5E44E)
        .benchmarks(&[Benchmark::AdpcmDecode])
        .scheme("SW-based", SchemeSpec::Fixed(MitigationScheme::SwRestart))
        .scheme(
            "Proposed",
            SchemeSpec::Fixed(MitigationScheme::Hybrid {
                chunk_words: 16,
                l1_prime_t: 8,
            }),
        )
        .error_rates(&RATES)
        .replicates(5)
}

fn main() {
    // --addr HOST:PORT targets an external service; otherwise start one
    // in-process on an ephemeral port.
    let mut args = std::env::args().skip(1);
    let mut external: Option<String> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => external = Some(args.next().expect("--addr requires HOST:PORT")),
            other => {
                eprintln!("unknown flag {other}; usage: serve_client [--addr HOST:PORT]");
                std::process::exit(2);
            }
        }
    }
    let (addr, local_data_dir) = match external {
        Some(addr) => (addr, None),
        None => {
            let data_dir =
                std::env::temp_dir().join(format!("chunkpoint_client_{}", std::process::id()));
            let server = Server::bind(&ServeConfig {
                addr: "127.0.0.1:0".to_owned(),
                data_dir: data_dir.clone(),
                max_jobs: 1,
                campaign_threads: 0,
            })
            .expect("bind in-process service");
            let addr = server.local_addr().expect("addr").to_string();
            std::thread::spawn(move || server.run());
            println!("started in-process service on {addr}");
            (addr, Some(data_dir))
        }
    };

    // Submit the sweep.
    let spec = sweep_spec();
    let body = spec.to_json().render();
    let (status, response) =
        request(addr.as_str(), "POST", "/campaigns", Some(&body)).expect("submit");
    assert!(status == 202 || status == 200, "submit failed: {response}");
    let doc = JsonValue::parse(&response).expect("submit response");
    let id = doc.get("id").unwrap().as_str().expect("job id").to_owned();
    let scenarios = doc.get("scenarios").unwrap().as_u64().unwrap_or(0);
    println!("submitted λ sweep as job {id} ({scenarios} scenarios)");

    // Poll until done.
    let started = Instant::now();
    loop {
        let (_, body) =
            request(addr.as_str(), "GET", &format!("/campaigns/{id}"), None).expect("poll");
        let doc = JsonValue::parse(&body).expect("status");
        let state = doc
            .get("status")
            .unwrap()
            .as_str()
            .unwrap_or("?")
            .to_owned();
        let completed = doc.get("completed").unwrap().as_u64().unwrap_or(0);
        match state.as_str() {
            "done" => {
                println!(
                    "done: {completed}/{scenarios} scenarios in {:.2?}",
                    started.elapsed()
                );
                break;
            }
            "failed" => panic!("job failed: {body}"),
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }

    // Fetch the canonical report and print scheme × λ energy ratios.
    let (status, report) = request(
        addr.as_str(),
        "GET",
        &format!("/campaigns/{id}/result"),
        None,
    )
    .expect("result");
    assert_eq!(status, 200, "{report}");
    let report = JsonValue::parse(&report).expect("report JSON");
    let aggregates = report
        .get("aggregates")
        .and_then(JsonValue::as_array)
        .expect("aggregates");

    // Aggregate keys are [benchmark, scheme, error_rate] (REPORT_AXES).
    let table = Table::new(10, 14);
    println!();
    table.header(
        "scheme",
        &[
            "lambda".to_owned(),
            "energy ratio".to_owned(),
            "±95% CI".to_owned(),
            "correct".to_owned(),
        ],
    );
    for scheme in ["SW-based", "Proposed"] {
        for rate in RATES {
            let rate_key = format!("{rate:e}");
            let group = aggregates
                .iter()
                .find(|g| {
                    let key = g.get("key").and_then(JsonValue::as_array).unwrap_or(&[]);
                    key.len() == 3
                        && key[1].as_str() == Some(scheme)
                        && key[2].as_str() == Some(rate_key.as_str())
                })
                .expect("aggregate cell");
            let energy = group.get("energy_ratio").expect("energy_ratio");
            let mean = energy.get("mean").unwrap().as_f64().unwrap_or(f64::NAN);
            let ci = energy.get("ci95").unwrap().as_f64().unwrap_or(f64::NAN);
            let n = group.get("n").unwrap().as_u64().unwrap_or(0);
            let correct = group.get("correct").unwrap().as_u64().unwrap_or(0);
            table.row(
                scheme,
                &[
                    format!("{rate:>.0e}"),
                    format!("{mean:.3}"),
                    format!("{ci:.3}"),
                    format!("{correct}/{n}"),
                ],
            );
        }
    }

    // Same spec again: the content-addressed cache answers instantly.
    let resubmit = Instant::now();
    let (status, response) =
        request(addr.as_str(), "POST", "/campaigns", Some(&body)).expect("resubmit");
    let doc = JsonValue::parse(&response).expect("resubmit response");
    println!();
    println!(
        "resubmit of the identical spec: HTTP {status}, cached: {}, {:.2?}",
        doc.get("cached").unwrap().as_bool().unwrap_or(false),
        resubmit.elapsed()
    );

    if let Some(data_dir) = local_data_dir {
        let _ = request(addr.as_str(), "POST", "/shutdown", None);
        let _ = std::fs::remove_dir_all(data_dir);
    }
}
