//! Bring-your-own-kernel: implements a streaming task *outside* the
//! workloads crate — a 16-tap FIR low-pass filter bank, the archetypal
//! DSP front-end — and runs it under the hybrid mitigation scheme via
//! [`chunkpoint::core::run_task`].
//!
//! This is the downstream-user story: any kernel that (a) keeps its
//! cross-phase state in its state region and (b) re-executes phases
//! idempotently gets the paper's full error mitigation for free.
//!
//! ```sh
//! cargo run --release --example custom_task
//! ```

use chunkpoint::core::{golden_task, run_task, MitigationScheme, SystemConfig, TaskSource};
use chunkpoint::sim::{MemoryBus, Region};
use chunkpoint::workloads::{
    pack_i16, read_region, speech_pcm, unpack_i16, write_region, write_region_at, StreamingTask,
    TaskError, TaskProfile,
};

/// 16-tap symmetric low-pass FIR (Q15 coefficients, cutoff ~0.2 fs).
const TAPS: [i32; 16] = [
    -120, -340, -250, 560, 1220, 880, -1490, -4020, 19660, 19660, -4020, -1490, 880, 1220, 560,
    -250,
];
const STATE_WORDS: u32 = 8; // 15 i16 delay-line samples + sample counter

/// A streaming FIR filter: per phase, refill an input window, load the
/// delay line from the state region, convolve, store the output chunk and
/// the updated delay line.
struct FirFilterTask {
    samples: Vec<i16>,
    chunk_words: u32,
    state: Region,
    input: Region,
    output: Region,
}

impl FirFilterTask {
    fn new(samples: Vec<i16>, chunk_words: u32) -> Self {
        assert!(chunk_words > 0 && !samples.is_empty());
        let spb = chunk_words as usize * 2; // 2 samples per output word
        let blocks = samples.len().div_ceil(spb) as u32;
        let input_words = (spb as u32).div_ceil(2);
        let state = Region {
            base: 0,
            words: STATE_WORDS,
        };
        let input = Region {
            base: state.end(),
            words: input_words,
        };
        let output = Region {
            base: input.end(),
            words: chunk_words * blocks,
        };
        Self {
            samples,
            chunk_words,
            state,
            input,
            output,
        }
    }

    fn samples_per_block(&self) -> usize {
        self.chunk_words as usize * 2
    }
}

impl StreamingTask for FirFilterTask {
    fn name(&self) -> String {
        "fir-filter-16tap".to_owned()
    }

    fn total_blocks(&self) -> usize {
        self.samples.len().div_ceil(self.samples_per_block())
    }

    fn profile(&self) -> TaskProfile {
        TaskProfile {
            total_blocks: self.total_blocks(),
            block_words: self.chunk_words,
            state_words: STATE_WORDS,
            // ~20 cycles/tap MAC on an ARM9 without a dedicated MAC unit.
            compute_cycles_per_block: 20 * 16 * self.samples_per_block() as u64,
            accesses_per_block: u64::from(self.input.words) * 2
                + u64::from(self.chunk_words)
                + 2 * u64::from(STATE_WORDS),
        }
    }

    fn state_region(&self) -> Region {
        self.state
    }

    fn output_region(&self) -> Region {
        self.output
    }

    fn init(&mut self, bus: &mut dyn MemoryBus) -> Result<(), TaskError> {
        write_region(bus, self.state, &[0u32; STATE_WORDS as usize]);
        Ok(())
    }

    fn run_block(&mut self, block: usize, bus: &mut dyn MemoryBus) -> Result<u32, TaskError> {
        let spb = self.samples_per_block();
        let start = block * spb;
        if start >= self.samples.len() {
            return Err(TaskError::Config(format!("block {block} out of range")));
        }
        let slice = &self.samples[start..(start + spb).min(self.samples.len())];
        // Stream the window in, then read everything back through the
        // checked bus.
        let in_words = pack_i16(slice);
        write_region(bus, self.input, &in_words);
        let state_words = read_region(bus, self.state)?;
        let mut delay = unpack_i16(&state_words, 15);
        let raw: Result<Vec<u32>, _> = (0..in_words.len() as u32)
            .map(|i| bus.load(self.input.word(i)))
            .collect();
        let window = unpack_i16(&raw?, slice.len());
        bus.tick(20 * 16 * window.len() as u64);
        // Convolve.
        let mut filtered = Vec::with_capacity(window.len());
        for &x in &window {
            delay.insert(0, x);
            let acc: i64 = delay
                .iter()
                .zip(TAPS.iter())
                .map(|(&s, &c)| i64::from(s) * i64::from(c))
                .sum();
            filtered.push((acc >> 15).clamp(-32768, 32767) as i16);
            delay.truncate(15);
        }
        let out_words = pack_i16(&filtered);
        write_region_at(
            bus,
            self.output,
            block as u32 * self.chunk_words,
            &out_words,
        );
        // Persist the delay line (padded to 16 samples = 8 words).
        let mut persisted = delay.clone();
        persisted.push(0);
        write_region(bus, self.state, &pack_i16(&persisted));
        Ok(out_words.len() as u32)
    }
}

fn main() {
    let config = SystemConfig::paper(0xF17E);
    let build = |chunk_words: u32| -> Box<dyn StreamingTask> {
        Box::new(FirFilterTask::new(speech_pcm(1024, 0xF17E), chunk_words))
    };
    let source = TaskSource {
        name: "fir-filter-16tap".to_owned(),
        build: &build,
        default_chunk_words: 16,
    };

    let reference = golden_task(&source, &config);
    println!("custom task  : {}", source.name);
    println!(
        "output       : {} words (fault-free reference)",
        reference.output.len()
    );

    // Run it under harsh faults with the hybrid scheme.
    let mut harsh = config.clone();
    harsh.faults.error_rate = 3e-5;
    let scheme = MitigationScheme::Hybrid {
        chunk_words: 8,
        l1_prime_t: 8,
    };
    let mut total_errors = 0;
    let mut all_correct = true;
    for seed in 0..20u64 {
        let mut c = harsh.clone();
        c.faults.seed = 0xF17E ^ (seed * 6151);
        let report = run_task(&source, scheme, &c);
        total_errors += report.errors_detected;
        all_correct &= report.completed && report.output_matches(&reference);
    }
    println!("20 faulty runs at 30x the paper's rate:");
    println!("  errors detected+recovered : {total_errors}");
    println!(
        "  all outputs bit-exact     : {}",
        if all_correct {
            "yes — full mitigation, zero codec changes"
        } else {
            "NO"
        }
    );
    assert!(all_correct);
}
