//! Integration tests for the extension schemes beyond the paper's four
//! configurations: the literal single-parity hybrid (a counter-example),
//! and SECDED + scrubbing (the obsolete SSU-era defence).

use chunkpoint::core::{
    golden, golden_task, run, run_task, MitigationScheme, SystemConfig, TaskSource,
};
use chunkpoint::workloads::{Benchmark, StreamingTask};

#[test]
fn single_parity_hybrid_eventually_corrupts_silently() {
    // The paper-literal detector misses even-width bursts: across a seed
    // sweep at an elevated rate, at least one completed frame must differ
    // from the reference — while the sound detector never does.
    let benchmark = Benchmark::AdpcmDecode;
    let mut literal_corrupted = false;
    for seed in 0..300u64 {
        let mut config = SystemConfig::paper(seed * 2654435761 + 1);
        config.faults.error_rate = 3e-5;
        let reference = golden(benchmark, &config);
        let literal = run(
            benchmark,
            MitigationScheme::HybridSingleParity {
                chunk_words: 8,
                l1_prime_t: 8,
            },
            &config,
        );
        if literal.completed && !literal.output_matches(&reference) {
            literal_corrupted = true;
        }
        let sound = run(
            benchmark,
            MitigationScheme::Hybrid {
                chunk_words: 8,
                l1_prime_t: 8,
            },
            &config,
        );
        if sound.completed {
            assert!(
                sound.output_matches(&reference),
                "seed {seed}: the interleaved detector must never corrupt"
            );
        }
    }
    assert!(
        literal_corrupted,
        "single parity never corrupted in 300 frames — burst model broken?"
    );
}

#[test]
fn scrubbing_completes_and_heals_at_nominal_rate() {
    let benchmark = Benchmark::G721Decode;
    let mut total_restarts = 0;
    let mut silent_mismatches = 0u32;
    for seed in 0..20u64 {
        let config = SystemConfig::paper(seed * 48271 + 5);
        let reference = golden(benchmark, &config);
        let report = run(
            benchmark,
            MitigationScheme::ScrubbedSecded {
                interval_cycles: 5_000,
            },
            &config,
        );
        assert!(report.completed, "seed {seed}: scrub run must finish");
        total_restarts += report.restarts;
        // May rarely be silently corrupted even with nothing *detected*:
        // SECDED miscorrects some ≥3-bit bursts to a wrong codeword
        // without raising any error. That is the scheme's documented
        // weakness; it must stay rare at the nominal rate.
        if report.errors_detected == 0 && !report.output_matches(&reference) {
            silent_mismatches += 1;
        }
    }
    assert!(
        silent_mismatches <= 2,
        "{silent_mismatches}/20 scrubbed runs silently corrupted — \
         far above the expected miscorrection rate"
    );
    // The sweep itself should be exercised (restarts over the sweep are
    // plausible but not guaranteed at 1e-6; just ensure no livelock).
    assert!(total_restarts < 20 * 50, "scrubbing livelocked");
}

#[test]
fn scrubbing_is_costlier_than_hybrid() {
    let benchmark = Benchmark::AdpcmDecode;
    let mut scrub_energy = 0.0;
    let mut hybrid_energy = 0.0;
    let seeds = 6u64;
    for seed in 0..seeds {
        let config = SystemConfig::paper(seed * 31 + 2);
        let denominator = run(benchmark, MitigationScheme::Default, &config);
        let scrub = run(
            benchmark,
            MitigationScheme::ScrubbedSecded {
                interval_cycles: 5_000,
            },
            &config,
        );
        let hybrid = run(
            benchmark,
            MitigationScheme::Hybrid {
                chunk_words: 8,
                l1_prime_t: 8,
            },
            &config,
        );
        scrub_energy += scrub.energy_ratio(&denominator) / seeds as f64;
        hybrid_energy += hybrid.energy_ratio(&denominator) / seeds as f64;
    }
    assert!(
        scrub_energy > hybrid_energy,
        "scrub {scrub_energy} should exceed hybrid {hybrid_energy}"
    );
}

#[test]
fn run_task_is_equivalent_to_run_for_builtins() {
    // `run()` is a thin wrapper over the `run_task` extension point; a
    // hand-built TaskSource over the same benchmark must reproduce it
    // exactly (same seeds, same executor paths).
    let mut config = SystemConfig::paper(0x7A5C);
    config.faults.error_rate = 1e-5;
    let scale = config.scale;
    let build = move |chunk: u32| -> Box<dyn StreamingTask> {
        Benchmark::AdpcmDecode.build_task_scaled(chunk, scale)
    };
    let source = TaskSource {
        name: Benchmark::AdpcmDecode.name().to_owned(),
        build: &build,
        default_chunk_words: 16,
    };
    for scheme in [
        MitigationScheme::Default,
        MitigationScheme::SwRestart,
        MitigationScheme::Hybrid {
            chunk_words: 8,
            l1_prime_t: 8,
        },
    ] {
        let via_enum = run(Benchmark::AdpcmDecode, scheme, &config);
        let via_source = run_task(&source, scheme, &config);
        assert_eq!(via_enum.output, via_source.output, "{scheme}");
        assert_eq!(via_enum.cycles(), via_source.cycles(), "{scheme}");
        assert_eq!(via_enum.task, via_source.task, "{scheme}");
    }
    let g1 = golden(Benchmark::AdpcmDecode, &config);
    let g2 = golden_task(&source, &config);
    assert_eq!(g1.output, g2.output);
}

#[test]
fn scheme_labels_cover_all_variants() {
    let schemes = [
        MitigationScheme::Default,
        MitigationScheme::hw_baseline(),
        MitigationScheme::SwRestart,
        MitigationScheme::Hybrid {
            chunk_words: 8,
            l1_prime_t: 8,
        },
        MitigationScheme::HybridSingleParity {
            chunk_words: 8,
            l1_prime_t: 8,
        },
        MitigationScheme::ScrubbedSecded {
            interval_cycles: 5_000,
        },
    ];
    let labels: Vec<String> = schemes.iter().map(MitigationScheme::label).collect();
    for (i, a) in labels.iter().enumerate() {
        for b in labels.iter().skip(i + 1) {
            assert_ne!(a, b);
        }
    }
}
