//! Integration: the read-transaction and interrupt-service semantics of
//! the paper's **Fig. 2**, exercised deterministically with hand-placed
//! faults on the raw components (bus + protected buffer), plus failure
//! injection into L1′ itself.

use chunkpoint::core::ProtectedBuffer;
use chunkpoint::ecc::EccKind;
use chunkpoint::sim::{Component, EnergyLedger, FaultProcess, MemoryBus, PlainBus, Platform, Sram};

fn detector_bus() -> PlainBus {
    let sram = Sram::new(
        "l1",
        512,
        EccKind::InterleavedParity { ways: 6 },
        FaultProcess::disabled(),
    )
    .expect("valid kind");
    PlainBus::new(sram, Platform::lh7a400(), Component::L1)
}

#[test]
fn fig2a_read_checks_and_raises_interrupt() {
    let mut bus = detector_bus();
    bus.store(0x40, 0xDEAD_BEEF);
    // Clean read passes.
    assert_eq!(bus.load(0x40).expect("clean"), 0xDEAD_BEEF);
    // An SMU burst lands; next read raises the Read Error Interrupt
    // (surfaced as Err at the bus level).
    bus.sram_mut().inject(0x40, 5, 3);
    let fault = bus.load(0x40).expect_err("must detect");
    assert_eq!(fault.addr, 0x40);
}

#[test]
fn fig2b_isr_restores_status_registers_from_l1_prime() {
    let mut bus = detector_bus();
    let mut l1_prime = ProtectedBuffer::new(16, 8, 0.0, 0);

    // Commit a checkpoint: status registers (4 words) + chunk (8 words).
    let checkpoint: Vec<u32> = (0..12).map(|i| 0x1000 + i).collect();
    for (i, &w) in checkpoint.iter().enumerate() {
        bus.store(i as u32, w);
    }
    let now = bus.now();
    let mut ledger = EnergyLedger::new();
    l1_prime.store_checkpoint(&checkpoint, now, &mut ledger);

    // Corrupt the live state region in L1 beyond detection-only repair.
    bus.sram_mut().inject(2, 8, 4);
    assert!(bus.load(2).is_err(), "corruption must be detected");

    // ISR: read the checkpoint back from L1' and rewrite the state region.
    let restored = l1_prime
        .load_checkpoint(12, now + 100, &mut ledger)
        .expect("L1' is fault-free here");
    assert_eq!(restored, checkpoint);
    for (i, &w) in restored.iter().enumerate() {
        bus.store(i as u32, w);
    }
    // The faulty word is clean again (write re-encodes).
    assert_eq!(bus.load(2).expect("restored"), 0x1002);
}

#[test]
fn l1_prime_corrects_smu_bursts_during_restore() {
    let mut l1_prime = ProtectedBuffer::new(8, 8, 0.0, 0);
    let mut ledger = EnergyLedger::new();
    l1_prime.store_checkpoint(&[11, 22, 33, 44], 0, &mut ledger);
    // Burst strikes on the buffer itself — within its BCH t=8 budget.
    for word in 0..4 {
        l1_prime.sram_mut().inject(word, 3 + word, 6);
    }
    let restored = l1_prime
        .load_checkpoint(4, 10, &mut ledger)
        .expect("corrected");
    assert_eq!(restored, vec![11, 22, 33, 44]);
}

#[test]
fn l1_prime_exhaustion_is_loud() {
    // A (practically impossible) pattern beyond t=6 in the buffer must be
    // reported, not silently mis-restored. Spread 14 flips over one word.
    let mut l1_prime = ProtectedBuffer::new(4, 6, 0.0, 0);
    let mut ledger = EnergyLedger::new();
    l1_prime.store_checkpoint(&[7; 4], 0, &mut ledger);
    let mut flagged = false;
    for spread in 2..=9usize {
        let mut buffer = ProtectedBuffer::new(4, 6, 0.0, 0);
        buffer.store_checkpoint(&[7; 4], 0, &mut ledger);
        for k in 0..14 {
            buffer.sram_mut().inject(1, (k * spread) % 60, 1);
        }
        match buffer.load_checkpoint(4, 1, &mut ledger) {
            Err(e) => {
                assert_eq!(e.word_index, 1);
                flagged = true;
                break;
            }
            Ok(words) => {
                // Miscorrection to another codeword is possible but must
                // never reproduce the original payload by accident with
                // that many flips... unless the flips cancelled. Accept.
                assert_eq!(words.len(), 4);
            }
        }
    }
    assert!(flagged, "no 14-flip pattern was flagged across spreads");
}

#[test]
fn corrected_reads_cost_latency_and_energy() {
    let sram =
        Sram::new("l1", 64, EccKind::Bch { t: 4 }, FaultProcess::disabled()).expect("valid kind");
    let mut bus = PlainBus::new(sram, Platform::lh7a400(), Component::L1);
    bus.store(7, 1234);
    let e0 = bus.ledger().component_pj(Component::EccLogic);
    let t0 = bus.now();
    bus.sram_mut().inject(7, 10, 4);
    assert_eq!(bus.load(7).expect("corrected"), 1234);
    assert!(bus.ledger().component_pj(Component::EccLogic) > e0);
    // 1 access + per-read check latency + correction latency.
    assert!(bus.now() - t0 > 2);
}
