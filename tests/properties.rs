//! Property-based tests (proptest) on the system's core invariants:
//!
//! * **Full mitigation**: for any fault seed, rate (up to 100x the
//!   paper's), and feasible chunk size, the hybrid executor's output is
//!   bit-identical to the fault-free reference.
//! * **Optimizer soundness**: every design point the optimizer returns
//!   satisfies the constraints it was given.
//! * **Codec roundtrips** under arbitrary inputs.

use proptest::prelude::*;

use chunkpoint::core::{
    evaluate, golden, optimize, run, MitigationScheme, SystemConfig, SystemConstraints,
};
use chunkpoint::workloads::Benchmark;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn hybrid_output_always_matches_golden(
        seed in 0u64..1_000_000,
        rate_exp in 0u32..3, // 1e-6, 1e-5, 1e-4
        chunk_words in 1u32..48,
        bench_idx in 0usize..5,
    ) {
        let benchmark = Benchmark::ALL[bench_idx];
        let mut config = SystemConfig::paper(seed);
        config.scale = 0.5;
        config.faults.error_rate = 1e-6 * 10f64.powi(rate_exp as i32);
        let reference = golden(benchmark, &config);
        let report = run(
            benchmark,
            MitigationScheme::Hybrid { chunk_words, l1_prime_t: 8 },
            &config,
        );
        // The run may exhaust its retry budget at extreme rates (loud
        // failure) but must never complete with wrong output.
        if report.completed {
            prop_assert!(
                report.output_matches(&reference),
                "{benchmark}: diverged with {} errors / {} rollbacks at rate {:e}",
                report.errors_detected,
                report.rollbacks,
                config.faults.error_rate,
            );
        }
    }

    #[test]
    fn hw_ecc_output_always_matches_golden(
        seed in 0u64..1_000_000,
        bench_idx in 0usize..5,
    ) {
        let benchmark = Benchmark::ALL[bench_idx];
        let mut config = SystemConfig::paper(seed);
        config.scale = 0.5;
        config.faults.error_rate = 1e-5;
        let reference = golden(benchmark, &config);
        let report = run(benchmark, MitigationScheme::hw_baseline(), &config);
        if report.completed {
            prop_assert!(report.output_matches(&reference), "{benchmark}");
        }
    }

    #[test]
    fn optimizer_points_satisfy_their_constraints(
        area_pct in 2u32..12,
        cycle_pct in 5u32..20,
        bench_idx in 0usize..5,
    ) {
        let benchmark = Benchmark::ALL[bench_idx];
        let mut config = SystemConfig::paper(0);
        config.constraints = SystemConstraints::new(
            f64::from(area_pct) / 100.0,
            f64::from(cycle_pct) / 100.0,
        );
        if let Some(best) = optimize(benchmark, &config) {
            prop_assert!(best.area_fraction <= config.constraints.area_overhead + 1e-12);
            prop_assert!(
                best.cost.cycle_fraction() <= config.constraints.cycle_overhead + 1e-12
            );
            // And it is a true optimum among a sample of feasible rivals.
            for k in [1u32, 4, 16, 64, 256] {
                let rival = evaluate(benchmark, k, best.l1_prime_t, &config);
                if rival.is_feasible(&config) {
                    prop_assert!(
                        best.cost.objective_pj() <= rival.cost.objective_pj() + 1e-6,
                        "K={k} beats the 'optimum'"
                    );
                }
            }
        }
    }

    #[test]
    fn golden_is_seed_independent(
        seed_a in 0u64..100_000,
        seed_b in 0u64..100_000,
        bench_idx in 0usize..5,
    ) {
        let benchmark = Benchmark::ALL[bench_idx];
        let mut ca = SystemConfig::paper(seed_a);
        ca.scale = 0.25;
        let mut cb = SystemConfig::paper(seed_b);
        cb.scale = 0.25;
        let a = golden(benchmark, &ca);
        let b = golden(benchmark, &cb);
        prop_assert_eq!(a.cycles(), b.cycles());
        prop_assert_eq!(a.output, b.output);
    }
}
