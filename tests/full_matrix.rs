//! Integration: every benchmark under every mitigation scheme, with fault
//! rates high enough to exercise the recovery paths, verifying the paper's
//! central claims:
//!
//! * every *mitigating* scheme produces output bit-identical to the
//!   fault-free reference ("full error mitigation");
//! * the *Default* system corrupts silently;
//! * the relative energy ordering of Fig. 5 holds:
//!   default < proposed < {SW, HW}.

use chunkpoint::core::{golden, optimize, run, MitigationScheme, SystemConfig};
use chunkpoint::workloads::Benchmark;

fn harsh_config(seed: u64) -> SystemConfig {
    let mut config = SystemConfig::paper(seed);
    // 30x the paper's rate so recovery paths actually fire per frame.
    config.faults.error_rate = 3e-5;
    config
}

#[test]
fn hybrid_fully_mitigates_every_benchmark() {
    for benchmark in Benchmark::ALL {
        let config = harsh_config(0xFEED);
        let reference = golden(benchmark, &config);
        // Design-time sizing happens at the *nominal* rate; the run is
        // then stressed at 30x — recovery must still be complete.
        let best = optimize(benchmark, &SystemConfig::paper(0))
            .unwrap_or_else(|| panic!("{benchmark}: no feasible design"));
        let mut errors_seen = 0;
        for seed in 0..24u64 {
            // The first 8 seeds always run; afterwards keep going only
            // until the recovery path has demonstrably fired (the strike
            // stream is seed-dependent, so a fixed count is too brittle
            // for the shortest frames).
            if seed >= 8 && errors_seen > 0 {
                break;
            }
            let mut c = config.clone();
            c.faults.seed = 0xFEED ^ (seed * 104_729);
            let report = run(
                benchmark,
                MitigationScheme::Hybrid {
                    chunk_words: best.chunk_words,
                    l1_prime_t: best.l1_prime_t,
                },
                &c,
            );
            assert!(
                report.completed,
                "{benchmark} seed {seed}: did not complete"
            );
            assert!(
                report.output_matches(&reference),
                "{benchmark} seed {seed}: output diverged ({} errors, {} rollbacks)",
                report.errors_detected,
                report.rollbacks,
            );
            errors_seen += report.errors_detected;
        }
        assert!(
            errors_seen > 0,
            "{benchmark}: harsh rate produced no detected errors — recovery untested"
        );
    }
}

#[test]
fn hw_ecc_fully_mitigates_every_benchmark() {
    // At 10x the nominal rate t = 8 is essentially never exceeded within
    // one exposure window: every run must complete bit-identically.
    for benchmark in Benchmark::ALL {
        let mut config = SystemConfig::paper(0xBEEF);
        config.faults.error_rate = 1e-5;
        let reference = golden(benchmark, &config);
        let report = run(benchmark, MitigationScheme::hw_baseline(), &config);
        assert!(report.completed, "{benchmark}");
        assert!(report.output_matches(&reference), "{benchmark}");
    }
    // At 30x a word *can* accumulate more than t flips between accesses;
    // BCH must then fail loudly (flagged, not completed) — silent
    // divergence is the only forbidden outcome.
    for benchmark in Benchmark::ALL {
        for seed in 0..4u64 {
            let mut config = harsh_config(0xBEEF);
            config.faults.seed ^= seed * 104_729;
            let reference = golden(benchmark, &config);
            let report = run(benchmark, MitigationScheme::hw_baseline(), &config);
            if report.completed {
                assert!(report.output_matches(&reference), "{benchmark} seed {seed}");
            } else {
                assert!(
                    report.errors_detected > 0,
                    "{benchmark} seed {seed}: incomplete without a detected error"
                );
            }
        }
    }
}

#[test]
fn sw_restart_fully_mitigates_at_nominal_rate() {
    // At the paper's rate the SW baseline completes (after restarts) with
    // correct output. At harsh rates it livelocks — see the next test.
    for benchmark in Benchmark::ALL {
        let config = SystemConfig::paper(0xCAFE);
        let reference = golden(benchmark, &config);
        let report = run(benchmark, MitigationScheme::SwRestart, &config);
        assert!(
            report.completed,
            "{benchmark} ({} restarts)",
            report.restarts
        );
        assert!(
            report.output_matches(&reference),
            "{benchmark} ({} restarts)",
            report.restarts
        );
    }
}

#[test]
fn sw_restart_never_corrupts_even_when_it_cannot_finish() {
    // Under harsh rates whole-task restart may exhaust its budget — but it
    // must *fail loudly* (completed = false), never hand over wrong data.
    for benchmark in [Benchmark::AdpcmDecode, Benchmark::G721Decode] {
        let mut config = harsh_config(0xCAFE);
        config.faults.error_rate = 1e-4;
        let reference = golden(benchmark, &config);
        let report = run(benchmark, MitigationScheme::SwRestart, &config);
        if report.completed {
            assert!(report.output_matches(&reference), "{benchmark}");
        } else {
            assert!(report.restarts > 0, "{benchmark}");
        }
    }
}

#[test]
fn default_corrupts_somewhere_under_harsh_faults() {
    let mut corrupted_anywhere = false;
    for benchmark in Benchmark::ALL {
        for seed in 0..4u64 {
            let config = harsh_config(0xD00D ^ (seed * 31));
            let reference = golden(benchmark, &config);
            let report = run(benchmark, MitigationScheme::Default, &config);
            assert_eq!(
                report.errors_detected, 0,
                "{benchmark}: default cannot detect"
            );
            if !report.output_matches(&reference) {
                corrupted_anywhere = true;
            }
        }
    }
    assert!(
        corrupted_anywhere,
        "harsh faults never corrupted the default system"
    );
}

#[test]
fn energy_ordering_matches_fig5() {
    // Averaged over seeds at the paper's rate: default = 1 < hybrid < HW,
    // and hybrid under the sub-22% envelope the paper reports.
    let benchmark = Benchmark::AdpcmDecode;
    let base = SystemConfig::paper(0x0BD);
    let best = optimize(benchmark, &base).expect("feasible");
    let seeds = 4u64;
    let mut hybrid_ratio = 0.0;
    let mut hw_ratio = 0.0;
    for seed in 0..seeds {
        let mut c = base.clone();
        c.faults.seed = seed * 7;
        let denominator = run(benchmark, MitigationScheme::Default, &c);
        let hybrid = run(
            benchmark,
            MitigationScheme::Hybrid {
                chunk_words: best.chunk_words,
                l1_prime_t: best.l1_prime_t,
            },
            &c,
        );
        let hw = run(benchmark, MitigationScheme::hw_baseline(), &c);
        hybrid_ratio += hybrid.energy_ratio(&denominator) / seeds as f64;
        hw_ratio += hw.energy_ratio(&denominator) / seeds as f64;
    }
    assert!(
        hybrid_ratio > 1.0,
        "hybrid must cost something: {hybrid_ratio}"
    );
    assert!(
        hybrid_ratio < 1.25,
        "hybrid overhead {hybrid_ratio} above the paper's 22% worst case"
    );
    assert!(
        hw_ratio > 1.5,
        "full-array ECC should cost >50%: {hw_ratio}"
    );
    assert!(hw_ratio > hybrid_ratio);
}
