//! Integration: reproduces the semantics of the paper's **Fig. 1** — a
//! task divided into phases where an error in phase P_i triggers a
//! rollback that recomputes *only* P_i, from the chunk preserved at the
//! previous checkpoint.

use chunkpoint::core::{golden, run, MitigationScheme, SystemConfig};
use chunkpoint::sim::TraceEvent;
use chunkpoint::workloads::Benchmark;

/// Finds a seeded run with at least one rollback.
fn faulty_run() -> chunkpoint::core::RunReport {
    let scheme = MitigationScheme::Hybrid {
        chunk_words: 8,
        l1_prime_t: 8,
    };
    for seed in 0..500u64 {
        let mut config = SystemConfig::paper(seed);
        config.faults.error_rate = 5e-5;
        let report = run(Benchmark::AdpcmDecode, scheme, &config);
        if report.rollbacks > 0 && report.completed {
            return report;
        }
    }
    panic!("no rollback observed in 500 seeds at 5e-5");
}

#[test]
fn error_in_phase_i_recomputes_only_phase_i() {
    let report = faulty_run();
    let events = report.trace.events();

    // Every read error is followed (possibly after the ISR) by a rollback,
    // and the next phase start re-executes the *same* phase that was
    // running — never an earlier one.
    let mut current_phase = None;
    let mut pending_error = false;
    for event in events {
        match event {
            TraceEvent::PhaseStart { phase, .. } => {
                if pending_error {
                    assert_eq!(
                        Some(*phase),
                        current_phase,
                        "rollback must re-execute the faulty phase only"
                    );
                    pending_error = false;
                }
                current_phase = Some(*phase);
            }
            TraceEvent::ReadError { .. } => pending_error = true,
            TraceEvent::Rollback { .. } => {}
            _ => {}
        }
    }

    // Each phase eventually ends exactly once (no lost or duplicated
    // completions) and ends in order.
    let ends: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::PhaseEnd { phase, .. } => Some(*phase),
            _ => None,
        })
        .collect();
    let expected: Vec<usize> = (0..ends.len()).collect();
    assert_eq!(
        ends, expected,
        "phases must complete exactly once, in order"
    );
}

#[test]
fn rollback_count_matches_extra_phase_starts() {
    let report = faulty_run();
    let events = report.trace.events();
    let starts = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::PhaseStart { .. }))
        .count();
    let ends = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::PhaseEnd { .. }))
        .count();
    assert_eq!(
        starts - ends,
        report.rollbacks as usize,
        "each rollback adds exactly one re-execution"
    );
}

#[test]
fn checkpoints_commit_once_per_phase_plus_initial() {
    let report = faulty_run();
    assert_eq!(
        report.checkpoints as usize,
        report.trace.checkpoints(),
        "trace and counter agree"
    );
    let ends = report
        .trace
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::PhaseEnd { .. }))
        .count();
    // CH(0) + one commit per completed phase.
    assert_eq!(report.checkpoints as usize, ends + 1);
}

#[test]
fn deadline_is_met_despite_errors() {
    // Fig. 1's point: with chunked rollback the deadline violation of a
    // full restart is avoided. Bound: total time under faults stays within
    // the 10% overhead constraint of a fault-free hybrid run.
    let report = faulty_run();
    let mut fault_free = SystemConfig::paper(0);
    fault_free.faults.error_rate = 0.0;
    let clean = run(
        Benchmark::AdpcmDecode,
        MitigationScheme::Hybrid {
            chunk_words: 8,
            l1_prime_t: 8,
        },
        &fault_free,
    );
    let ratio = report.cycles() as f64 / clean.cycles() as f64;
    assert!(
        ratio < 1.25,
        "recovery inflated time by {ratio}, breaking the deadline story"
    );
    // And the output is still perfect.
    let reference = golden(Benchmark::AdpcmDecode, &SystemConfig::paper(0));
    assert!(report.output_matches(&reference));
}
