//! # chunkpoint
//!
//! A from-scratch reproduction of **"A Hybrid HW-SW Approach for
//! Intermittent Error Mitigation in Streaming-Based Embedded Systems"**
//! (Sabry, Atienza, Catthoor — DATE 2012), as a production-quality Rust
//! workspace.
//!
//! This facade crate re-exports the library layers:
//!
//! * [`ecc`] — error-correcting codes and hardware-overhead models
//!   (parity, interleaved parity, SECDED, interleaved SECDED, binary BCH
//!   over GF(2^m));
//! * [`sim`] — the SoC simulator standing in for MPARM + CACTI:
//!   bit-accurate fault-prone SRAM, Poisson SMU injection, 65 nm
//!   area/energy/timing models, cycle/energy ledger;
//! * [`workloads`] — MediaBench-equivalent streaming kernels (IMA ADPCM,
//!   G.711, G.726/G.721, baseline JPEG) instrumented to run their live
//!   data through the simulated memory;
//! * [`core`] — the paper's contribution: data chunks, checkpoints, the
//!   BCH-protected L1′ buffer, the Read-Error-Interrupt rollback protocol,
//!   the chunk-size optimizer (Eqs. 1–7), and the Default / HW / SW
//!   baseline executors;
//! * [`campaign`] — the deterministic parallel Monte Carlo campaign
//!   engine: declarative scenario grids, SplitMix64 per-scenario seed
//!   derivation, a work-stealing thread pool, streaming statistics
//!   (mean / stddev / 95 % CI) and machine-readable JSON reports, with
//!   per-scenario results bit-identical at any thread count;
//! * [`telemetry`] — the observability layer: a process-wide registry
//!   of lock-free counters/gauges/histograms with Prometheus-style
//!   text exposition, and structured trace spans with deterministic
//!   ids — strictly out-of-band, never feeding back into results;
//! * [`serve`] — the std-only HTTP campaign service over the engine:
//!   a checkpointable job store (append-only scenario journals),
//!   crash/restart resume that is bit-identical to an uninterrupted
//!   run, and a content-addressed result cache keyed by the canonical
//!   spec hash;
//! * [`shard`] — the scenario-range shard coordinator over multiple
//!   `serve` instances: contiguous grid partitioning, typed-error HTTP
//!   dispatch with re-dispatch of failed or unreachable shards, and a
//!   journal merge whose report is byte-identical to a single-machine
//!   run;
//! * [`exec`] — the one campaign executor API over all of the above:
//!   typed submit / observe / cancel with a shared `CampaignEvent`
//!   stream and one `ExecError` enum, implemented by local, remote,
//!   and sharded executors proven byte-identical on the same spec;
//! * [`adaptive`] — the sequential-sampling campaign controller on the
//!   executor event plane: per-cell CI95 early stopping, variance-driven
//!   replicate reallocation through ranged sub-specs, health-weighted
//!   shard partitioning, and speculative straggler double-dispatch —
//!   with stop/reallocate decisions that replay byte-identically.
//!
//! ## Quickstart
//!
//! ```
//! use chunkpoint::core::{golden, optimize, run, MitigationScheme, SystemConfig};
//! use chunkpoint::workloads::Benchmark;
//!
//! let mut config = SystemConfig::paper(7);
//! config.scale = 0.25; // short run for the doctest
//! let best = optimize(Benchmark::AdpcmEncode, &config).expect("feasible");
//! let report = run(
//!     Benchmark::AdpcmEncode,
//!     MitigationScheme::Hybrid { chunk_words: best.chunk_words, l1_prime_t: best.l1_prime_t },
//!     &config,
//! );
//! assert!(report.output_matches(&golden(Benchmark::AdpcmEncode, &config)));
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and experiment index, and `EXPERIMENTS.md` for
//! paper-vs-measured results. The binaries in `chunkpoint-bench`
//! regenerate every table and figure of the paper's evaluation.

#![warn(missing_docs)]

/// Error-correcting codes and hardware-overhead models.
pub use chunkpoint_ecc as ecc;

/// SoC simulator: SRAM, faults, energy/area/timing models.
pub use chunkpoint_sim as sim;

/// Streaming media workloads (MediaBench equivalents).
pub use chunkpoint_workloads as workloads;

/// The hybrid mitigation scheme, optimizer, and baseline executors.
pub use chunkpoint_core as core;

/// Declarative timeline-scenario DSL: named scenarios, fault-timeline
/// events, and `expect` blocks over final run statistics.
pub use chunkpoint_scenario as scenario;

/// Deterministic parallel Monte Carlo campaign engine.
pub use chunkpoint_campaign as campaign;

/// Observability layer: process-wide metrics registry, Prometheus-style
/// text exposition, deterministic trace spans.
pub use chunkpoint_telemetry as telemetry;

/// Std-only HTTP campaign service: checkpointable job store, resumable
/// runs, content-addressed result cache.
pub use chunkpoint_serve as serve;

/// Scenario-range shard coordinator over multiple `serve` instances.
pub use chunkpoint_shard as shard;

/// One campaign executor API: typed submit/observe/cancel over local,
/// remote, and sharded execution, byte-identical across all three.
pub use chunkpoint_exec as exec;

/// Sequential-sampling adaptive campaign controller: CI95 early
/// stopping, replicate reallocation, health-weighted sharding.
pub use chunkpoint_adaptive as adaptive;

/// Deterministic fault-injecting TCP proxy for chaos-testing the
/// service stack: seeded, replayable per-connection fault plans.
pub use chunkpoint_chaos as chaos;
